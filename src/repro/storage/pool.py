"""Storage pools: capacity accounting for volume allocation.

A pool owns a fixed number of blocks; creating a volume reserves its
capacity, deleting it returns the capacity.  Journal volumes and snapshot
stores draw from pools too, so an experiment can exhaust capacity and
observe the array's behaviour (``CapacityError``), mirroring how a real
array fails volume creation rather than overcommitting.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import CapacityError


class StoragePool:
    """A named capacity pool on one array."""

    def __init__(self, pool_id: int, capacity_blocks: int,
                 name: str = "") -> None:
        if capacity_blocks < 1:
            raise CapacityError(
                f"pool capacity must be >= 1 block: {capacity_blocks}")
        self.pool_id = pool_id
        self.name = name or f"pool-{pool_id}"
        self.capacity_blocks = capacity_blocks
        self._reservations: Dict[str, int] = {}

    @property
    def reserved_blocks(self) -> int:
        """Blocks currently reserved by volumes/journals."""
        return sum(self._reservations.values())

    @property
    def free_blocks(self) -> int:
        """Blocks available for new reservations."""
        return self.capacity_blocks - self.reserved_blocks

    def reserve(self, owner: str, blocks: int) -> None:
        """Reserve ``blocks`` for ``owner``; raises CapacityError if full
        or if the owner already holds a reservation."""
        if blocks < 1:
            raise CapacityError(f"reservation must be >= 1 block: {blocks}")
        if owner in self._reservations:
            raise CapacityError(
                f"{self.name}: owner {owner!r} already has a reservation")
        if blocks > self.free_blocks:
            raise CapacityError(
                f"{self.name}: need {blocks} blocks, only "
                f"{self.free_blocks} free")
        self._reservations[owner] = blocks

    def release(self, owner: str) -> None:
        """Return the owner's reservation to the pool."""
        if owner not in self._reservations:
            raise CapacityError(
                f"{self.name}: owner {owner!r} has no reservation")
        del self._reservations[owner]

    def holds(self, owner: str) -> bool:
        """True if ``owner`` currently has a reservation."""
        return owner in self._reservations

    def __repr__(self) -> str:
        return (f"<StoragePool {self.name!r} "
                f"free={self.free_blocks}/{self.capacity_blocks}>")
