"""Simulated enterprise storage array (the paper's external storage system).

Public surface:

* :class:`StorageArray`, :class:`ArrayConfig` — the array command facade;
* :class:`Volume`, :class:`VolumeRole`, :class:`MediaProfile` — volumes;
* :class:`StoragePool` — capacity pools;
* :class:`JournalVolume`, :class:`JournalEntry` — ADC journals;
* :class:`JournalGroup`, :class:`AdcConfig` — asynchronous data copy
  pipelines (a consistency group = several pairs in one journal group);
* :class:`SyncMirror`, :class:`SdcConfig` — the synchronous baseline;
* :class:`ReductionConfig`, :class:`ReductionCodec`,
  :class:`FingerprintCache`, :class:`WireReducer` — wire data reduction
  (fingerprint dedup + inline compression) for the replication paths;
* :class:`ReplicationPair`, :class:`PairState`, :class:`CopyMode` —
  pair lifecycle;
* :class:`Snapshot`, :class:`SnapshotGroup`, :class:`SnapshotView` —
  copy-on-write snapshots;
* :class:`WriteHistory`, :class:`WriteRecord` — ack-order ground truth;
* :class:`LatencyRecorder`, :class:`LatencySummary`, :class:`Counter`,
  :class:`GaugeSeries`, :func:`percentile` — measurement.
"""

from repro.storage.adc import AdcConfig, JournalGroup
from repro.storage.array import ArrayConfig, AuditRecord, StorageArray
from repro.storage.history import WriteHistory, WriteRecord
from repro.storage.journal import JournalEntry, JournalVolume
from repro.telemetry.metrics import (Counter, Gauge, LatencyRecorder,
                                     LatencySummary, percentile)
from repro.storage.pool import StoragePool
from repro.storage.reduction import (FingerprintCache, ReductionCodec,
                                     ReductionConfig, WireReducer)
from repro.storage.replication import CopyMode, PairState, ReplicationPair
from repro.storage.sdc import SdcConfig, SyncMirror
from repro.storage.snapshot import Snapshot, SnapshotGroup
from repro.storage.volume import (BlockValue, MediaProfile, SnapshotView,
                                  Volume, VolumeRole, VolumeStatus)

#: historical name of the telemetry :class:`Gauge`, kept for the public
#: storage API
GaugeSeries = Gauge

__all__ = [
    "AdcConfig",
    "ArrayConfig",
    "AuditRecord",
    "BlockValue",
    "CopyMode",
    "Counter",
    "FingerprintCache",
    "GaugeSeries",
    "JournalEntry",
    "JournalGroup",
    "JournalVolume",
    "LatencyRecorder",
    "LatencySummary",
    "MediaProfile",
    "PairState",
    "ReductionCodec",
    "ReductionConfig",
    "ReplicationPair",
    "SdcConfig",
    "Snapshot",
    "SnapshotGroup",
    "SnapshotView",
    "StorageArray",
    "StoragePool",
    "SyncMirror",
    "Volume",
    "VolumeRole",
    "VolumeStatus",
    "WireReducer",
    "WriteHistory",
    "WriteRecord",
    "percentile",
]
