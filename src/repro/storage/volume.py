"""Logical volumes (LDEVs) of the simulated storage array.

A :class:`Volume` is a block map with media latency, a monotone
per-volume version counter, a replication role, and copy-on-write hooks
for attached snapshots.  All I/O methods are process generators — callers
``yield from`` them inside a simulation process.

Versioning rule: every write installs a version number that is monotone
across the whole volume (not per block).  Host writes allocate the next
version; replication *applies* carry the primary's version so that the
block maps of primary and secondary stay comparable and the consistency
checker can match backup contents to history records.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Generator, List, NamedTuple, Optional

from repro.errors import IntegrityError, VolumeError
from repro.storage.journal import payload_checksum

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.kernel import Simulator
    from repro.storage.snapshot import Snapshot


class VolumeRole(enum.Enum):
    """Replication role of a volume."""

    #: not part of any replication pair
    SIMPLEX = "simplex"
    #: replication source (primary volume)
    PVOL = "pvol"
    #: replication target (secondary volume) — host writes rejected
    SVOL = "svol"
    #: promoted secondary after failover (writable)
    SSWS = "ssws"


class VolumeStatus(enum.Enum):
    """Availability of a volume."""

    NORMAL = "normal"
    BLOCKED = "blocked"


class BlockValue(NamedTuple):
    """Payload and version stored in one block.

    ``checksum`` is the payload's CRC32 installed by the write path;
    reads verify it so media corruption can never be returned silently.
    ``None`` (hand-built values, pre-checksum clones) skips verification.

    A NamedTuple rather than a dataclass: block installs construct one
    of these per write, and tuple construction runs at C speed while
    keeping the same field access and value equality.
    """

    payload: bytes
    version: int
    checksum: Optional[int] = None

    def intact(self) -> bool:
        """True when the payload still matches its write-time CRC32."""
        if self.checksum is None:
            return True
        return payload_checksum(self.payload) == self.checksum


@dataclass(frozen=True)
class MediaProfile:
    """Latency profile of the backing media (seconds per block I/O)."""

    read_latency: float = 0.0002
    write_latency: float = 0.0004
    cow_copy_latency: float = 0.0003

    def __post_init__(self) -> None:
        for field_name in ("read_latency", "write_latency",
                           "cow_copy_latency"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be >= 0")


class Volume:
    """One logical volume on a simulated array.

    Created through :meth:`repro.storage.array.StorageArray.create_volume`;
    direct construction is for tests.
    """

    def __init__(self, sim: "Simulator", volume_id: int,
                 capacity_blocks: int, media: MediaProfile,
                 name: str = "") -> None:
        if capacity_blocks < 1:
            raise VolumeError(f"capacity_blocks must be >= 1: {capacity_blocks}")
        self.sim = sim
        self.volume_id = volume_id
        self.name = name or f"ldev-{volume_id}"
        self.capacity_blocks = capacity_blocks
        self.media = media
        self.role = VolumeRole.SIMPLEX
        self.status = VolumeStatus.NORMAL
        self._blocks: Dict[int, BlockValue] = {}
        self._version_counter = 0
        self._snapshots: List["Snapshot"] = []
        # Blocks whose pre-image every live attached snapshot already
        # holds: installs to them skip the per-snapshot COW scan, and
        # apply_delay() prices them without one.  Cleared whenever a new
        # snapshot attaches (it has no pre-images yet).
        self._cow_saved: set = set()
        #: counters for experiment reporting
        self.reads = 0
        self.writes = 0

    # -- inspection ---------------------------------------------------------

    @property
    def used_blocks(self) -> int:
        """Number of allocated blocks."""
        return len(self._blocks)

    @property
    def writable_by_host(self) -> bool:
        """Hosts may write SIMPLEX, PVOL and promoted (SSWS) volumes."""
        return (self.status is VolumeStatus.NORMAL
                and self.role is not VolumeRole.SVOL)

    def block_map(self) -> Dict[int, BlockValue]:
        """Copy of the block map (checker/test use; no latency)."""
        return dict(self._blocks)

    def peek(self, block: int) -> Optional[BlockValue]:
        """Instant, latency-free block inspection (checker/test use)."""
        return self._blocks.get(block)

    def allocated_blocks(self) -> List[int]:
        """Sorted list of allocated block numbers."""
        return sorted(self._blocks)

    @property
    def version_counter(self) -> int:
        """Highest version installed so far."""
        return self._version_counter

    # -- validation ---------------------------------------------------------

    def _check_block(self, block: int) -> None:
        if not 0 <= block < self.capacity_blocks:
            raise VolumeError(
                f"{self.name}: block {block} out of range "
                f"[0, {self.capacity_blocks})")

    def _check_online(self) -> None:
        if self.status is not VolumeStatus.NORMAL:
            raise VolumeError(f"{self.name} is {self.status.value}")

    # -- I/O (process generators) ------------------------------------------

    def read_block(self, block: int) -> Generator[object, object, Optional[bytes]]:
        """Read one block; returns its payload or None if unallocated."""
        self._check_block(block)
        self._check_online()
        if self.media.read_latency > 0:
            yield self.sim.timeout(self.media.read_latency)
        self.reads += 1
        value = self._blocks.get(block)
        if value is None:
            return None
        if not value.intact():
            raise IntegrityError(
                f"{self.name}: block {block} failed its CRC32 check "
                f"(v{value.version})")
        return value.payload

    def write_block(self, block: int, payload: bytes,
                    version: Optional[int] = None,
                    checksum: Optional[int] = None,
                    ) -> Generator[object, object, int]:
        """Write one block; returns the installed version.

        ``version=None`` allocates the next host version; an explicit
        version is a replication apply and must be newer than what the
        block currently holds (restore applies in order).  ``checksum``
        reuses a payload CRC32 the caller already computed; ``None``
        hashes here.
        """
        if not isinstance(payload, (bytes, bytearray)):
            raise VolumeError(
                f"{self.name}: payload must be bytes, got "
                f"{type(payload).__name__}")
        self._check_block(block)
        self._check_online()
        if self._snapshots:
            yield from self._copy_on_write(block)
        if self.media.write_latency > 0:
            yield self.sim.timeout(self.media.write_latency)
        if version is None:
            self._version_counter += 1
            version = self._version_counter
        else:
            current = self._blocks.get(block)
            if current is not None and current.version >= version:
                raise VolumeError(
                    f"{self.name}: out-of-order apply to block {block}: "
                    f"have v{current.version}, got v{version}")
            self._version_counter = max(self._version_counter, version)
        # materialise once and checksum the stored bytes (bytes input is
        # already immutable and passes through without a copy)
        data = payload if type(payload) is bytes else bytes(payload)
        if checksum is None:
            checksum = payload_checksum(data)
        self._blocks[block] = BlockValue(data, version, checksum)
        self.writes += 1
        return version

    # -- batched replication apply (used by the ADC restore loop) -----------

    def apply_delay(self, block: int) -> float:
        """Simulated media cost of one latency-free apply to ``block``:
        pending copy-on-write preservations plus the write itself.

        The batched restore applier — and the batched host-write path
        (:meth:`~repro.storage.array.StorageArray.host_write_many`) —
        aggregate this across a batch (``max``, since the media writes
        overlap), wait once, then install with :meth:`install_block`.
        """
        cost = self.media.write_latency
        cow = self.media.cow_copy_latency
        if cow > 0 and self._snapshots and block not in self._cow_saved:
            pending = sum(1 for snap in self._snapshots
                          if not snap.deleted
                          and not snap.has_preimage(block))
            cost += pending * cow
        return cost

    def install_block(self, block: int, payload: bytes,
                      version: Optional[int] = None,
                      checksum: Optional[int] = None) -> int:
        """Latency-free block install (the caller already waited out
        :meth:`apply_delay`).  Same validation and copy-on-write
        semantics as :meth:`write_block`: an explicit ``version`` is a
        replication apply, ``version=None`` allocates the next host
        version (the batched host-write path).  ``checksum`` reuses an
        already-computed payload CRC32 (e.g. from the journal entry)
        instead of re-hashing.
        """
        self._check_block(block)
        self._check_online()
        if self._snapshots and block not in self._cow_saved:
            blocks_get = self._blocks.get
            for snap in self._snapshots:
                if not snap.deleted and not snap.has_preimage(block):
                    snap.save_preimage(block, blocks_get(block))
            self._cow_saved.add(block)
        if version is None:
            self._version_counter += 1
            version = self._version_counter
        else:
            current = self._blocks.get(block)
            if current is not None and current.version >= version:
                raise VolumeError(
                    f"{self.name}: out-of-order apply to block {block}: "
                    f"have v{current.version}, got v{version}")
            if version > self._version_counter:
                self._version_counter = version
        data = payload if type(payload) is bytes else bytes(payload)
        if checksum is None:
            checksum = payload_checksum(data)
        self._blocks[block] = BlockValue(data, version, checksum)
        self.writes += 1
        return version

    def _copy_on_write(self, block: int) -> Generator[object, object, None]:
        """Preserve the pre-image of ``block`` in every attached snapshot.

        A snapshot can be deleted (e.g. pruned by a retention schedule)
        while this write waits out the copy latency; such snapshots are
        simply skipped — their pre-image store is gone anyway.
        """
        if block in self._cow_saved:
            return
        pending = [snap for snap in self._snapshots
                   if not snap.has_preimage(block)]
        for snap in pending:
            if snap.deleted:
                continue
            if self.media.cow_copy_latency > 0:
                yield self.sim.timeout(self.media.cow_copy_latency)
            if snap.deleted:
                continue  # pruned while we waited for the copy
            snap.save_preimage(block, self._blocks.get(block))
        # a snapshot attached while a copy above waited would have
        # cleared the set; only then could the all() below be stale
        if all(snap.deleted or snap.has_preimage(block)
               for snap in self._snapshots):
            self._cow_saved.add(block)

    # -- snapshot attachment (used by repro.storage.snapshot) ---------------

    def attach_snapshot(self, snapshot: "Snapshot") -> None:
        """Register a snapshot for copy-on-write preservation."""
        self._snapshots.append(snapshot)
        # the new snapshot holds no pre-images yet
        self._cow_saved.clear()

    def detach_snapshot(self, snapshot: "Snapshot") -> None:
        """Unregister a deleted snapshot."""
        self._snapshots = [s for s in self._snapshots if s is not snapshot]

    @property
    def snapshot_count(self) -> int:
        """Number of attached (live) snapshots."""
        return len(self._snapshots)

    # -- role management -------------------------------------------------

    def set_role(self, role: VolumeRole) -> None:
        """Change the replication role (pair lifecycle use)."""
        self.role = role

    def block_volume(self) -> None:
        """Take the volume offline (disaster injection)."""
        self.status = VolumeStatus.BLOCKED

    def unblock_volume(self) -> None:
        """Bring the volume back online."""
        self.status = VolumeStatus.NORMAL

    def __repr__(self) -> str:
        return (f"<Volume {self.name!r} id={self.volume_id} "
                f"{self.role.value}/{self.status.value} "
                f"used={self.used_blocks}/{self.capacity_blocks}>")


class SnapshotView:
    """Read/write view over a snapshot, presented like a volume.

    Reads hit the snapshot's saved pre-images first and fall through to
    the base volume for blocks never overwritten since the snapshot.
    Writes are redirected into the snapshot overlay (the simulated array
    supports writable snapshots, as Hitachi Thin Image does), so a
    database can run recovery against a snapshot without touching the
    base volume.
    """

    def __init__(self, snapshot: "Snapshot") -> None:
        self.snapshot = snapshot
        self.sim = snapshot.base.sim
        self.name = f"{snapshot.base.name}@snap{snapshot.snapshot_id}"
        self.capacity_blocks = snapshot.base.capacity_blocks
        self.reads = 0
        self.writes = 0

    @property
    def volume_id(self) -> int:
        """Snapshot views expose the snapshot id offset into a distinct
        id space so they never collide with real volume ids."""
        return self.snapshot.view_volume_id

    def read_block(self, block: int) -> Generator[object, object, Optional[bytes]]:
        """Read from the overlay, the pre-images, or the base volume."""
        media = self.snapshot.base.media
        if media.read_latency > 0:
            yield self.sim.timeout(media.read_latency)
        self.reads += 1
        return self.snapshot.read_current(block)

    def write_block(self, block: int, payload: bytes,
                    version: Optional[int] = None,
                    ) -> Generator[object, object, int]:
        """Write into the snapshot overlay (base volume untouched)."""
        media = self.snapshot.base.media
        if media.write_latency > 0:
            yield self.sim.timeout(media.write_latency)
        self.writes += 1
        return self.snapshot.write_overlay(block, bytes(payload))

    def peek(self, block: int) -> Optional[BlockValue]:
        """Latency-free inspection of the view's current content."""
        payload = self.snapshot.read_current(block)
        if payload is None:
            return None
        return BlockValue(payload, self.snapshot.version_of(block))

    def __repr__(self) -> str:
        return f"<SnapshotView {self.name!r}>"
