"""Copy-on-write snapshots and snapshot groups (§III-A2).

A :class:`Snapshot` freezes the image of one volume at creation time:
subsequent base-volume writes first preserve the block's pre-image into
the snapshot store (the COW hook lives in
:meth:`repro.storage.volume.Volume.write_block`).  Snapshots are
*writable* (like Hitachi Thin Image): writes land in a private overlay,
so a database can replay its log against a snapshot without touching the
base volume.

A :class:`SnapshotGroup` snapshots several volumes **at one instant with
restore quiesced**, so the set of images is crash-consistent across
volumes — the property that lets the backup site run analytics on a
usable multi-volume image while replication continues.  Per-volume
snapshots taken at different instants do not have this property, which
experiment E4 demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SnapshotError
from repro.storage.journal import payload_checksum
from repro.storage.volume import BlockValue, SnapshotView, Volume

#: Snapshot views expose ids in a disjoint range from real volumes so that
#: history lookups and CSI handles can never confuse the two.
SNAPSHOT_VIEW_ID_BASE = 1_000_000


class Snapshot:
    """A copy-on-write, writable point-in-time image of one volume."""

    def __init__(self, snapshot_id: int, base: Volume,
                 created_at: float, name: str = "") -> None:
        self.snapshot_id = snapshot_id
        self.base = base
        self.created_at = created_at
        self.name = name or f"snap-{snapshot_id}"
        self.view_volume_id = SNAPSHOT_VIEW_ID_BASE + snapshot_id
        self.deleted = False
        # Pre-images preserved by the COW hook.  The stored value is the
        # BlockValue the base held at snapshot time, or None when the
        # block was unallocated then.
        self._preimages: Dict[int, Optional[BlockValue]] = {}
        # Writes issued against the snapshot view.
        self._overlay: Dict[int, BlockValue] = {}
        self._overlay_version = 0
        # Memoized materializations of image_blocks()/frozen_version_map()
        # guarded by a mutation generation (bumped on overlay writes;
        # preimage saves keep both views stable — see image_blocks()).
        self._mutation_gen = 0
        self._image_cache: Optional[Dict[int, bytes]] = None
        self._image_cache_gen = -1
        self._frozen_cache: Optional[Dict[int, int]] = None
        #: the sequence point of the group quiesce, when group-created
        self.group_sequence: Optional[int] = None
        base.attach_snapshot(self)

    # -- COW hook interface (called by Volume.write_block) ------------------

    def has_preimage(self, block: int) -> bool:
        """True when the block's pre-image is already preserved."""
        return block in self._preimages

    def save_preimage(self, block: int,
                      value: Optional[BlockValue]) -> None:
        """Preserve the base volume's current content of ``block``."""
        if self.deleted:
            raise SnapshotError(f"{self.name}: save_preimage after delete")
        if block not in self._preimages:
            self._preimages[block] = value

    @property
    def cow_blocks(self) -> int:
        """Number of preserved pre-images (snapshot store usage)."""
        return len(self._preimages)

    # -- image access --------------------------------------------------------

    def read_current(self, block: int) -> Optional[bytes]:
        """Content of ``block`` as the snapshot view sees it."""
        self._check_live()
        if block in self._overlay:
            return self._overlay[block].payload
        if block in self._preimages:
            value = self._preimages[block]
            return value.payload if value is not None else None
        value = self.base.peek(block)
        return value.payload if value is not None else None

    def version_of(self, block: int) -> int:
        """Version of the block as the snapshot view sees it (0 if empty)."""
        self._check_live()
        if block in self._overlay:
            return self._overlay[block].version
        if block in self._preimages:
            value = self._preimages[block]
            return value.version if value is not None else 0
        value = self.base.peek(block)
        return value.version if value is not None else 0

    def write_overlay(self, block: int, payload: bytes) -> int:
        """Write into the snapshot's private overlay; returns a version."""
        self._check_live()
        self._overlay_version += 1
        self._mutation_gen += 1
        version = self.base.version_counter + self._overlay_version
        data = bytes(payload)
        self._overlay[block] = BlockValue(
            data, version, checksum=payload_checksum(data))
        if self._image_cache is not None:
            # keep the memoized image hot instead of invalidating it
            self._image_cache[block] = data
            self._image_cache_gen = self._mutation_gen
        return version

    def image_blocks(self) -> Dict[int, bytes]:
        """The full current image of the snapshot view (checker use).

        Memoized: the merge of base ∪ pre-images is the *frozen* view,
        which is immutable after creation — every base mutation routes
        through the COW hook first, so the pre-image it preserves equals
        exactly the value this cache already holds for that block, and
        all later base values are masked by it.  Only overlay writes
        change the image, and they update the cache in place (guarded by
        the mutation generation).  The returned dict is the cache —
        callers treat it as read-only.
        """
        self._check_live()
        if self._image_cache is None \
                or self._image_cache_gen != self._mutation_gen:
            image: Dict[int, bytes] = {}
            for block, value in self.base.block_map().items():
                image[block] = value.payload
            for block, value in self._preimages.items():
                if value is None:
                    image.pop(block, None)
                else:
                    image[block] = value.payload
            for block, value in self._overlay.items():
                image[block] = value.payload
            self._image_cache = image
            self._image_cache_gen = self._mutation_gen
        return self._image_cache

    def frozen_version_map(self) -> Dict[int, int]:
        """block → version of the *frozen* image (ignores the overlay).

        This is what consistency checking compares against history: the
        state of the base volume at snapshot-creation time.  Memoized:
        the frozen view never changes after the first materialization
        (same COW-ordering argument as :meth:`image_blocks`, and the
        overlay is ignored here).  The returned dict is the cache —
        callers treat it as read-only.
        """
        self._check_live()
        if self._frozen_cache is None:
            versions: Dict[int, int] = {}
            for block, value in self.base.block_map().items():
                versions[block] = value.version
            for block, value in self._preimages.items():
                if value is None:
                    versions.pop(block, None)
                else:
                    versions[block] = value.version
            self._frozen_cache = versions
        return self._frozen_cache

    def view(self) -> SnapshotView:
        """A volume-like read/write handle over this snapshot."""
        self._check_live()
        return SnapshotView(self)

    # -- lifecycle -----------------------------------------------------------

    def delete(self) -> None:
        """Release the snapshot (pre-images dropped, COW hook detached)."""
        if self.deleted:
            return
        self.deleted = True
        self.base.detach_snapshot(self)
        self._preimages.clear()
        self._overlay.clear()
        self._image_cache = None
        self._frozen_cache = None

    def _check_live(self) -> None:
        if self.deleted:
            raise SnapshotError(f"{self.name} has been deleted")

    def __repr__(self) -> str:
        state = "deleted" if self.deleted else "live"
        return (f"<Snapshot {self.name!r} of {self.base.name!r} "
                f"t={self.created_at:g} cow={self.cow_blocks} {state}>")


@dataclass
class SnapshotGroup:
    """Snapshots of several volumes taken at a single quiesced instant."""

    group_id: str
    created_at: float
    snapshots: List[Snapshot] = field(default_factory=list)
    #: True when created under restore quiesce (consistent across members)
    quiesced: bool = True

    def member_ids(self) -> List[int]:
        """Snapshot ids of the members."""
        return [snap.snapshot_id for snap in self.snapshots]

    def by_base_volume(self) -> Dict[int, Snapshot]:
        """Map base volume id → member snapshot."""
        return {snap.base.volume_id: snap for snap in self.snapshots}

    def views(self) -> Dict[int, SnapshotView]:
        """Volume-like views keyed by base volume id."""
        return {snap.base.volume_id: snap.view() for snap in self.snapshots}

    def delete(self) -> None:
        """Delete every member snapshot."""
        for snap in self.snapshots:
            snap.delete()

    def frozen_versions(self) -> Dict[int, Dict[int, int]]:
        """base volume id → (block → frozen version), for the checker."""
        return {snap.base.volume_id: snap.frozen_version_map()
                for snap in self.snapshots}


def pair_key(volume_id: int, block: int) -> Tuple[int, int]:
    """Canonical dictionary key for (volume, block) addressing."""
    return (volume_id, block)
