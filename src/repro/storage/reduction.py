"""Wire data reduction: inline compression + fingerprint dedup.

PR 8 attacked wire *latency* (pipelining, delta-negotiated copy); this
module attacks wire *volume*.  Every replication wire path — journal
transfer batches, SDC initial/bulk copy, and the resync paths riding
them — can pass its payloads through one :class:`WireReducer`, which
charges :class:`~repro.simulation.network.NetworkLink` the
*post-reduction* byte count while the logical-byte counters keep their
pre-reduction meaning.  Two mechanisms, tried cheapest-first per
payload:

* **fingerprint dedup** — a bounded, FIFO-evicting
  :class:`FingerprintCache` on each side of the link, keyed on
  lightweight ``(crc32, length)`` fingerprints (no cryptographic
  hashing, following the DR-path argument of "Optimized Disaster
  Recovery for Distributed Storage Systems").  A payload whose
  fingerprint the receiver is known to hold ships as a small reference
  instead of bytes.  The sender byte-compares its cached payload before
  referencing (a crc32 collision can therefore never *send* a wrong
  reference), and the receiver re-verifies every resolved reference
  against the entry CRC32 — any mismatch falls back to the full
  payload, counted in ``repro_reduction_ref_fallbacks_total``, so dedup
  can never silently corrupt;
* **inline compression** — :class:`ReductionCodec` zlib-compresses each
  payload at a configurable level and ships the compressed form only
  when it beats the configured ratio threshold (the skip-if-
  incompressible flag); already-dense payloads cross the wire verbatim.

**Cache synchronisation.**  Sender and receiver caches commit *only at
receive time*, in receive order: when a full payload lands, both sides
insert its fingerprint at the same instant and evict FIFO by the same
insertion order, so the two caches stay byte-identical by construction.
Encode-time decisions read the sender cache plus a batch-local pending
set (duplicates *within* one batch dedup against each other).  Because
nothing is committed at encode time, discarding an in-flight shipment
(the pipelined loop voids everything behind a failed head) rolls the
cache state back for free — there is no speculative sender state to
unwind; :meth:`WireReducer.discard` just counts the event.  A reference
can still arrive after the commits of an *earlier* in-flight batch
evicted its fingerprint; that is the receive-side miss the counted
fallback path exists for.

Cache state is invalidated wholesale (both sides) on link-down,
integrity quarantine, and array restart — the events after which the
sender can no longer prove what the receiver holds.

Everything is deterministic: zlib is, the caches are, and the reducer
adds no simulated-time events of its own — with ``enabled=False``
(the default) no call site changes behaviour at all.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.storage.journal import payload_checksum

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.kernel import Simulator
    from repro.telemetry.registry import MetricsRegistry

#: framing bytes prepended to a compressed payload on the wire (the
#: skip-if-incompressible flag plus the compressed length)
COMPRESS_FRAME_BYTES = 2

#: encoding kinds carried by :class:`EncodedPayload`
KIND_RAW = "raw"
KIND_COMPRESSED = "compressed"
KIND_REFERENCE = "ref"

#: a ``(crc32, length)`` payload fingerprint
Fingerprint = Tuple[int, int]


@dataclass(frozen=True)
class ReductionConfig:
    """Tuning knobs of the wire data-reduction engine.

    Off by default: with ``enabled=False`` every wire path behaves (and
    accounts) exactly as before.  ``level``/``ratio_threshold`` shape
    the compression side; ``cache_entries``/``ref_bytes`` the dedup
    side (``cache_entries=0`` disables dedup while keeping
    compression).
    """

    enabled: bool = False
    #: zlib compression level (1 fastest .. 9 densest)
    level: int = 6
    #: ship the compressed form only when ``compressed <= threshold *
    #: raw`` — the skip-if-incompressible flag; 1.0 accepts any win
    ratio_threshold: float = 0.9
    #: payloads smaller than this skip the compression attempt (the
    #: zlib header alone would eat the win)
    min_compress_bytes: int = 32
    #: bounded fingerprint-cache capacity per side, in payloads
    cache_entries: int = 4096
    #: wire size of one fingerprint reference (crc32 + length + framing)
    ref_bytes: int = 12

    def __post_init__(self) -> None:
        if not 1 <= self.level <= 9:
            raise ValueError(f"level must be in [1, 9]: {self.level}")
        if not 0 < self.ratio_threshold <= 1:
            raise ValueError(
                f"ratio_threshold must be in (0, 1]: {self.ratio_threshold}")
        if self.min_compress_bytes < 0:
            raise ValueError("min_compress_bytes must be >= 0")
        if self.cache_entries < 0:
            raise ValueError("cache_entries must be >= 0")
        if self.ref_bytes < 1:
            raise ValueError("ref_bytes must be >= 1")


#: the shared "reduction off" default carried by AdcConfig/SdcConfig
DISABLED_REDUCTION = ReductionConfig()


class ReductionCodec:
    """Deterministic per-payload compressor with a skip flag.

    Stateless: the same payload always yields the same wire form, so
    two runs of one seed stay byte-identical.
    """

    def __init__(self, config: ReductionConfig) -> None:
        self.config = config

    def compress(self, payload: bytes) -> Optional[bytes]:
        """The compressed wire form, or None when the payload is too
        small or too dense to be worth shipping compressed."""
        config = self.config
        if len(payload) < config.min_compress_bytes:
            return None
        packed = zlib.compress(payload, config.level)
        if len(packed) + COMPRESS_FRAME_BYTES \
                <= config.ratio_threshold * len(payload):
            return packed
        return None

    @staticmethod
    def decompress(data: bytes) -> bytes:
        """Inverse of :meth:`compress` for shipped-compressed payloads."""
        return zlib.decompress(data)


class FingerprintCache:
    """Bounded ``(crc32, length) -> payload`` map with FIFO eviction.

    FIFO (insertion order, no recency promotion) is deliberate: sender
    and receiver apply the same commit stream, so insertion-order
    eviction keeps the two caches identical even though the sender
    *reads* at encode time and the receiver at receive time — an LRU
    would let those differently-ordered reads desynchronise the
    evictions.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0: {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Fingerprint, bytes]" = OrderedDict()
        #: payloads dropped to keep the cache within capacity
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: Fingerprint) -> bool:
        return fingerprint in self._entries

    def get(self, fingerprint: Fingerprint) -> Optional[bytes]:
        """The cached payload for ``fingerprint``, or None."""
        return self._entries.get(fingerprint)

    def put(self, fingerprint: Fingerprint, payload: bytes) -> None:
        """Insert a payload; a present fingerprint keeps its slot (the
        first insertion wins, preserving FIFO symmetry across sides)."""
        if self.capacity == 0 or fingerprint in self._entries:
            return
        while len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[fingerprint] = payload

    def clear(self) -> None:
        """Drop every cached payload (invalidation)."""
        self._entries.clear()


@dataclass
class EncodedPayload:
    """One payload's wire form, decided at encode (launch) time.

    ``wire_bytes``/``raw_bytes`` both include the per-item overhead
    (journal-entry header, block framing) the call site declared, so
    summing either column prices a whole batch.
    """

    kind: str
    fingerprint: Fingerprint
    wire_bytes: int
    raw_bytes: int
    #: compressed form for ``KIND_COMPRESSED``; None otherwise
    data: Optional[bytes] = None


class WireReducer:
    """One wire path's reduction engine: codec + synchronized caches.

    Owned by a :class:`~repro.storage.adc.JournalGroup` or
    :class:`~repro.storage.sdc.SyncMirror`; both ends of the (simulated)
    link live in one process, so the reducer holds the sender *and*
    receiver cache and commits them in lockstep at receive time.  With
    ``enabled=False`` it registers no instruments and every call site
    skips it entirely.
    """

    def __init__(self, sim: "Simulator", config: ReductionConfig,
                 **scope: str) -> None:
        self.sim = sim
        self.config = config
        self.enabled = config.enabled
        if not self.enabled:
            return
        registry: "MetricsRegistry" = sim.telemetry.registry
        self._scope = scope
        self._registry = registry
        self.codec = ReductionCodec(config)
        self.sender = FingerprintCache(config.cache_entries)
        self.receiver = FingerprintCache(config.cache_entries)
        #: encode-time dedup lookups and hits (drives the hit-ratio gauge)
        self.lookups = 0
        self.hits = 0
        self._wire_counters: Dict[str, object] = {}
        self.saved_dedup = registry.counter(
            "repro_wire_bytes_saved_total",
            help="Wire bytes that never crossed the link, by reduction "
                 "mechanism", unit="bytes", mechanism="dedup", **scope)
        self.saved_compress = registry.counter(
            "repro_wire_bytes_saved_total",
            help="Wire bytes that never crossed the link, by reduction "
                 "mechanism", unit="bytes", mechanism="compress", **scope)
        self.hit_ratio = registry.gauge(
            "repro_dedup_hit_ratio",
            help="Fraction of encode-time fingerprint lookups answered "
                 "from the cache", **scope)
        self.ref_fallbacks = registry.counter(
            "repro_reduction_ref_fallbacks_total",
            help="References that failed receive-side re-verification "
                 "and fell back to the full payload", **scope)
        self.invalidations = registry.counter(
            "repro_reduction_cache_invalidations_total",
            help="Wholesale fingerprint-cache invalidations (link down, "
                 "quarantine, array restart)", **scope)
        self.discarded_shipments = registry.counter(
            "repro_reduction_shipments_discarded_total",
            help="In-flight encoded shipments discarded before receive "
                 "(their cache commits were never applied)", **scope)

    # -- sender side ---------------------------------------------------------

    def begin_batch(self) -> Dict[Fingerprint, bytes]:
        """A fresh batch-local pending set for :meth:`encode`."""
        return {}

    def encode(self, payload: bytes,
               pending: Dict[Fingerprint, bytes],
               raw_bytes: Optional[int] = None,
               overhead: int = 0) -> EncodedPayload:
        """Decide one payload's wire form against the current caches.

        ``raw_bytes`` is the unreduced wire cost of the payload alone
        (defaults to ``len(payload)``; the SDC block paths pass the
        fixed block size); ``overhead`` is per-item framing shipped
        regardless of mechanism (the 64-byte journal-entry header).
        The cheapest mechanism wins — a reference larger than the raw
        payload ships raw.  Nothing is committed here: ``pending``
        collects this batch's full payloads so in-batch duplicates
        dedup against each other, and is simply dropped if the
        shipment never lands.
        """
        raw = raw_bytes if raw_bytes is not None else len(payload)
        fingerprint = (payload_checksum(payload), len(payload))
        if self.config.cache_entries > 0:
            self.lookups += 1
            cached = pending.get(fingerprint)
            if cached is None:
                cached = self.sender.get(fingerprint)
            # byte-compare before referencing: a (crc32, length)
            # collision must ship its payload, never a wrong reference
            if cached is not None and cached == payload \
                    and self.config.ref_bytes < raw:
                self.hits += 1
                return EncodedPayload(
                    KIND_REFERENCE, fingerprint,
                    overhead + self.config.ref_bytes, overhead + raw)
        packed = self.codec.compress(payload)
        if packed is not None \
                and len(packed) + COMPRESS_FRAME_BYTES < raw:
            pending[fingerprint] = payload
            return EncodedPayload(
                KIND_COMPRESSED, fingerprint,
                overhead + len(packed) + COMPRESS_FRAME_BYTES,
                overhead + raw, data=packed)
        pending[fingerprint] = payload
        return EncodedPayload(KIND_RAW, fingerprint,
                              overhead + raw, overhead + raw)

    def discard(self, count: int = 1) -> None:
        """Record ``count`` in-flight shipments voided before receive.

        Their encodings committed nothing (commit happens at receive),
        so the sender and receiver caches are already consistent — the
        counter just keeps the rollback events observable.
        """
        if self.enabled and count > 0:
            self.discarded_shipments.increment(count)

    # -- receiver side -------------------------------------------------------

    def receive(self, encoded: EncodedPayload, payload: bytes,
                checksum: Optional[int]) -> bytes:
        """Reconstruct one payload at the receive side and commit caches.

        ``payload``/``checksum`` are the entry's own payload and CRC32
        (the simulation carries the object across; the encoding decides
        what the *wire* carried).  References resolve from the receiver
        cache and are re-verified against the entry CRC32; any miss or
        mismatch falls back to the full payload, counted — the fallback
        retransmit is charged via :meth:`account_fallback` by the
        caller's accounting pass.  Full payloads (raw or compressed)
        commit the reconstructed bytes to both caches in receive order,
        which is what keeps the two sides synchronized.
        """
        if encoded.kind == KIND_REFERENCE:
            cached = self.receiver.get(encoded.fingerprint)
            expected = checksum if checksum is not None \
                else encoded.fingerprint[0]
            if cached is not None \
                    and len(cached) == encoded.fingerprint[1] \
                    and payload_checksum(cached) == expected:
                return cached
            # receive-side miss (an earlier batch's commits evicted the
            # fingerprint while this reference was in flight) or a
            # mismatch: retransmit the full payload, never corrupt
            self.ref_fallbacks.increment()
            encoded.kind = KIND_RAW
            encoded.wire_bytes = encoded.raw_bytes + encoded.wire_bytes
            self._commit(encoded.fingerprint, payload)
            return payload
        if encoded.kind == KIND_COMPRESSED:
            reconstructed = self.codec.decompress(encoded.data)
        else:
            reconstructed = payload
        self._commit(encoded.fingerprint, reconstructed)
        return reconstructed

    def _commit(self, fingerprint: Fingerprint, payload: bytes) -> None:
        """Insert one received full payload into both caches (lockstep)."""
        self.sender.put(fingerprint, payload)
        self.receiver.put(fingerprint, payload)

    def invalidate(self) -> None:
        """Drop all cache state on both sides (link-down, quarantine,
        array restart): the sender can no longer prove what the
        receiver holds, so every fingerprint is forgotten and payloads
        re-ship in full until the caches re-warm.  Idempotent — already
        empty caches neither clear nor count, so the transfer loops may
        call this on every wake-up that observes a down link."""
        if not self.enabled:
            return
        if not len(self.sender) and not len(self.receiver):
            return
        self.sender.clear()
        self.receiver.clear()
        self.invalidations.increment()

    # -- accounting ----------------------------------------------------------

    def wire_counter(self, path: str):
        """The ``repro_wire_bytes_total{path=...}`` counter (lazy)."""
        counter = self._wire_counters.get(path)
        if counter is None:
            counter = self._registry.counter(
                "repro_wire_bytes_total",
                help="Post-reduction bytes actually charged to the "
                     "inter-site link, by wire path", unit="bytes",
                path=path, **self._scope)
            self._wire_counters[path] = counter
        return counter

    def account(self, path: str, encodings: List[EncodedPayload],
                extra_wire: int = 0) -> None:
        """Book one received batch: wire bytes by path, savings by
        mechanism, and a hit-ratio sample.

        ``extra_wire`` adds unreduced framing that rode the same path
        (e.g. the SDC negotiation metadata).  Call after
        :meth:`receive` ran on every item, so fallback retransmits are
        priced at their post-fallback ``wire_bytes``.
        """
        wire = extra_wire
        saved_dedup = 0
        saved_compress = 0
        for encoded in encodings:
            wire += encoded.wire_bytes
            if encoded.kind == KIND_REFERENCE:
                saved_dedup += encoded.raw_bytes - encoded.wire_bytes
            elif encoded.kind == KIND_COMPRESSED:
                saved_compress += encoded.raw_bytes - encoded.wire_bytes
        if wire:
            self.wire_counter(path).increment(wire)
        if saved_dedup:
            self.saved_dedup.increment(saved_dedup)
        if saved_compress:
            self.saved_compress.increment(saved_compress)
        if self.lookups:
            self.hit_ratio.sample(self.sim.now, self.hits / self.lookups)
