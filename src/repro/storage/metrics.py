"""Measurement primitives shared by the storage array and the benchmarks.

:class:`LatencyRecorder` collects latency samples and reports summary
statistics (mean / percentiles); :class:`Counter` counts events;
:class:`GaugeSeries` samples a time-varying quantity (e.g. journal lag)
for later inspection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile of ``samples``.

    ``fraction`` is in [0, 1]; raises ``ValueError`` on empty input so a
    missing measurement can never masquerade as a zero latency.
    """
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1]: {fraction}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    value = ordered[low] * (1 - weight) + ordered[high] * weight
    # clamp: float interpolation may drift a ulp outside the bracket
    return min(max(value, ordered[low]), ordered[high])


@dataclass(frozen=True)
class LatencySummary:
    """Immutable summary of a latency distribution (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    def as_millis(self) -> "LatencySummary":
        """The same summary expressed in milliseconds."""
        return LatencySummary(
            count=self.count,
            mean=self.mean * 1e3,
            p50=self.p50 * 1e3,
            p95=self.p95 * 1e3,
            p99=self.p99 * 1e3,
            maximum=self.maximum * 1e3,
        )


class LatencyRecorder:
    """Accumulates latency samples for one operation class."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._samples: List[float] = []

    def record(self, latency: float) -> None:
        """Add one sample (seconds); negative samples are a bug."""
        if latency < 0:
            raise ValueError(f"negative latency sample: {latency}")
        self._samples.append(latency)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> Tuple[float, ...]:
        """Immutable view of the collected samples."""
        return tuple(self._samples)

    def summary(self) -> LatencySummary:
        """Summary statistics; raises ``ValueError`` when empty."""
        if not self._samples:
            raise ValueError(f"no samples recorded for {self.name!r}")
        return LatencySummary(
            count=len(self._samples),
            mean=sum(self._samples) / len(self._samples),
            p50=percentile(self._samples, 0.50),
            p95=percentile(self._samples, 0.95),
            p99=percentile(self._samples, 0.99),
            maximum=max(self._samples),
        )

    def reset(self) -> None:
        """Discard all samples (e.g. after a warm-up phase)."""
        self._samples.clear()


@dataclass
class Counter:
    """A named monotonic event counter."""

    name: str = ""
    value: int = 0

    def increment(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0: {amount}")
        self.value += amount

    def reset(self) -> None:
        """Zero the counter."""
        self.value = 0


@dataclass
class GaugeSeries:
    """Time-stamped samples of a fluctuating quantity."""

    name: str = ""
    points: List[Tuple[float, float]] = field(default_factory=list)

    def sample(self, time: float, value: float) -> None:
        """Record ``value`` observed at simulated ``time``."""
        self.points.append((time, value))

    def values(self) -> List[float]:
        """Just the observed values, in time order."""
        return [value for _time, value in self.points]

    def maximum(self) -> float:
        """Largest observed value; raises when empty."""
        if not self.points:
            raise ValueError(f"no samples in gauge {self.name!r}")
        return max(self.values())

    def mean(self) -> float:
        """Average observed value; raises when empty."""
        if not self.points:
            raise ValueError(f"no samples in gauge {self.name!r}")
        values = self.values()
        return sum(values) / len(values)
