"""Backward-compatible shims over :mod:`repro.telemetry.metrics`.

The measurement primitives that used to live here moved into the
unified telemetry subsystem (``repro.telemetry``), where the
label-aware :class:`~repro.telemetry.registry.MetricsRegistry` hands
them out.  This module keeps the historical import surface —
``LatencyRecorder``, ``LatencySummary``, ``Counter``, ``GaugeSeries``,
``percentile`` — pointing at the telemetry implementations, so older
code and tests keep working unchanged.

``GaugeSeries`` is the one renamed class (telemetry calls it
:class:`~repro.telemetry.metrics.Gauge`); the alias below preserves the
old constructor signature, including the optional ``points`` list.
Note one intentional behaviour change carried over from telemetry:
``GaugeSeries.sample()`` now rejects samples whose time runs backwards
(it used to accept them silently), so a mis-wired probe cannot corrupt
a lag series.

.. deprecated::
   Import from :mod:`repro.telemetry` (or
   :mod:`repro.telemetry.metrics`) instead; this shim emits a
   ``DeprecationWarning`` on import and will be removed once external
   callers have migrated.
"""

from __future__ import annotations

import warnings

from repro.telemetry.metrics import (Counter, Gauge, LatencyRecorder,
                                     LatencySummary, percentile,
                                     percentile_sorted)

warnings.warn(
    "repro.storage.metrics is deprecated; import the measurement "
    "primitives from repro.telemetry instead",
    DeprecationWarning, stacklevel=2)

#: historical name of the telemetry :class:`Gauge`
GaugeSeries = Gauge

__all__ = [
    "Counter",
    "GaugeSeries",
    "LatencyRecorder",
    "LatencySummary",
    "percentile",
    "percentile_sorted",
]
