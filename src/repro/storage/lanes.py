"""Dependency-aware apply lanes for the backup-site restore paths.

The restore/resync appliers preserve ordering *per (volume, block)
target and across consistency cuts* — not globally (the same relaxation
ARIES-style partitioned redo and Aurora's ordered-apply lanes exploit).
This module is the shared scheduler both the ADC restore applier and
the SDC bulk-copy install phase thread their media waits through:

* :func:`partition_lanes` deals conflict-free work items round-robin
  into ``lanes`` buckets — deterministic, so two runs of the same seed
  schedule identically;
* :func:`lane_waits` runs one aggregated media wait per lane as a
  concurrent simulation process and joins them all before returning.
  The join is the **consistency-cut barrier**: no caller-visible state
  changes until every lane's media wait has elapsed, so the commit that
  follows lands at a single simulated instant and every externally
  observable image remains a cut of the apply order.

Items inside one lane share a single aggregated wait (``max`` of their
per-item costs — the media writes overlap, exactly the argument the
serial window applier already makes), so the barrier fires at the
global maximum of the per-item costs regardless of lane count; lanes
bound how much bookkeeping each concurrent process carries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Iterable, List, Sequence, TypeVar

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.kernel import Simulator

T = TypeVar("T")


def partition_lanes(items: Sequence[T], lanes: int) -> List[List[T]]:
    """Deal ``items`` round-robin into at most ``lanes`` buckets.

    Deterministic in the input order; empty buckets are dropped so the
    caller never spawns a process with nothing to wait for.
    """
    if lanes < 1:
        raise ValueError(f"lanes must be >= 1: {lanes}")
    buckets: List[List[T]] = [[] for _ in range(min(lanes, len(items)))]
    for index, item in enumerate(items):
        buckets[index % len(buckets)].append(item)
    return [bucket for bucket in buckets if bucket]


def lane_delay(costs: Iterable[float]) -> float:
    """Aggregated media wait of one lane: the ``max`` of its per-item
    costs (overlapping media writes), 0.0 for an empty lane."""
    delay = 0.0
    for cost in costs:
        if cost > delay:
            delay = cost
    return delay


def lane_waits(sim: "Simulator", delays: Sequence[float],
               name: str) -> Generator[object, object, None]:
    """Run one aggregated wait per lane concurrently; join them all.

    This is the consistency-cut barrier: the generator completes only
    once every lane's wait has elapsed, after which the caller commits
    all lane results at one simulated instant.  A single non-zero
    delay waits inline (no process allocation) — with one lane this is
    byte-identical to the serial applier's single aggregated wait.
    """
    pending = [delay for delay in delays if delay > 0]
    if not pending:
        return
    if len(pending) == 1:
        yield sim.timeout(pending[0])
        return
    procs = [sim.spawn(_lane_wait(sim, delay),
                       name=f"{name}.lane-{index}")
             for index, delay in enumerate(pending)]
    for proc in procs:
        yield proc  # join: the barrier closes at the slowest lane


def _lane_wait(sim: "Simulator", delay: float,
               ) -> Generator[object, object, None]:
    yield sim.timeout(delay)
