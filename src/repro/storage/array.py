"""The storage array facade: the simulated Hitachi VSP G370.

:class:`StorageArray` bundles pools, volumes, journal volumes,
replication engines and snapshots behind a *command API* — the surface
that hosts (via ``host_read``/``host_write``), CSI plugins, and the demo
console drive.  Every management command is appended to an audit log so
experiment E3 can count the operations a human would otherwise perform.

Two arrays form a replication topology by direct object references plus a
:class:`~repro.simulation.network.NetworkLink`; there is no hidden global
state, so a test can build any number of sites.

Conventions:

* data-path methods (``host_write``, ``host_read``,
  ``create_snapshot_group``) are process generators — they take simulated
  time;
* management commands (volume/journal/pair creation) are plain methods —
  they complete instantly but may start background work (initial copy
  runs through the replication pipelines).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, Generator, List, Optional, Sequence, Set, Tuple

from repro.errors import (ArrayCommandError, ReplicationError, SnapshotError,
                          StorageError, VolumeError)
from repro.simulation.kernel import Simulator
from repro.simulation.network import NetworkLink
from repro.storage.adc import AdcConfig, JournalGroup
from repro.storage.history import WriteHistory, WriteRecord
from repro.storage.journal import JournalVolume, payload_checksum
from repro.storage.pool import StoragePool
from repro.storage.replication import CopyMode, PairState, ReplicationPair
from repro.storage.sdc import SdcConfig, SyncMirror
from repro.storage.snapshot import Snapshot, SnapshotGroup
from repro.storage.volume import (BlockValue, MediaProfile, Volume,
                                  VolumeRole)


@dataclass(frozen=True)
class ArrayConfig:
    """Array-wide defaults: media latencies and journal sizing."""

    media: MediaProfile = field(default_factory=MediaProfile)
    block_size_bytes: int = 4096
    journal_capacity_entries: int = 200_000
    adc: AdcConfig = field(default_factory=AdcConfig)
    sdc: SdcConfig = field(default_factory=SdcConfig)

    def with_adc(self, **overrides) -> "ArrayConfig":
        """Copy of this config with ADC knobs overridden."""
        return replace(self, adc=replace(self.adc, **overrides))


@dataclass(frozen=True)
class AuditRecord:
    """One management command recorded in the array's audit log."""

    time: float
    command: str
    params: Tuple[Tuple[str, object], ...]

    def __str__(self) -> str:
        rendered = ", ".join(f"{k}={v}" for k, v in self.params)
        return f"[{self.time:10.6f}] {self.command}({rendered})"


class StorageArray:
    """One simulated enterprise storage array."""

    def __init__(self, sim: Simulator, serial: str,
                 config: Optional[ArrayConfig] = None) -> None:
        self.sim = sim
        self.serial = serial
        self.config = config or ArrayConfig()
        self.failed = False
        self.history = WriteHistory()
        self.audit: List[AuditRecord] = []
        self._pools: Dict[int, StoragePool] = {}
        self._volumes: Dict[int, Volume] = {}
        self._journals: Dict[int, JournalVolume] = {}
        self._snapshots: Dict[int, Snapshot] = {}
        self._snapshot_groups: Dict[str, SnapshotGroup] = {}
        self.journal_groups: Dict[str, JournalGroup] = {}
        self.sync_mirrors: Dict[str, SyncMirror] = {}
        self._route_by_pvol: Dict[int, object] = {}
        self._restore_group_by_svol: Dict[int, JournalGroup] = {}
        self._pool_ids = itertools.count(1)
        self._volume_ids = itertools.count(100)
        self._journal_ids = itertools.count(1)
        self._snapshot_ids = itertools.count(1)
        # -- telemetry --------------------------------------------------------
        # Exact-sample summaries keep benchmark facts numerically
        # identical to direct recording; the histogram sketches render
        # cheap percentile series for the registry exports.
        registry = sim.telemetry.registry
        self.tracer = sim.telemetry.tracer
        self.write_latency = registry.summary(
            "repro_host_write_seconds",
            help="Host write latency (exact samples)", unit="seconds",
            array=serial)
        self.read_latency = registry.summary(
            "repro_host_read_seconds",
            help="Host read latency (exact samples)", unit="seconds",
            array=serial)
        self.write_latency_hist = registry.histogram(
            "repro_host_write_latency_seconds",
            help="Host write latency (streaming sketch)", unit="seconds",
            array=serial)
        self.read_latency_hist = registry.histogram(
            "repro_host_read_latency_seconds",
            help="Host read latency (streaming sketch)", unit="seconds",
            array=serial)
        # the host paths record each sample once; the summary fans it
        # out to the sketch so both surfaces stay populated
        self.write_latency.pipe_to(self.write_latency_hist)
        self.read_latency.pipe_to(self.read_latency_hist)
        self.host_writes = registry.counter(
            "repro_host_writes_total", help="Acknowledged host writes",
            array=serial)
        self.host_reads = registry.counter(
            "repro_host_reads_total", help="Completed host reads",
            array=serial)
        self.snapshot_groups_created = registry.counter(
            "repro_snapshot_groups_total",
            help="Snapshot groups created", array=serial)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _audit(self, command: str, **params) -> None:
        self.audit.append(AuditRecord(
            time=self.sim.now, command=command,
            params=tuple(sorted(params.items()))))

    def _check_alive(self) -> None:
        if self.failed:
            raise StorageError(f"array {self.serial} has failed")

    def _require_volume(self, volume_id: int) -> Volume:
        volume = self._volumes.get(volume_id)
        if volume is None:
            raise VolumeError(
                f"array {self.serial}: unknown volume {volume_id}")
        return volume

    def _require_pool(self, pool_id: int) -> StoragePool:
        pool = self._pools.get(pool_id)
        if pool is None:
            raise ArrayCommandError(
                f"array {self.serial}: unknown pool {pool_id}")
        return pool

    # ------------------------------------------------------------------
    # pools and volumes
    # ------------------------------------------------------------------

    def create_pool(self, capacity_blocks: int, name: str = "") -> StoragePool:
        """Create a capacity pool."""
        self._check_alive()
        pool_id = next(self._pool_ids)
        pool = StoragePool(pool_id, capacity_blocks,
                           name=name or f"{self.serial}-pool-{pool_id}")
        self._pools[pool_id] = pool
        self._audit("create_pool", pool_id=pool_id,
                    capacity_blocks=capacity_blocks)
        return pool

    def create_volume(self, pool_id: int, capacity_blocks: int,
                      name: str = "") -> Volume:
        """Allocate a volume from a pool."""
        self._check_alive()
        pool = self._require_pool(pool_id)
        volume_id = next(self._volume_ids)
        owner = f"volume-{volume_id}"
        pool.reserve(owner, capacity_blocks)
        volume = Volume(self.sim, volume_id, capacity_blocks,
                        self.config.media,
                        name=name or f"{self.serial}-ldev-{volume_id}")
        self._volumes[volume_id] = volume
        self._audit("create_volume", volume_id=volume_id, pool_id=pool_id,
                    capacity_blocks=capacity_blocks, name=volume.name)
        return volume

    def delete_volume(self, volume_id: int, pool_id: int) -> None:
        """Delete an unpaired volume and return its capacity."""
        self._check_alive()
        volume = self._require_volume(volume_id)
        if volume.role is not VolumeRole.SIMPLEX:
            raise ArrayCommandError(
                f"volume {volume_id} is {volume.role.value}; delete the "
                "pair first")
        if volume.snapshot_count:
            raise ArrayCommandError(
                f"volume {volume_id} has live snapshots")
        self._require_pool(pool_id).release(f"volume-{volume_id}")
        del self._volumes[volume_id]
        self._audit("delete_volume", volume_id=volume_id)

    def get_volume(self, volume_id: int) -> Volume:
        """Look up a volume by id."""
        return self._require_volume(volume_id)

    def volume_exists(self, volume_id: int) -> bool:
        """True if the volume id is allocated on this array."""
        return volume_id in self._volumes

    def find_volume_by_name(self, name: str) -> Optional[Volume]:
        """Locate a volume by its name (None if absent).

        Management clients that name their volumes deterministically use
        this to re-discover a volume after an ambiguous RPC outcome — a
        create that timed out may still have executed, and re-creating
        would leak an orphan.
        """
        for volume_id in sorted(self._volumes):
            if self._volumes[volume_id].name == name:
                return self._volumes[volume_id]
        return None

    def list_volumes(self) -> List[Volume]:
        """All volumes, id order."""
        return [self._volumes[i] for i in sorted(self._volumes)]

    def volume_handle(self, volume_id: int) -> str:
        """The stable external handle CSI publishes for a volume."""
        self._require_volume(volume_id)
        return f"naa.{self.serial}.{volume_id}"

    def parse_handle(self, handle: str) -> int:
        """Inverse of :meth:`volume_handle`; validates the serial."""
        parts = handle.split(".")
        if len(parts) != 3 or parts[0] != "naa" or parts[1] != self.serial:
            raise ArrayCommandError(
                f"array {self.serial}: foreign handle {handle!r}")
        return int(parts[2])

    # ------------------------------------------------------------------
    # journals
    # ------------------------------------------------------------------

    def create_journal(self, pool_id: int,
                       capacity_entries: Optional[int] = None,
                       name: str = "") -> JournalVolume:
        """Create a journal volume (reserves pool capacity 1:1 by entry)."""
        self._check_alive()
        pool = self._require_pool(pool_id)
        capacity = capacity_entries or self.config.journal_capacity_entries
        journal_id = next(self._journal_ids)
        pool.reserve(f"journal-{journal_id}", capacity)
        journal = JournalVolume(
            journal_id, capacity,
            name=name or f"{self.serial}-jnl-{journal_id}")
        self._journals[journal_id] = journal
        self._audit("create_journal", journal_id=journal_id,
                    capacity_entries=capacity)
        return journal

    def get_journal(self, journal_id: int) -> JournalVolume:
        """Look up a journal volume by id."""
        journal = self._journals.get(journal_id)
        if journal is None:
            raise ArrayCommandError(
                f"array {self.serial}: unknown journal {journal_id}")
        return journal

    def owns_journal(self, journal: JournalVolume) -> bool:
        """True when ``journal`` is hosted on this array.

        Journal groups are registered on both member arrays; probes use
        this to attribute a group's series to its main side only.
        """
        return self._journals.get(journal.journal_id) is journal

    # ------------------------------------------------------------------
    # asynchronous replication (ADC)
    # ------------------------------------------------------------------

    def create_journal_group(self, group_id: str, main_journal_id: int,
                             remote: "StorageArray",
                             backup_journal_id: int, link: NetworkLink,
                             adc_config: Optional[AdcConfig] = None,
                             ) -> JournalGroup:
        """Create an ADC pipeline between this (main) array and ``remote``.

        The group is registered on both arrays and its background loops
        start immediately.
        """
        self._check_alive()
        if group_id in self.journal_groups:
            raise ReplicationError(
                f"array {self.serial}: journal group {group_id} exists")
        group = JournalGroup(
            self.sim, group_id,
            main_journal=self.get_journal(main_journal_id),
            backup_journal=remote.get_journal(backup_journal_id),
            link=link, config=adc_config or self.config.adc)
        self.journal_groups[group_id] = group
        remote.journal_groups[group_id] = group
        group.start()
        self._audit("create_journal_group", group_id=group_id,
                    main_journal=main_journal_id,
                    backup_journal=backup_journal_id,
                    remote=remote.serial)
        return group

    def create_async_pair(self, pair_id: str, group_id: str, pvol_id: int,
                          remote: "StorageArray",
                          svol_id: int) -> ReplicationPair:
        """Pair a local P-VOL with a remote S-VOL inside a journal group.

        Multiple pairs in one group form a consistency group; for the
        paper's no-consistency-group baseline, create one group per pair.
        """
        self._check_alive()
        group = self.journal_groups.get(group_id)
        if group is None:
            raise ReplicationError(
                f"array {self.serial}: unknown journal group {group_id}")
        pvol = self._require_volume(pvol_id)
        svol = remote._require_volume(svol_id)
        self._check_pairable(pvol, svol)
        pair = ReplicationPair(
            pair_id=pair_id, mode=CopyMode.ASYNCHRONOUS, pvol=pvol,
            svol=svol, created_at=self.sim.now)
        group.add_pair(pair)
        pvol.set_role(VolumeRole.PVOL)
        svol.set_role(VolumeRole.SVOL)
        self._route_by_pvol[pvol_id] = group
        remote._restore_group_by_svol[svol_id] = group
        self._audit("create_async_pair", pair_id=pair_id, group_id=group_id,
                    pvol=pvol_id, svol=svol_id, remote=remote.serial)
        return pair

    # ------------------------------------------------------------------
    # synchronous replication (SDC baseline)
    # ------------------------------------------------------------------

    def create_sync_mirror(self, mirror_id: str, link: NetworkLink,
                           sdc_config: Optional[SdcConfig] = None,
                           ) -> SyncMirror:
        """Create a synchronous mirror context over ``link``."""
        self._check_alive()
        if mirror_id in self.sync_mirrors:
            raise ReplicationError(
                f"array {self.serial}: sync mirror {mirror_id} exists")
        mirror = SyncMirror(self.sim, mirror_id, link,
                            config=sdc_config or self.config.sdc)
        self.sync_mirrors[mirror_id] = mirror
        self._audit("create_sync_mirror", mirror_id=mirror_id)
        return mirror

    def create_sync_pair(self, pair_id: str, mirror_id: str, pvol_id: int,
                         remote: "StorageArray",
                         svol_id: int) -> ReplicationPair:
        """Pair volumes synchronously; initial copy runs in background."""
        self._check_alive()
        mirror = self.sync_mirrors.get(mirror_id)
        if mirror is None:
            raise ReplicationError(
                f"array {self.serial}: unknown sync mirror {mirror_id}")
        pvol = self._require_volume(pvol_id)
        svol = remote._require_volume(svol_id)
        self._check_pairable(pvol, svol)
        pair = ReplicationPair(
            pair_id=pair_id, mode=CopyMode.SYNCHRONOUS, pvol=pvol,
            svol=svol, created_at=self.sim.now)
        mirror.add_pair(pair)
        pvol.set_role(VolumeRole.PVOL)
        svol.set_role(VolumeRole.SVOL)
        self._route_by_pvol[pvol_id] = mirror
        self.sim.spawn(mirror.initial_copy(pair_id),
                       name=f"sdc-initial-copy-{pair_id}")
        self._audit("create_sync_pair", pair_id=pair_id,
                    mirror_id=mirror_id, pvol=pvol_id, svol=svol_id,
                    remote=remote.serial)
        return pair

    def delete_journal_group(self, group_id: str,
                             remote: "StorageArray") -> None:
        """Tear down an empty journal group on both arrays."""
        self._check_alive()
        group = self.journal_groups.get(group_id)
        if group is None:
            raise ReplicationError(
                f"array {self.serial}: unknown journal group {group_id}")
        if group.pairs:
            raise ReplicationError(
                f"journal group {group_id} still has {len(group.pairs)} "
                "pairs")
        group.stop()
        group.main_journal.clear()
        group.backup_journal.clear()
        del self.journal_groups[group_id]
        remote.journal_groups.pop(group_id, None)
        self._audit("delete_journal_group", group_id=group_id)

    def _check_pairable(self, pvol: Volume, svol: Volume) -> None:
        # A promoted secondary (SSWS) may become the primary of a new
        # pair — that is exactly what failback's reverse copy does.
        if pvol.role not in (VolumeRole.SIMPLEX, VolumeRole.SSWS):
            raise ReplicationError(
                f"volume {pvol.volume_id} is already {pvol.role.value}")
        if svol.role is not VolumeRole.SIMPLEX:
            raise ReplicationError(
                f"volume {svol.volume_id} is already {svol.role.value}")

    def delete_pair(self, pair_id: str) -> None:
        """Dissolve a pair: both volumes return to SIMPLEX."""
        self._check_alive()
        for group in self.journal_groups.values():
            if pair_id in group.pairs:
                pair = group.remove_pair(pair_id)
                self._finish_pair_delete(pair)
                self._audit("delete_pair", pair_id=pair_id)
                return
        for mirror in self.sync_mirrors.values():
            if pair_id in mirror.pairs:
                pair = mirror.remove_pair(pair_id)
                self._finish_pair_delete(pair)
                self._audit("delete_pair", pair_id=pair_id)
                return
        raise ReplicationError(
            f"array {self.serial}: unknown pair {pair_id}")

    def _finish_pair_delete(self, pair: ReplicationPair) -> None:
        pair.pvol.set_role(VolumeRole.SIMPLEX)
        pair.svol.set_role(VolumeRole.SIMPLEX)
        self._route_by_pvol.pop(pair.pvol.volume_id, None)

    def find_pair(self, pair_id: str) -> Optional[ReplicationPair]:
        """Locate a pair by id across all engines (None if absent)."""
        for group in self.journal_groups.values():
            if pair_id in group.pairs:
                return group.pairs[pair_id]
        for mirror in self.sync_mirrors.values():
            if pair_id in mirror.pairs:
                return mirror.pairs[pair_id]
        return None

    def pair_status(self, pair_id: str) -> PairState:
        """Pair state query (the surface the replication plugin polls)."""
        pair = self.find_pair(pair_id)
        if pair is None:
            raise ReplicationError(
                f"array {self.serial}: unknown pair {pair_id}")
        return pair.state

    # ------------------------------------------------------------------
    # host I/O
    # ------------------------------------------------------------------

    def host_write(self, volume_id: int, block: int, payload: bytes,
                   tag: Optional[str] = None,
                   ) -> Generator[object, object, WriteRecord]:
        """One host write: local apply, replication, ack, history record.

        Process generator.  The returned :class:`WriteRecord` carries the
        global ack sequence — the ground truth consistency checking is
        built on.
        """
        self._check_alive()
        volume = self._require_volume(volume_id)
        if not volume.writable_by_host:
            raise VolumeError(
                f"volume {volume_id} is {volume.role.value}; host writes "
                "are rejected")
        start = self.sim.now
        tracer = self.tracer
        span = None
        if tracer.enabled:
            span = tracer.start("host-write", array=self.serial,
                                volume=volume_id, block=block)
        # hash the payload once; the CRC32 rides end-to-end into the
        # stored BlockValue and the journal entry
        data = payload if type(payload) is bytes else bytes(payload)
        checksum = payload_checksum(data)
        try:
            version = yield from volume.write_block(block, data,
                                                    checksum=checksum)
            route = self._route_by_pvol.get(volume_id)
            if route is not None:
                if isinstance(route, JournalGroup):
                    yield from route.journal_append(
                        volume_id, block, data, version, span=span,
                        checksum=checksum)
                else:
                    yield from route.replicate_write(volume_id, block, data,
                                                     version, span=span)
            self._check_alive()  # array may have failed mid-write: no ack
        except BaseException:
            if span is not None:
                tracer.finish(span, status="error")
            raise
        record = self.history.append(self.sim.now, volume_id, block,
                                     version, tag)
        self.write_latency.record(self.sim.now - start)
        self.host_writes.increment()
        if span is not None:
            tracer.finish(span, ack_seq=record.seq, version=version)
        return record

    def host_write_many(self, writes: Sequence[tuple],
                        tag: Optional[str] = None,
                        ) -> Generator[object, object, List[WriteRecord]]:
        """A batch of host writes applied with one aggregated media wait,
        one tracer span, and one generator frame.

        ``writes`` is a sequence of ``(volume_id, block, payload)`` or
        ``(volume_id, block, payload, tag)`` tuples (a per-write tag
        overrides the batch-level ``tag``).  Process generator; returns
        one :class:`WriteRecord` per write, in input order.

        Semantics relative to issuing the same writes serially through
        :meth:`host_write`:

        * **ack order is unchanged** — versions, journal sequences and
          history ack seqs are allocated per write in input order, so
          the WriteRecord sequence, the journal contents and the final
          images are identical to the serial run;
        * the batch waits out ``max`` of the per-write media costs (the
          media overlaps concurrent block writes, exactly like the
          batched restore applier) plus one journal-append latency per
          routed journal group, instead of the serial sum — ack
          *timestamps* are therefore earlier, and all writes of the
          batch ack at the same instant;
        * per-write failure semantics are preserved: a suspended journal
          group marks each unprotected write dirty exactly as serial
          appends would, and an array failure before the ack point acks
          none of the batch.

        Synchronously mirrored volumes take their per-write replication
        RTT after the aggregated local wait (the remote round trip
        cannot be collapsed without changing SDC semantics).
        """
        self._check_alive()
        if not writes:
            return []
        # validate everything and hash each payload once, up front —
        # a bad write rejects the whole batch before any state changes
        prepared = []
        for item in writes:
            if len(item) == 4:
                volume_id, block, payload, write_tag = item
            else:
                volume_id, block, payload = item
                write_tag = tag
            volume = self._require_volume(volume_id)
            if not volume.writable_by_host:
                raise VolumeError(
                    f"volume {volume_id} is {volume.role.value}; host "
                    "writes are rejected")
            if not isinstance(payload, (bytes, bytearray)):
                raise VolumeError(
                    f"{volume.name}: payload must be bytes, got "
                    f"{type(payload).__name__}")
            volume._check_block(block)
            volume._check_online()
            data = payload if type(payload) is bytes else bytes(payload)
            prepared.append((volume, block, data, payload_checksum(data),
                             write_tag))
        start = self.sim.now
        tracer = self.tracer
        span = None
        if tracer.enabled:
            span = tracer.start("host-write-batch", array=self.serial,
                                writes=len(prepared))
        try:
            # one aggregated media wait: concurrent block writes (and
            # their pending copy-on-write preservations) overlap
            delay = max(volume.apply_delay(block)
                        for volume, block, _data, _crc, _t in prepared)
            if delay > 0:
                yield self.sim.timeout(delay)
            # install in input order (latency already paid), collecting
            # the journal legs per routed group in ack order
            applied = []
            journal_batches: Dict[JournalGroup, List[tuple]] = {}
            sync_writes = []
            for volume, block, data, checksum, write_tag in prepared:
                version = volume.install_block(block, data, None,
                                               checksum=checksum)
                applied.append((volume.volume_id, block, version,
                                write_tag))
                route = self._route_by_pvol.get(volume.volume_id)
                if route is None:
                    continue
                if isinstance(route, JournalGroup):
                    batch = journal_batches.get(route)
                    if batch is None:
                        batch = journal_batches[route] = []
                    batch.append((volume.volume_id, block, data, version,
                                  checksum))
                else:
                    sync_writes.append((route, volume.volume_id, block,
                                        data, version))
            for group, batch in journal_batches.items():
                yield from group.journal_append_many(batch, span=span)
            for route, volume_id, block, data, version in sync_writes:
                yield from route.replicate_write(volume_id, block, data,
                                                 version, span=span)
            self._check_alive()  # array failed mid-batch: ack none
        except BaseException:
            if span is not None:
                tracer.finish(span, status="error")
            raise
        now = self.sim.now
        history_append = self.history.append
        records = [history_append(now, volume_id, block, version, write_tag)
                   for volume_id, block, version, write_tag in applied]
        # every write of the batch acked with the batch's latency: one
        # sample per write keeps sample counts equal to host_writes
        latency = now - start
        record_latency = self.write_latency.record
        for _ in records:
            record_latency(latency)
        self.host_writes.increment(len(records))
        if span is not None:
            tracer.finish(span, first_ack_seq=records[0].seq,
                          last_ack_seq=records[-1].seq)
        return records

    def host_read(self, volume_id: int, block: int,
                  ) -> Generator[object, object, Optional[bytes]]:
        """One host read; returns the payload or None (process generator)."""
        self._check_alive()
        volume = self._require_volume(volume_id)
        start = self.sim.now
        payload = yield from volume.read_block(block)
        self.read_latency.record(self.sim.now - start)
        self.host_reads.increment()
        return payload

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------

    def create_snapshot(self, volume_id: int, name: str = "") -> Snapshot:
        """Instant copy-on-write snapshot of one volume (no quiesce)."""
        self._check_alive()
        volume = self._require_volume(volume_id)
        snapshot_id = next(self._snapshot_ids)
        snapshot = Snapshot(snapshot_id, volume, self.sim.now,
                            name=name or f"{self.serial}-snap-{snapshot_id}")
        self._snapshots[snapshot_id] = snapshot
        self._audit("create_snapshot", snapshot_id=snapshot_id,
                    volume_id=volume_id)
        return snapshot

    def create_snapshot_group(self, group_id: str,
                              volume_ids: Sequence[int],
                              quiesce: bool = True,
                              ) -> Generator[object, object, SnapshotGroup]:
        """Snapshot several volumes at one consistent instant.

        Process generator.  With ``quiesce`` (the snapshot *group*
        technology of §III-A2) the restore pipelines feeding the target
        volumes pause at an entry boundary first, so the images form a
        prefix of the replicated order.  Without it this degenerates to
        per-volume snapshots taken at one wall-clock instant, which is
        *not* a consistent cut while restore is running.
        """
        self._check_alive()
        if group_id in self._snapshot_groups:
            raise SnapshotError(
                f"array {self.serial}: snapshot group {group_id} exists")
        if not volume_ids:
            raise SnapshotError("snapshot group needs at least one volume")
        volumes = [self._require_volume(vid) for vid in volume_ids]
        span = self.tracer.start(
            "snapshot-group", array=self.serial, group=group_id,
            members=len(volumes), quiesce=quiesce)
        groups: Set[JournalGroup] = {
            self._restore_group_by_svol[vid]
            for vid in volume_ids if vid in self._restore_group_by_svol}
        if quiesce:
            for journal_group in groups:
                journal_group.quiesce_restore()
            while any(journal_group.applying for journal_group in groups):
                yield self.sim.timeout(self.config.media.write_latency)
        try:
            snapshots = []
            for volume in volumes:
                snapshot_id = next(self._snapshot_ids)
                snapshot = Snapshot(
                    snapshot_id, volume, self.sim.now,
                    name=f"{self.serial}-snap-{snapshot_id}")
                if quiesce:
                    restore_group = self._restore_group_by_svol.get(
                        volume.volume_id)
                    if restore_group is not None:
                        snapshot.group_sequence = \
                            restore_group.restored_sequence
                self._snapshots[snapshot_id] = snapshot
                snapshots.append(snapshot)
        finally:
            if quiesce:
                for journal_group in groups:
                    journal_group.resume_restore()
        group = SnapshotGroup(group_id=group_id, created_at=self.sim.now,
                              snapshots=snapshots, quiesced=quiesce)
        self._snapshot_groups[group_id] = group
        self.snapshot_groups_created.increment()
        self.tracer.finish(span)
        self._audit("create_snapshot_group", group_id=group_id,
                    volume_ids=tuple(volume_ids), quiesce=quiesce)
        return group

    def get_snapshot(self, snapshot_id: int) -> Snapshot:
        """Look up a snapshot by id."""
        snapshot = self._snapshots.get(snapshot_id)
        if snapshot is None:
            raise SnapshotError(
                f"array {self.serial}: unknown snapshot {snapshot_id}")
        return snapshot

    def get_snapshot_group(self, group_id: str) -> SnapshotGroup:
        """Look up a snapshot group by id."""
        group = self._snapshot_groups.get(group_id)
        if group is None:
            raise SnapshotError(
                f"array {self.serial}: unknown snapshot group {group_id}")
        return group

    def list_snapshot_groups(self) -> List[SnapshotGroup]:
        """All live snapshot groups, id order (probe/report surface)."""
        return [self._snapshot_groups[gid]
                for gid in sorted(self._snapshot_groups)]

    def clone_snapshot(self, snapshot_id: int, pool_id: int,
                       name: str = "") -> Volume:
        """Materialise a snapshot into a new full, independent volume.

        The clone holds the snapshot view's *current* image (overlay
        included) with its original block versions, so consistency
        checking against history keeps working on clones.  Modelled as
        an instant flash-copy; the capacity is reserved from ``pool_id``
        up front like any volume.
        """
        self._check_alive()
        snapshot = self.get_snapshot(snapshot_id)
        clone = self.create_volume(
            pool_id, snapshot.base.capacity_blocks,
            name=name or f"{snapshot.name}-clone")
        max_version = 0
        for block, payload in snapshot.image_blocks().items():
            version = snapshot.version_of(block)
            clone._blocks[block] = BlockValue(
                bytes(payload), version,
                checksum=payload_checksum(payload))
            max_version = max(max_version, version)
        clone._version_counter = max_version
        self._audit("clone_snapshot", snapshot_id=snapshot_id,
                    clone_id=clone.volume_id)
        return clone

    def clone_snapshot_group(self, group_id: str, pool_id: int,
                             ) -> Dict[int, Volume]:
        """Clone every member of a snapshot group.

        Returns base volume id → clone, the point-in-time restore
        primitive: mount the clones and recover the databases at the
        generation's instant.
        """
        self._check_alive()
        group = self.get_snapshot_group(group_id)
        clones: Dict[int, Volume] = {}
        for snapshot in group.snapshots:
            clones[snapshot.base.volume_id] = self.clone_snapshot(
                snapshot.snapshot_id, pool_id,
                name=f"{group_id}-{snapshot.base.volume_id}-clone")
        return clones

    def delete_snapshot(self, snapshot_id: int) -> None:
        """Delete a snapshot, releasing its COW store."""
        self._check_alive()
        self.get_snapshot(snapshot_id).delete()
        del self._snapshots[snapshot_id]
        self._audit("delete_snapshot", snapshot_id=snapshot_id)

    def delete_snapshot_group(self, group_id: str) -> None:
        """Delete a snapshot group and every member snapshot."""
        self._check_alive()
        group = self.get_snapshot_group(group_id)
        for snapshot in group.snapshots:
            if snapshot.snapshot_id in self._snapshots:
                del self._snapshots[snapshot.snapshot_id]
            snapshot.delete()
        del self._snapshot_groups[group_id]
        self._audit("delete_snapshot_group", group_id=group_id)

    # ------------------------------------------------------------------
    # failure / failover
    # ------------------------------------------------------------------

    def fail(self) -> None:
        """Disaster: the array stops serving I/O and its pipelines halt.

        Journal groups whose *main* journal lives here stop transferring;
        restore loops at the surviving backup array keep draining what
        already arrived (the paper's DR model: data in the backup
        journal survives, data still in the main journal is lost).
        """
        self.failed = True
        self.sim.telemetry.recorder.record("array", self.serial,
                                           event="fail")
        local_journals = set(self._journals.values())
        for group in self.journal_groups.values():
            if group.main_journal in local_journals:
                group.stop_transfer()

    def repair(self) -> None:
        """Bring a failed array back online (post-disaster repair).

        Volumes and configuration survive (the hardware was replaced /
        repaired, the media kept its last state); replication pipelines
        do NOT restart automatically — failback re-establishes them
        explicitly in the reverse direction first.
        """
        self.failed = False
        self.sim.telemetry.recorder.record("array", self.serial,
                                           event="repair")
        self._audit("repair")

    def format_volume(self, volume_id: int) -> None:
        """Erase a volume's contents for use as a copy target.

        Failback support: the old primary's stale data (including acked
        writes that never reached the backup) must not shadow the
        reverse initial copy.  Only unpaired volumes can be formatted.
        """
        self._check_alive()
        volume = self._require_volume(volume_id)
        if volume.role is not VolumeRole.SIMPLEX:
            raise ArrayCommandError(
                f"volume {volume_id} is {volume.role.value}; unpair it "
                "before formatting")
        volume._blocks.clear()
        volume._version_counter = 0
        self._audit("format_volume", volume_id=volume_id)

    def promote_secondary(self, volume_id: int) -> None:
        """Failover: make a local S-VOL host-writable (SSWS)."""
        volume = self._require_volume(volume_id)
        if volume.role is not VolumeRole.SVOL:
            raise ReplicationError(
                f"volume {volume_id} is {volume.role.value}, not an S-VOL")
        volume.set_role(VolumeRole.SSWS)
        self.sim.telemetry.recorder.record(
            "array", self.serial, event="promote-secondary",
            volume=volume_id)
        group = self._restore_group_by_svol.get(volume_id)
        if group is not None:
            for pair in group.pairs.values():
                if pair.svol.volume_id == volume_id:
                    pair.promote()
        self._audit("promote_secondary", volume_id=volume_id)

    def __repr__(self) -> str:
        state = "FAILED" if self.failed else "ok"
        return (f"<StorageArray {self.serial!r} {state} "
                f"volumes={len(self._volumes)} "
                f"groups={len(self.journal_groups)}>")
