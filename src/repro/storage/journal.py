"""Journal volumes for asynchronous data copy.

The ADC (§III-A1 of the paper) stores update logs in a *journal volume*
at the main site, ships them to the journal volume at the backup site,
and applies ("restores") them to the secondary volumes **in sequence
order**.  The journal's monotone sequence number is what turns a set of
volumes sharing one journal into a *consistency group*: the restore order
at the backup equals the ack order at the main site.

:class:`JournalVolume` is a bounded FIFO of :class:`JournalEntry` with a
per-journal sequence counter.  Overflow (host writing faster than the
link drains, or the link being down) is reported to the owner, which
suspends the pair — mirroring how a real array drops to PSUE when a
journal fills.
"""

from __future__ import annotations

import zlib
from collections import deque
from dataclasses import dataclass, replace
from typing import Callable, Deque, List, Optional


def payload_checksum(payload: bytes) -> int:
    """CRC32 of a payload, the integrity metadata of the data path."""
    return zlib.crc32(bytes(payload)) & 0xFFFFFFFF


@dataclass(frozen=True)
class JournalEntry:
    """One journaled host write.

    ``sequence`` orders entries within one journal; ``version`` is the
    per-volume version installed by the write (used when applying to the
    secondary so block maps stay comparable).  ``checksum`` is the CRC32
    of the payload computed at append time; it travels with the entry so
    the transfer-receive and restore-apply sides can detect corruption
    picked up on the wire or in the journal volume.
    """

    sequence: int
    volume_id: int
    block: int
    payload: bytes
    version: int
    created_at: float
    #: CRC32 of ``payload`` at append time (None for hand-built legacy
    #: entries, which then skip verification)
    checksum: Optional[int] = None
    #: telemetry trace context riding with the entry across the
    #: site-to-site hop (None when the write was not traced), so the
    #: restore apply at the backup can parent its span to the
    #: originating host write
    trace_id: Optional[str] = None
    span_id: Optional[str] = None

    @property
    def size_bytes(self) -> int:
        """Wire size: payload plus a fixed 64-byte header."""
        return len(self.payload) + 64

    def verify_checksum(self) -> bool:
        """True when the payload still matches its append-time CRC32."""
        if self.checksum is None:
            return True
        return payload_checksum(self.payload) == self.checksum


class JournalFullError(Exception):
    """Raised by :meth:`JournalVolume.append` when no capacity remains.

    Deliberately not part of the public error hierarchy: the ADC engine
    always catches it and converts it into a pair suspension; user code
    should never see it.
    """


class JournalVolume:
    """Bounded FIFO of journal entries with a monotone sequence counter."""

    def __init__(self, journal_id: int, capacity_entries: int,
                 name: str = "") -> None:
        if capacity_entries < 1:
            raise ValueError(
                f"journal capacity must be >= 1 entry: {capacity_entries}")
        self.journal_id = journal_id
        self.name = name or f"journal-{journal_id}"
        self.capacity_entries = capacity_entries
        self._entries: Deque[JournalEntry] = deque()
        self._next_sequence = 0
        #: highest sequence ever appended (-1 when none)
        self.head_sequence = -1
        #: peak occupancy, for capacity-planning experiments
        self.peak_entries = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def free_entries(self) -> int:
        """Remaining capacity in entries."""
        return self.capacity_entries - len(self._entries)

    def append(self, volume_id: int, block: int, payload: bytes,
               version: int, time: float,
               trace_id: Optional[str] = None,
               span_id: Optional[str] = None) -> JournalEntry:
        """Append a new entry, assigning the next sequence number.

        Raises :class:`JournalFullError` when at capacity; the sequence
        counter is *not* consumed in that case.
        """
        if len(self._entries) >= self.capacity_entries:
            raise JournalFullError(
                f"{self.name} full ({self.capacity_entries} entries)")
        entry = JournalEntry(
            sequence=self._next_sequence, volume_id=volume_id, block=block,
            payload=bytes(payload), version=version, created_at=time,
            checksum=payload_checksum(payload),
            trace_id=trace_id, span_id=span_id)
        self._next_sequence += 1
        self.head_sequence = entry.sequence
        self._entries.append(entry)
        self.peak_entries = max(self.peak_entries, len(self._entries))
        return entry

    def ingest(self, entry: JournalEntry) -> None:
        """Accept a transferred entry at the backup site.

        Entries must arrive in sequence order (the transfer process ships
        them FIFO over one link); gaps indicate a programming error.
        """
        if self._entries and entry.sequence <= self._entries[-1].sequence:
            raise ValueError(
                f"{self.name}: out-of-order ingest "
                f"seq={entry.sequence} after {self._entries[-1].sequence}")
        if len(self._entries) >= self.capacity_entries:
            raise JournalFullError(f"{self.name} full on ingest")
        self._entries.append(entry)
        self.head_sequence = entry.sequence
        self.peak_entries = max(self.peak_entries, len(self._entries))

    def peek_batch(self, limit: int) -> List[JournalEntry]:
        """The oldest ``limit`` entries without removing them."""
        if limit < 1:
            raise ValueError(f"limit must be >= 1: {limit}")
        return [self._entries[i]
                for i in range(min(limit, len(self._entries)))]

    def pop_through(self, sequence: int) -> List[JournalEntry]:
        """Remove and return all entries with ``sequence <=`` the given
        sequence (journal trim after successful transfer/restore)."""
        removed: List[JournalEntry] = []
        while self._entries and self._entries[0].sequence <= sequence:
            removed.append(self._entries.popleft())
        return removed

    def oldest_sequence(self) -> Optional[int]:
        """Sequence of the oldest retained entry, or None when empty."""
        return self._entries[0].sequence if self._entries else None

    def snapshot_entries(self) -> List[JournalEntry]:
        """Copy of all retained entries (failover drain / tests)."""
        return list(self._entries)

    def corrupt_entry(self, index: int,
                      mutate: Optional[Callable[[bytes], bytes]] = None,
                      ) -> Optional[JournalEntry]:
        """Fault injection: corrupt the payload of the ``index``-th
        retained entry *in place* without updating its checksum.

        Models a torn/bit-rotted write inside the journal volume medium.
        ``mutate`` transforms the payload (default flips the first byte
        and truncates — a torn write).  Returns the corrupted entry, or
        None when the journal holds fewer than ``index + 1`` entries.
        """
        if index < 0 or index >= len(self._entries):
            return None
        entry = self._entries[index]
        if mutate is None:
            payload = entry.payload
            flipped = bytes([payload[0] ^ 0xFF]) + payload[1:] \
                if payload else b"\xff"
            mutated = flipped[:max(1, len(flipped) - 1)]
        else:
            mutated = bytes(mutate(entry.payload))
        corrupted = replace(entry, payload=mutated)
        self._entries[index] = corrupted
        return corrupted

    def clear(self) -> None:
        """Drop every retained entry (pair deletion)."""
        self._entries.clear()

    def __repr__(self) -> str:
        return (f"<JournalVolume {self.name!r} "
                f"{len(self._entries)}/{self.capacity_entries} "
                f"head={self.head_sequence}>")
