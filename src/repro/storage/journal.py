"""Journal volumes for asynchronous data copy.

The ADC (§III-A1 of the paper) stores update logs in a *journal volume*
at the main site, ships them to the journal volume at the backup site,
and applies ("restores") them to the secondary volumes **in sequence
order**.  The journal's monotone sequence number is what turns a set of
volumes sharing one journal into a *consistency group*: the restore order
at the backup equals the ack order at the main site.

:class:`JournalVolume` is a bounded FIFO of :class:`JournalEntry` with a
per-journal sequence counter.  Overflow (host writing faster than the
link drains, or the link being down) is reported to the owner, which
suspends the pair — mirroring how a real array drops to PSUE when a
journal fills.

Storage is a *sequence-indexed ring*: a list plus a head offset, kept
sorted by sequence (appends are monotone by construction).  Every hot
operation is O(1) amortised per entry — ``peek_batch`` is one slice,
``pop_through`` advances the head after a binary search on the sequence
column, and the oldest entry / retained byte total are direct reads —
so the transfer loop never pays a per-index deque walk or a full-journal
copy just to sample lag.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from dataclasses import dataclass, replace
from operator import attrgetter
from typing import Callable, List, Optional


def payload_checksum(payload: bytes) -> int:
    """CRC32 of a payload, the integrity metadata of the data path.

    Accepts any buffer (``bytes``, ``bytearray``, ``memoryview``)
    without copying it first — ``zlib.crc32`` reads the buffer in place.
    """
    return zlib.crc32(payload) & 0xFFFFFFFF


_entry_sequence = attrgetter("sequence")


@dataclass(slots=True)
class JournalEntry:
    """One journaled host write.

    ``sequence`` orders entries within one journal; ``version`` is the
    per-volume version installed by the write (used when applying to the
    secondary so block maps stay comparable).  ``checksum`` is the CRC32
    of the payload computed at append time; it travels with the entry so
    the transfer-receive and restore-apply sides can detect corruption
    picked up on the wire or in the journal volume.

    Not frozen: a frozen dataclass ``__init__`` pays one
    ``object.__setattr__`` per field, which dominated the ingest hot
    path.  Treat entries as immutable anyway — only the fault-injection
    hooks (:meth:`JournalVolume.corrupt_entry`) may replace one.
    """

    sequence: int
    volume_id: int
    block: int
    payload: bytes
    version: int
    created_at: float
    #: CRC32 of ``payload`` at append time (None for hand-built legacy
    #: entries, which then skip verification)
    checksum: Optional[int] = None
    #: telemetry trace context riding with the entry across the
    #: site-to-site hop (None when the write was not traced), so the
    #: restore apply at the backup can parent its span to the
    #: originating host write
    trace_id: Optional[str] = None
    span_id: Optional[str] = None

    @property
    def size_bytes(self) -> int:
        """Wire size: payload plus a fixed 64-byte header."""
        return len(self.payload) + 64

    def verify_checksum(self) -> bool:
        """True when the payload still matches its append-time CRC32."""
        if self.checksum is None:
            return True
        return payload_checksum(self.payload) == self.checksum


class JournalFullError(Exception):
    """Raised by :meth:`JournalVolume.append` when no capacity remains.

    Deliberately not part of the public error hierarchy: the ADC engine
    always catches it and converts it into a pair suspension; user code
    should never see it.
    """


#: dead ring slots tolerated before the head offset is compacted away
_COMPACT_THRESHOLD = 4096


class JournalVolume:
    """Bounded FIFO of journal entries with a monotone sequence counter."""

    __slots__ = ("journal_id", "name", "capacity_entries", "_ring",
                 "_sizes", "_head", "_next_sequence", "head_sequence",
                 "peak_entries", "bytes_retained", "mutations")

    def __init__(self, journal_id: int, capacity_entries: int,
                 name: str = "") -> None:
        if capacity_entries < 1:
            raise ValueError(
                f"journal capacity must be >= 1 entry: {capacity_entries}")
        self.journal_id = journal_id
        self.name = name or f"journal-{journal_id}"
        self.capacity_entries = capacity_entries
        #: the ring: retained entries live at ``_ring[_head:]``, sorted
        #: by sequence; the dead prefix is compacted away once it
        #: dominates the list.  ``_sizes`` mirrors the ring index-for-
        #: index with each entry's wire size, so trims can subtract a
        #: whole window's bytes with one C-level ``sum``.
        self._ring: List[JournalEntry] = []
        self._sizes: List[int] = []
        self._head = 0
        self._next_sequence = 0
        #: highest sequence ever appended (-1 when none)
        self.head_sequence = -1
        #: peak occupancy, for capacity-planning experiments
        self.peak_entries = 0
        #: wire bytes of all retained entries, maintained incrementally
        #: so byte-lag probes never walk the journal
        self.bytes_retained = 0
        #: in-place payload mutations injected by fault hooks
        #: (:meth:`corrupt_entry`); a non-zero count tells the restore
        #: side it can no longer trust the receive-time verification
        self.mutations = 0

    def __len__(self) -> int:
        return len(self._ring) - self._head

    @property
    def free_entries(self) -> int:
        """Remaining capacity in entries."""
        return self.capacity_entries - len(self)

    def append(self, volume_id: int, block: int, payload: bytes,
               version: int, time: float,
               trace_id: Optional[str] = None,
               span_id: Optional[str] = None,
               checksum: Optional[int] = None) -> JournalEntry:
        """Append a new entry, assigning the next sequence number.

        Raises :class:`JournalFullError` when at capacity; the sequence
        counter is *not* consumed in that case.  ``checksum`` reuses a
        payload CRC32 the caller already computed (the host-write path
        hashes once and threads the value end-to-end); ``None`` computes
        it here.
        """
        ring = self._ring
        occupancy = len(ring) - self._head
        if occupancy >= self.capacity_entries:
            raise JournalFullError(
                f"{self.name} full ({self.capacity_entries} entries)")
        # materialise the payload exactly once; bytes input is immutable
        # and passes through without a copy
        data = payload if type(payload) is bytes else bytes(payload)
        if checksum is None:
            checksum = payload_checksum(data)
        sequence = self._next_sequence
        entry = JournalEntry(
            sequence, volume_id, block, data, version, time,
            checksum, trace_id, span_id)
        self._next_sequence = sequence + 1
        self.head_sequence = sequence
        ring.append(entry)
        size = len(data) + 64
        self._sizes.append(size)
        self.bytes_retained += size
        if occupancy >= self.peak_entries:
            self.peak_entries = occupancy + 1
        return entry

    def ingest(self, entry: JournalEntry) -> None:
        """Accept a transferred entry at the backup site.

        Entries must arrive in sequence order (the transfer process ships
        them FIFO over one link); gaps indicate a programming error.
        """
        ring = self._ring
        if len(ring) > self._head and entry.sequence <= ring[-1].sequence:
            raise ValueError(
                f"{self.name}: out-of-order ingest "
                f"seq={entry.sequence} after {ring[-1].sequence}")
        if len(ring) - self._head >= self.capacity_entries:
            raise JournalFullError(f"{self.name} full on ingest")
        ring.append(entry)
        self.head_sequence = entry.sequence
        size = len(entry.payload) + 64  # inlined entry.size_bytes
        self._sizes.append(size)
        self.bytes_retained += size
        occupancy = len(ring) - self._head
        if occupancy > self.peak_entries:
            self.peak_entries = occupancy

    def ingest_batch(self, entries: List[JournalEntry]) -> None:
        """Bulk :meth:`ingest` of one transferred batch.

        All-or-nothing: order and capacity are checked *before* any
        mutation, so a :class:`JournalFullError` leaves the journal
        exactly as it was and the caller can fall back to per-entry
        ingest (which admits the prefix that fits).  ``entries`` must be
        in sequence order — they are a :meth:`peek_batch` slice of the
        shipping journal, which is sorted by construction, so only the
        first entry is checked against the ring tail.
        """
        if not entries:
            return
        ring = self._ring
        if len(ring) > self._head \
                and entries[0].sequence <= ring[-1].sequence:
            raise ValueError(
                f"{self.name}: out-of-order ingest "
                f"seq={entries[0].sequence} after {ring[-1].sequence}")
        occupancy = len(ring) - self._head
        if occupancy + len(entries) > self.capacity_entries:
            raise JournalFullError(f"{self.name} full on ingest")
        ring.extend(entries)
        sizes = [len(entry.payload) + 64 for entry in entries]
        self._sizes.extend(sizes)
        self.bytes_retained += sum(sizes)
        self.head_sequence = entries[-1].sequence
        occupancy += len(entries)
        if occupancy > self.peak_entries:
            self.peak_entries = occupancy

    def peek_batch(self, limit: int, offset: int = 0) -> List[JournalEntry]:
        """The oldest ``limit`` entries without removing them.

        ``offset`` skips that many retained entries first: the windowed
        transfer loop peeks the batch *behind* its in-flight shipments
        without trimming anything, so a failed shipment leaves the
        journal untouched and simply re-ships.
        """
        if limit < 1:
            raise ValueError(f"limit must be >= 1: {limit}")
        if offset < 0:
            raise ValueError(f"offset must be >= 0: {offset}")
        start = self._head + offset
        return self._ring[start:start + limit]

    def pop_through(self, sequence: int) -> List[JournalEntry]:
        """Remove and return all entries with ``sequence <=`` the given
        sequence (journal trim after successful transfer/restore).

        O(log n) to locate the cut plus O(removed) to hand the removed
        entries back; the dead prefix is only compacted once it is both
        large and at least half the list (it then at least doubles
        before the next compaction), so the amortised shift cost per
        retained entry is constant.
        """
        ring = self._ring
        head = self._head
        if len(ring) <= head or ring[head].sequence > sequence:
            return []
        size = len(ring)
        if ring[-1].sequence <= sequence:  # full drain: the common case
            cut = size
        else:
            # sequences are contiguous unless entries were skipped
            # (quarantine, coalescing), so index distance == sequence
            # distance is an exact guess almost always; verify with two
            # probes and fall back to binary search on gaps
            cut = head + (sequence - ring[head].sequence) + 1
            if cut >= size or ring[cut].sequence <= sequence \
                    or ring[cut - 1].sequence > sequence:
                cut = bisect_right(ring, sequence, lo=head, hi=min(cut, size),
                                   key=_entry_sequence)
        removed = ring[head:cut]
        if cut == len(ring):
            # everything retained was consumed: drop storage outright
            ring.clear()
            self._sizes.clear()
            self._head = 0
            self.bytes_retained = 0
        else:
            self.bytes_retained -= sum(self._sizes[head:cut])
            self._head = cut
            if cut >= _COMPACT_THRESHOLD and cut * 2 >= len(ring):
                del ring[:cut]
                del self._sizes[:cut]
                self._head = 0
        return removed

    def oldest_sequence(self) -> Optional[int]:
        """Sequence of the oldest retained entry, or None when empty."""
        ring = self._ring
        return ring[self._head].sequence if len(ring) > self._head else None

    def oldest_entry(self) -> Optional[JournalEntry]:
        """The oldest retained entry itself, or None when empty (O(1);
        lag probes use this instead of copying the whole journal)."""
        ring = self._ring
        return ring[self._head] if len(ring) > self._head else None

    def snapshot_entries(self) -> List[JournalEntry]:
        """Copy of all retained entries (failover drain / tests)."""
        return self._ring[self._head:]

    def corrupt_entry(self, index: int,
                      mutate: Optional[Callable[[bytes], bytes]] = None,
                      ) -> Optional[JournalEntry]:
        """Fault injection: corrupt the payload of the ``index``-th
        retained entry *in place* without updating its checksum.

        Models a torn/bit-rotted write inside the journal volume medium.
        ``mutate`` transforms the payload (default flips the first byte
        and truncates — a torn write).  Returns the corrupted entry, or
        None when the journal holds fewer than ``index + 1`` entries.
        Bumps :attr:`mutations`, which re-arms restore-apply checksum
        verification for the journal's consumers.
        """
        if index < 0 or index >= len(self):
            return None
        slot = self._head + index
        entry = self._ring[slot]
        if mutate is None:
            payload = entry.payload
            flipped = bytes([payload[0] ^ 0xFF]) + payload[1:] \
                if payload else b"\xff"
            mutated = flipped[:max(1, len(flipped) - 1)]
        else:
            mutated = bytes(mutate(entry.payload))
        corrupted = replace(entry, payload=mutated)
        self._ring[slot] = corrupted
        self._sizes[slot] = corrupted.size_bytes
        self.bytes_retained += corrupted.size_bytes - entry.size_bytes
        self.mutations += 1
        return corrupted

    def clear(self) -> None:
        """Drop every retained entry (pair deletion)."""
        self._ring.clear()
        self._sizes.clear()
        self._head = 0
        self.bytes_retained = 0

    def __repr__(self) -> str:
        return (f"<JournalVolume {self.name!r} "
                f"{len(self)}/{self.capacity_entries} "
                f"head={self.head_sequence}>")
