"""Asynchronous data copy: journal groups (the ADC of §III-A1).

A :class:`JournalGroup` is one shared journal pipeline between a main
array and a backup array:

* the **append** side runs inside the host-write path: after the local
  block write, the update is appended to the main journal volume and the
  write is acknowledged — the host never waits for the network;
* the **transfer** process wakes periodically (with jitter, so distinct
  groups drift apart exactly like independent links in a real system),
  ships a batch of entries over the inter-site link, and ingests them
  into the backup journal volume; with ``transfer_window > 1`` it
  *pipelines* — several batches ride the link concurrently (FIFO on the
  shared-bandwidth wire) while receive-side ingest stays strictly in
  sequence order, and ``adaptive_batch`` grows/shrinks the batch
  AIMD-style between configured bounds from the journal backlog and the
  observed drain rate;
* the **restore** process applies ingested entries to the secondary
  volumes *in sequence order*, pausing at entry boundaries whenever the
  restore gate is closed (snapshot-group quiesce).

A **consistency group** is nothing more than several pairs sharing one
journal group: one sequence counter ⇒ the backup cut is a prefix of the
main site's ack order across every member volume.  "ADC without a
consistency group" — the configuration the paper warns collapses backup
data — is modelled by giving each pair its own journal group, whose
transfer loops drift independently.

Failure handling mirrors a real array: journal overflow or a persistently
down link suspends the pairs (``PSUE``); writes then continue *without
protection* and are tracked as dirty blocks so a later ``resync`` can
re-establish the mirror.

**End-to-end integrity**: every journal entry carries a CRC32 computed at
append time, verified at *transfer-receive* (before ingest into the
backup journal) and again at *restore-apply* (before the media write).
A failed check quarantines the entry — the corrupted payload never
touches a secondary volume — marks its block dirty, suspends the pairs
(``PSUE``), and, when ``AdcConfig.auto_repair`` is on, drives an
automated **targeted resync** that re-journals only the affected dirty
ranges once the link is healthy.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import (TYPE_CHECKING, Callable, Deque, Dict, Generator, List,
                    Optional, Tuple)

from repro.errors import ReplicationError
from repro.simulation.network import LinkDownError, NetworkLink
from repro.simulation.resources import Gate
from zlib import crc32 as _crc32

from repro.storage.journal import (JournalEntry, JournalFullError,
                                   JournalVolume)
from repro.storage.lanes import lane_delay, lane_waits, partition_lanes
from repro.storage.reduction import (DISABLED_REDUCTION, EncodedPayload,
                                     ReductionConfig, WireReducer)
from repro.storage.replication import PairState, ReplicationPair
from repro.telemetry.spans import Span

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.kernel import Simulator
    from repro.storage.volume import Volume


@dataclass(frozen=True)
class AdcConfig:
    """Tuning knobs of the asynchronous copy pipeline.

    ``transfer_interval``/``restore_interval`` are the wake-up periods of
    the two background loops; ``interval_jitter`` desynchronises loops of
    different journal groups (the physical cause of backup-data collapse
    without a consistency group).  E7 sweeps ``transfer_interval``; E8
    sweeps the number of pairs per group.
    """

    transfer_interval: float = 0.005
    transfer_batch: int = 512
    #: transfer batches kept in flight concurrently.  1 is the classic
    #: stop-and-wait loop (ship a batch, wait out the full link RTT,
    #: sleep, repeat); >1 pipelines: while batch N propagates, batches
    #: N+1.. serialise behind it on the link's FIFO wire, hiding the
    #: propagation latency.  Receive-side ingest stays strictly
    #: in-order (shipments complete FIFO and are ingested head-first),
    #: so coalesce/quarantine/trim semantics are unchanged.
    transfer_window: int = 1
    #: AIMD batch sizing: grow the transfer batch additively while the
    #: journal backlog keeps batches full and the wire drains them
    #: under ``batch_target_time``; halve it when a shipment fails or
    #: the observed drain time blows past twice the target.  Off by
    #: default (fixed ``transfer_batch``).
    adaptive_batch: bool = False
    #: adaptive-batch bounds and additive-increase step
    transfer_batch_min: int = 64
    transfer_batch_max: int = 8192
    transfer_batch_step: int = 64
    #: desired simulated wire time per shipped batch (drives AIMD)
    batch_target_time: float = 0.01
    restore_interval: float = 0.002
    restore_batch: int = 512
    interval_jitter: float = 0.5
    #: journal appends land in array cache; far cheaper than media writes
    journal_append_latency: float = 0.00005
    #: in-flight restore applies per window.  1 = strictly serial (every
    #: instant is a prefix of the journal order); >1 overlaps media
    #: writes of *non-conflicting* blocks — the prefix property then
    #: holds at window boundaries, which is where quiesce/snapshot
    #: operations synchronise anyway.  Real arrays restore with internal
    #: parallelism like this; E8 sweeps the knob.
    restore_concurrency: int = 1
    #: dependency-aware apply lanes for the restore/resync paths.  1 =
    #: the classic applier: windows capped at ``restore_concurrency``
    #: distinct addresses, one aggregated media wait per window
    #: (byte-identical digests to before the knob existed).  >1 takes
    #: the full ``restore_batch`` as one window, partitions it into
    #: per-(volume, block)-conflict-free lanes (last-writer-wins per
    #: address, the property the coalesce machinery already proves),
    #: runs one aggregated media wait per lane as concurrent sim
    #: processes, and commits every surviving install through a
    #: consistency-cut barrier — snapshot groups, failover promote and
    #: invariant checks always observe a window-boundary cut.
    apply_lanes: int = 1
    #: verify entry CRC32s at transfer-receive and restore-apply.
    #: Disabling reproduces the silent-corruption baseline the chaos
    #: campaigns contrast against.
    verify_integrity: bool = True
    #: collapse same-(volume, block) superseded overwrites within one
    #: transfer batch: only the last writer of each address crosses the
    #: wire.  CG sequence semantics are preserved — the survivor is by
    #: construction the newest write of its address and the batch tail
    #: always survives, so the restored cut still advances to the
    #: window's high sequence.  Off by default (ship-everything is the
    #: paper's §III-A1 baseline); E7 quantifies the wire-byte saving.
    coalesce_overwrites: bool = False
    #: minimum spacing between lag-gauge samples while the transfer
    #: loop is idle (journal empty), so long idle soaks don't
    #: accumulate one redundant sample per wake-up.  0 samples on
    #: every idle wake-up.
    idle_lag_sample_interval: float = 0.05
    #: after an integrity quarantine, automatically resync the affected
    #: dirty ranges once the link is healthy (self-healing repair)
    auto_repair: bool = True
    #: wake-up period of the auto-repair loop
    repair_delay: float = 0.02
    #: auto-repair wake-ups before giving up (operator takes over);
    #: :meth:`JournalGroup.ensure_repair` re-arms the loop
    repair_max_attempts: int = 200
    #: wire data reduction (fingerprint dedup + inline compression) for
    #: the transfer path; off by default — the wire then carries every
    #: payload byte verbatim, exactly as before
    reduction: ReductionConfig = DISABLED_REDUCTION

    def __post_init__(self) -> None:
        if self.transfer_interval <= 0 or self.restore_interval <= 0:
            raise ValueError("intervals must be > 0")
        if self.transfer_batch < 1 or self.restore_batch < 1:
            raise ValueError("batch sizes must be >= 1")
        if self.transfer_window < 1:
            raise ValueError("transfer_window must be >= 1")
        if self.transfer_batch_min < 1:
            raise ValueError("transfer_batch_min must be >= 1")
        if self.transfer_batch_max < self.transfer_batch_min:
            raise ValueError(
                "transfer_batch_max must be >= transfer_batch_min")
        if self.transfer_batch_step < 1:
            raise ValueError("transfer_batch_step must be >= 1")
        if self.batch_target_time <= 0:
            raise ValueError("batch_target_time must be > 0")
        if self.restore_concurrency < 1:
            raise ValueError("restore_concurrency must be >= 1")
        if self.apply_lanes < 1:
            raise ValueError("apply_lanes must be >= 1")
        if not 0 <= self.interval_jitter < 1:
            raise ValueError("interval_jitter must be in [0, 1)")
        if self.journal_append_latency < 0:
            raise ValueError("journal_append_latency must be >= 0")
        if self.idle_lag_sample_interval < 0:
            raise ValueError("idle_lag_sample_interval must be >= 0")
        if self.repair_delay <= 0:
            raise ValueError("repair_delay must be > 0")
        if self.repair_max_attempts < 1:
            raise ValueError("repair_max_attempts must be >= 1")
        if not isinstance(self.reduction, ReductionConfig):
            raise ValueError("reduction must be a ReductionConfig")


@dataclass
class _Shipment:
    """One in-flight transfer batch of the pipelined loop.

    ``batch`` is the peeked journal window, ``ship`` the coalesced
    subset actually crossing the wire, ``survivor`` the coalesce map
    (None when coalescing is off).  The shipment's transfer runs in its
    own process (``proc``); a link failure mid-flight lands in
    ``error`` instead of propagating, so the loop can join shipments
    strictly head-first and keep the receive side in sequence order.
    """

    batch: List[JournalEntry]
    ship: List[JournalEntry]
    survivor: Optional[Dict[Tuple[int, int], int]]
    payload_bytes: int
    #: per-entry wire encodings when reduction is on (None = verbatim);
    #: nothing is cache-committed until the shipment is received, so a
    #: discarded shipment's encodings roll back for free
    encodings: Optional[List[EncodedPayload]] = None
    span: Optional[Span] = None
    proc: object = None
    error: Optional[BaseException] = field(default=None)
    #: launch instant and whether the batch filled the current batch
    #: size (AIMD growth requires full batches)
    shipped_at: float = 0.0
    full: bool = False


class JournalGroup:
    """One ADC pipeline: shared journal, transfer loop, restore loop."""

    def __init__(self, sim: "Simulator", group_id: str,
                 main_journal: JournalVolume,
                 backup_journal: JournalVolume,
                 link: NetworkLink,
                 config: Optional[AdcConfig] = None) -> None:
        self.sim = sim
        self.group_id = group_id
        self.main_journal = main_journal
        self.backup_journal = backup_journal
        self.link = link
        self.config = config or AdcConfig()
        self.pairs: Dict[str, ReplicationPair] = {}
        self._pairs_by_pvol: Dict[int, ReplicationPair] = {}
        self._svol_by_pvol: Dict[int, "Volume"] = {}
        #: highest sequence ingested into the backup journal
        self.transferred_sequence = -1
        #: highest sequence applied to secondary volumes
        self.restored_sequence = -1
        #: pauses the restore loop at entry boundaries (snapshot quiesce)
        self.restore_gate = Gate(sim, open_=True,
                                 name=f"jg-{group_id}.restore-gate")
        self.suspended = False
        self.suspend_reason = ""
        #: True while the restore loop is mid-apply (snapshot quiesce
        #: waits for this to clear after closing the gate)
        self.applying = False
        self._running = False
        self._transfer_enabled = True
        self._transfer_proc = None
        self._restore_proc = None
        self._repair_proc = None
        #: entries whose CRC32 failed; never applied, kept for forensics
        self.quarantine: List[JournalEntry] = []
        #: fault-injection hook: transforms each entry as it crosses the
        #: wire (chaos wire-corruption faults install one); None = clean
        self._wire_injector: Optional[
            Callable[[JournalEntry], JournalEntry]] = None
        #: simulated time of the last lag-gauge sample (bounds the idle
        #: sampling cadence of the transfer loop)
        self._lag_sampled_at = float("-inf")
        #: current transfer batch size; fixed at ``transfer_batch``, or
        #: AIMD-adjusted between the configured bounds when
        #: ``adaptive_batch`` is on
        adc = self.config
        if adc.adaptive_batch:
            self._batch_size = min(adc.transfer_batch_max,
                                   max(adc.transfer_batch_min,
                                       adc.transfer_batch))
        else:
            self._batch_size = adc.transfer_batch
        #: wire data-reduction engine (no-op object when disabled);
        #: shared by the transfer loop and the resync traffic riding it
        self.reducer = WireReducer(sim, adc.reduction, group=group_id)
        # -- observability ---------------------------------------------------
        # instruments live in the simulation's metrics registry, keyed
        # by group; the attributes below are the same objects the
        # registry renders, so legacy call sites keep working
        registry = sim.telemetry.registry
        self.tracer = sim.telemetry.tracer
        self.recorder = sim.telemetry.recorder
        self.lag_entries = registry.gauge(
            "repro_journal_lag_entries",
            help="Journal entry lag sampled by the transfer loop",
            unit="entries", group=group_id)
        self.lag_seconds = registry.gauge(
            "repro_journal_lag_seconds",
            help="Age of the oldest unshipped main-journal entry",
            unit="seconds", group=group_id)
        self.peak_entries_gauge = registry.gauge(
            "repro_journal_main_peak_entries",
            help="Peak occupancy of the main journal",
            unit="entries", group=group_id)
        self.transferred_count = registry.counter(
            "repro_journal_transferred_entries_total",
            help="Entries shipped main -> backup journal", group=group_id)
        self.restored_count = registry.counter(
            "repro_journal_restored_entries_total",
            help="Entries applied to secondary volumes", group=group_id)
        self.suspensions = registry.counter(
            "repro_journal_suspensions_total",
            help="Group suspensions (journal full, link down)",
            group=group_id)
        self.transfer_batches = registry.counter(
            "repro_journal_transfer_batches_total",
            help="Batches shipped over the inter-site link",
            group=group_id)
        self.transfer_bytes = registry.counter(
            "repro_journal_transfer_bytes_total",
            help="Logical (pre-reduction) bytes shipped over the "
                 "inter-site link", unit="bytes", group=group_id)
        self.coalesced_count = registry.counter(
            "repro_transfer_coalesced_total",
            help="Superseded overwrites collapsed before crossing the "
                 "wire (coalesce_overwrites)", group=group_id)
        self.corruptions_wire = registry.counter(
            "repro_integrity_corruptions_detected_total",
            help="Entry CRC32 failures caught before reaching the backup",
            where="wire", source=group_id)
        self.corruptions_journal = registry.counter(
            "repro_integrity_corruptions_detected_total",
            help="Entry CRC32 failures caught before reaching the backup",
            where="journal", source=group_id)
        self.repair_resyncs = registry.counter(
            "repro_repair_resyncs_total",
            help="Automated targeted resyncs driven by integrity repair",
            group=group_id)
        self.batch_size_gauge = registry.gauge(
            "repro_transfer_batch_size",
            help="Transfer batch size currently in use (AIMD-adaptive "
                 "between the configured bounds when adaptive_batch is "
                 "on)", unit="entries", group=group_id)
        self.copy_skipped = registry.counter(
            "repro_copy_skipped_blocks_total",
            help="Resync blocks whose (version, crc32) negotiation "
                 "proved the secondary current — they never crossed "
                 "the wire", group=group_id)
        # lane instruments exist only when the lane applier is on, so
        # default (apply_lanes=1) registries — and therefore chaos
        # digests — stay byte-identical to the pre-lane applier
        if adc.apply_lanes > 1:
            self.restore_lanes_gauge = registry.gauge(
                "repro_restore_lanes",
                help="Dependency-aware apply lanes of the restore path",
                unit="lanes", group=group_id)
            self.lane_conflicts = registry.counter(
                "repro_restore_lane_conflicts_total",
                help="Same-(volume, block) conflicts coalesced "
                     "last-writer-wins inside one restore window",
                group=group_id)
            self.restore_lanes_gauge.sample(sim.now, adc.apply_lanes)
        else:
            self.restore_lanes_gauge = None
            self.lane_conflicts = None
        if adc.adaptive_batch:
            self.batch_size_gauge.sample(sim.now, self._batch_size)

    # -- pair management ------------------------------------------------------

    def add_pair(self, pair: ReplicationPair) -> None:
        """Attach a pair and enqueue its initial copy through the journal.

        The initial copy is journaled like ordinary updates (sequence
        numbers assigned now), so concurrent host writes interleave
        correctly with it and the S-VOL converges in order.  The pair
        reports ``COPY`` until the restore pipeline passes the watermark.
        """
        if pair.pair_id in self.pairs:
            raise ReplicationError(
                f"group {self.group_id}: duplicate pair {pair.pair_id}")
        if pair.pvol.volume_id in self._pairs_by_pvol:
            raise ReplicationError(
                f"group {self.group_id}: volume {pair.pvol.volume_id} "
                "already paired")
        self.pairs[pair.pair_id] = pair
        self._pairs_by_pvol[pair.pvol.volume_id] = pair
        self._svol_by_pvol[pair.pvol.volume_id] = pair.svol
        pair.observer = self._observe_pair
        watermark = -1
        blocks = sorted(pair.pvol.block_map().items())
        # pre-existing blocks ride the journal under an initial-copy
        # span, so their restore applies have a causal parent too
        copy_span = None
        if blocks:
            copy_span = self.tracer.start(
                "initial-copy", group=self.group_id, pair=pair.pair_id,
                volume=pair.pvol.volume_id, blocks=len(blocks))
        for block, value in blocks:
            entry = self._append_entry(
                pair.pvol.volume_id, block, value.payload, value.version,
                trace_id=copy_span.trace_id if copy_span else None,
                span_id=copy_span.span_id if copy_span else None,
                checksum=value.checksum)
            if entry is not None:
                watermark = entry.sequence
        if copy_span is not None:
            self.tracer.finish(copy_span, watermark=watermark)
        pair.copy_watermark = watermark
        if watermark < 0:
            pair.initial_copy_done = True

    def remove_pair(self, pair_id: str) -> ReplicationPair:
        """Detach a pair (pair deletion); returns it."""
        pair = self.pairs.pop(pair_id, None)
        if pair is None:
            raise ReplicationError(
                f"group {self.group_id}: unknown pair {pair_id}")
        del self._pairs_by_pvol[pair.pvol.volume_id]
        del self._svol_by_pvol[pair.pvol.volume_id]
        return pair

    def pair_for_pvol(self, volume_id: int) -> Optional[ReplicationPair]:
        """The pair whose primary is ``volume_id``, if any."""
        return self._pairs_by_pvol.get(volume_id)

    @property
    def member_pvol_ids(self) -> List[int]:
        """Primary volume ids of all member pairs."""
        return sorted(self._pairs_by_pvol)

    # -- host-write side -------------------------------------------------------

    def journal_append(self, volume_id: int, block: int, payload: bytes,
                       version: int, span: Optional[Span] = None,
                       checksum: Optional[int] = None,
                       ) -> Generator[object, object, bool]:
        """Append one host write to the main journal (host-write path).

        Returns True when the write is protected (journaled), False when
        the group is suspended and the write was only marked dirty.  The
        small journal-append latency is the *entire* replication cost the
        host pays — this is the paper's "no system slowdown" mechanism.

        ``span`` is the originating host-write span; the entry carries
        its trace context to the backup site so the restore apply can
        close the causal chain.  ``checksum`` reuses the payload CRC32
        the host-write path already computed.
        """
        tracer = self.tracer
        append_span = None
        if tracer.enabled:
            append_span = tracer.start(
                "journal-append", parent=span, group=self.group_id,
                volume=volume_id, block=block)
        if self.config.journal_append_latency > 0:
            yield self.sim.timeout(self.config.journal_append_latency)
        if span is not None and span.trace_id is not None:
            trace_id, span_id = span.trace_id, span.span_id
        elif append_span is not None:
            trace_id, span_id = append_span.trace_id, append_span.span_id
        else:
            trace_id = span_id = None
        entry = self._append_entry(
            volume_id, block, payload, version,
            trace_id=trace_id, span_id=span_id, checksum=checksum)
        protected = entry is not None
        if append_span is not None:
            tracer.finish(
                append_span, status="ok" if protected else "unprotected",
                protected=protected,
                sequence=entry.sequence if entry else None)
        return protected

    def journal_append_many(
            self, writes: List[tuple], span: Optional[Span] = None,
            ) -> Generator[object, object, int]:
        """Append a batch of host writes under **one** journal-append
        latency and one span (the batched host-write path).

        ``writes`` is a sequence of ``(volume_id, block, payload,
        version, checksum)`` in ack order.  Entries are appended in
        input order with per-write suspension semantics identical to
        serial :meth:`journal_append` calls: a journal-full on write *k*
        suspends the group and writes *k*.. are only marked dirty.
        Returns the number of protected (journaled) writes.
        """
        tracer = self.tracer
        append_span = None
        if tracer.enabled:
            append_span = tracer.start(
                "journal-append", parent=span, group=self.group_id,
                writes=len(writes))
        if self.config.journal_append_latency > 0:
            yield self.sim.timeout(self.config.journal_append_latency)
        if span is not None and span.trace_id is not None:
            trace_id, span_id = span.trace_id, span.span_id
        elif append_span is not None:
            trace_id, span_id = append_span.trace_id, append_span.span_id
        else:
            trace_id = span_id = None
        protected = 0
        append_entry = self._append_entry
        for volume_id, block, payload, version, checksum in writes:
            entry = append_entry(volume_id, block, payload, version,
                                 trace_id=trace_id, span_id=span_id,
                                 checksum=checksum)
            if entry is not None:
                protected += 1
        if append_span is not None:
            tracer.finish(
                append_span,
                status="ok" if protected == len(writes) else "unprotected",
                protected=protected)
        return protected

    def _append_entry(self, volume_id: int, block: int, payload: bytes,
                      version: int, trace_id: Optional[str] = None,
                      span_id: Optional[str] = None,
                      checksum: Optional[int] = None,
                      ) -> Optional[JournalEntry]:
        pair = self._pairs_by_pvol.get(volume_id)
        if self.suspended:
            if pair is not None:
                pair.mark_dirty(volume_id, block)
            return None
        try:
            return self.main_journal.append(
                volume_id, block, payload, version, self.sim.now,
                trace_id=trace_id, span_id=span_id, checksum=checksum)
        except JournalFullError:
            self._suspend(PairState.PSUE, "main journal full")
            if pair is not None:
                pair.mark_dirty(volume_id, block)
            return None

    # -- suspension / resync -------------------------------------------------

    def _observe_pair(self, pair: ReplicationPair, event: str) -> None:
        """Pair lifecycle hook: feed transitions to the flight recorder."""
        self.recorder.record(
            "pair", pair.pair_id, group=self.group_id, event=event,
            state=pair.state.value, reason=pair.suspend_reason)

    def _suspend(self, state: PairState, reason: str) -> None:
        if self.suspended:
            return
        self.suspended = True
        self.suspend_reason = reason
        self.suspensions.increment()
        self.recorder.record("suspension", self.group_id,
                             state=state.value, reason=reason)
        for pair in self.pairs.values():
            pair.suspend(state, reason)

    def split(self) -> None:
        """Operator-initiated suspension (PSUS): stop propagating."""
        self._suspend(PairState.PSUS, "split by operator")

    # -- integrity quarantine / self-healing repair ---------------------------

    def install_wire_injector(self, injector: Optional[
            Callable[[JournalEntry], JournalEntry]]) -> None:
        """Install (or clear, with None) the wire fault-injection hook.

        The injector sees every entry between link transfer and backup
        ingest; chaos wire-corruption faults use it to flip payload bits
        without touching the checksum.
        """
        self._wire_injector = injector

    def _quarantine_entry(self, entry: JournalEntry, where: str) -> None:
        """Handle a CRC32 failure: quarantine, mark dirty, suspend, heal.

        The corrupted payload is never applied; the affected block is
        marked dirty on its pair so the repair resync re-journals *only
        the damaged range* from the primary's intact copy.
        """
        self.quarantine.append(entry)
        counter = self.corruptions_wire if where == "wire" \
            else self.corruptions_journal
        counter.increment()
        self.recorder.record(
            "quarantine", self.group_id, where=where,
            sequence=entry.sequence, volume=entry.volume_id,
            block=entry.block)
        pair = self._pairs_by_pvol.get(entry.volume_id)
        if pair is not None:
            pair.mark_dirty(entry.volume_id, entry.block)
        # a quarantine voids the reduction caches: in-flight encodings
        # behind this batch are discarded and the sender can no longer
        # assume the receiver's fingerprint state
        self.reducer.invalidate()
        self._suspend(
            PairState.PSUE,
            f"integrity: corrupt entry seq={entry.sequence} "
            f"vol={entry.volume_id} block={entry.block} ({where})")
        self.ensure_repair()

    def ensure_repair(self) -> None:
        """Arm the auto-repair loop if suspended and not already armed.

        Called automatically on quarantine; chaos/operator code calls it
        again after healing a long outage if the loop gave up.
        """
        if not self.config.auto_repair or not self.suspended:
            return
        if self._repair_proc is not None and self._repair_proc.alive:
            return
        self._repair_proc = self.sim.spawn(
            self._auto_repair(), name=f"jg-{self.group_id}.repair")

    def _auto_repair(self) -> Generator[object, object, None]:
        """Self-healing loop: resync the dirty delta once the link is up.

        Wakes every ``repair_delay`` until the resync sticks (the pairs
        leave PSUE) or ``repair_max_attempts`` wake-ups pass — a resync
        can be re-suspended by a refilled journal, so one attempt is not
        always enough.
        """
        attempts = 0
        while self.suspended and attempts < self.config.repair_max_attempts:
            attempts += 1
            yield self.sim.timeout(self.config.repair_delay)
            if not self.suspended:
                return
            if not self.link.is_up:
                continue  # wait out the partition, then repair
            self.repair_resyncs.increment()
            yield from self.resync()

    def resync(self) -> Generator[object, object, None]:
        """Re-establish the mirror after a suspension.

        Re-journals every dirty block's *current* content; once the
        backlog restores, the pairs return to PAIR.  Process generator —
        completes when the dirty delta has been journaled (not yet
        restored).
        """
        if not self.suspended:
            return
        if not self.link.is_up:
            raise ReplicationError(
                f"group {self.group_id}: cannot resync while link is down")
        self.suspended = False
        self.suspend_reason = ""
        resync_span = self.tracer.start("resync", group=self.group_id)
        self.recorder.record("resync", self.group_id, event="started")
        rejournaled = 0
        # with apply_lanes > 1 the targeted-repair re-journal batches
        # its append latency: `apply_lanes` appends ride one aggregated
        # wait (the journal is cache-backed; the appends overlap the
        # same way laned restore installs do).  lanes=1 pays one wait
        # per append, exactly as before.
        lanes = self.config.apply_lanes
        try:
            for pair in self.pairs.values():
                pending = sorted(pair.take_dirty())
                for index, (volume_id, block) in enumerate(pending):
                    value = pair.pvol.peek(block)
                    if value is None:
                        continue
                    if pair.secondary_current(block, value.version):
                        # delta negotiation: the secondary already
                        # holds this content at the same (or newer)
                        # version, so it never re-crosses the wire
                        self.copy_skipped.increment()
                        continue
                    if self.config.journal_append_latency > 0 \
                            and rejournaled % lanes == 0:
                        yield self.sim.timeout(
                            self.config.journal_append_latency)
                    entry = self._append_entry(
                        volume_id, block, value.payload, value.version,
                        trace_id=resync_span.trace_id,
                        span_id=resync_span.span_id,
                        checksum=value.checksum)
                    if entry is None:
                        # suspended again (journal refilled or a fresh
                        # quarantine): the current block was re-marked
                        # dirty by _append_entry, but the rest of the
                        # consumed set must survive for the next attempt
                        for remaining in pending[index + 1:]:
                            pair.mark_dirty(*remaining)
                        self.tracer.finish(resync_span, status="suspended",
                                           rejournaled=rejournaled)
                        self.recorder.record(
                            "resync", self.group_id, event="completed",
                            status="suspended", rejournaled=rejournaled)
                        return
                    rejournaled += 1
                pair.clear_suspension()
        except BaseException:
            self.tracer.finish(resync_span, status="error",
                               rejournaled=rejournaled)
            self.recorder.record("resync", self.group_id,
                                 event="completed", status="error",
                                 rejournaled=rejournaled)
            raise
        self.tracer.finish(resync_span, rejournaled=rejournaled)
        self.recorder.record("resync", self.group_id, event="completed",
                             status="ok", rejournaled=rejournaled)

    # -- background pipeline ------------------------------------------------

    def start(self) -> None:
        """Spawn the transfer and restore processes (idempotent)."""
        if self._running:
            return
        self._running = True
        if self._transfer_proc is None or not self._transfer_proc.alive:
            self._transfer_proc = self.sim.spawn(
                self._transfer_loop(), name=f"jg-{self.group_id}.transfer")
        if self._restore_proc is None or not self._restore_proc.alive:
            self._restore_proc = self.sim.spawn(
                self._restore_loop(), name=f"jg-{self.group_id}.restore")

    def stop(self) -> None:
        """Stop both loops at their next wake-up."""
        self._running = False

    def stop_transfer(self) -> None:
        """Stop only the transfer side (main-site disaster): the restore
        loop keeps draining what already reached the backup journal."""
        self._transfer_enabled = False

    def restart(self) -> None:
        """Restart dead pipelines after an array crash/repair.

        Re-enables the transfer side and re-spawns whichever background
        loops have exited; running loops are left alone.  Chaos
        array-crash faults use this to model crash *and restart*.
        """
        # fingerprint caches do not survive an array restart
        self.reducer.invalidate()
        self._transfer_enabled = True
        self._running = False
        self.start()

    def _jittered(self, base: float, stream: str) -> float:
        if self.config.interval_jitter == 0:
            return base
        return self.sim.rng.jitter(
            f"jg.{self.group_id}.{stream}", base, self.config.interval_jitter)

    def _transfer_loop(self) -> Generator[object, object, None]:
        if self.config.transfer_window > 1:
            yield from self._transfer_loop_windowed()
        else:
            yield from self._transfer_loop_serial()

    @staticmethod
    def _coalesce_batch(batch: List[JournalEntry],
                        ) -> Tuple[List[JournalEntry],
                                   Dict[Tuple[int, int], int]]:
        """Last-writer-wins within one batch: superseded same-address
        entries never cross the wire.

        Returns ``(ship, survivor)``: the entries to ship and a map of
        each ``(volume_id, block)`` address to the sequence of its
        newest entry in the batch.  The survivor is by construction the
        newest write of its address, so trimming a superseded entry is
        safe exactly when its survivor has been consumed; the batch
        tail always survives, so the restored cut still advances to
        the window's high sequence.
        """
        survivor: Dict[Tuple[int, int], int] = {}
        for entry in batch:
            survivor[(entry.volume_id, entry.block)] = entry.sequence
        ship = [entry for entry in batch
                if survivor[(entry.volume_id, entry.block)]
                == entry.sequence]
        return ship, survivor

    def _adapt_batch(self, ok: bool, full: bool, drain_time: float,
                     backlog: int) -> None:
        """AIMD transfer-batch sizing (no-op unless ``adaptive_batch``).

        Additive increase: while the journal backlog keeps batches full
        and the observed per-batch drain time stays under
        ``batch_target_time``, grow by ``transfer_batch_step`` up to
        ``transfer_batch_max``.  Multiplicative decrease: a failed
        shipment, or a drain time beyond twice the target (the link is
        slower than the batch assumes), halves the batch down to
        ``transfer_batch_min``.
        """
        config = self.config
        if not config.adaptive_batch:
            return
        size = self._batch_size
        if not ok or drain_time > 2 * config.batch_target_time:
            size = max(config.transfer_batch_min, size // 2)
        elif full and backlog > 0 and \
                drain_time < config.batch_target_time:
            size = min(config.transfer_batch_max,
                       size + config.transfer_batch_step)
        if size != self._batch_size:
            self._batch_size = size
            self.batch_size_gauge.sample(self.sim.now, size)

    def _encode_ship(self, ship: List[JournalEntry],
                     ) -> Tuple[Optional[List[EncodedPayload]], int]:
        """Encode one outgoing batch against the reduction caches.

        Returns ``(encodings, wire_bytes)`` — or ``(None, logical)``
        when reduction is off, leaving the verbatim wire path
        untouched.  Encoding commits nothing to the caches (commit
        happens at receive), so a shipment discarded in flight leaves
        no speculative state to roll back.
        """
        reducer = self.reducer
        if not reducer.enabled:
            # inlined entry.size_bytes: the property call per entry
            # shows up on the drain hot path
            return None, sum(len(entry.payload) + 64 for entry in ship)
        pending = reducer.begin_batch()
        encodings = [
            reducer.encode(entry.payload, pending,
                           overhead=entry.size_bytes - len(entry.payload))
            for entry in ship]
        return encodings, sum(e.wire_bytes for e in encodings)

    def _receive_batch(self, batch: List[JournalEntry],
                       ship: List[JournalEntry],
                       survivor: Optional[Dict[Tuple[int, int], int]],
                       batch_span: Optional[Span],
                       encodings: Optional[List[EncodedPayload]] = None,
                       payload_bytes: int = -1,
                       ) -> str:
        """Receive-side ingest of one transferred batch.

        Verifies each entry's CRC32 (quarantining on mismatch), ingests
        into the backup journal, trims the delivered prefix off the
        main journal, and bumps the transfer counters.  Runs entirely
        at one simulated instant (no yields), so the stop-and-wait and
        pipelined loops share it without perturbing event order.
        Returns the batch status: ``"ok"``, ``"integrity"`` or
        ``"backup-full"``.

        With ``encodings`` (reduction on) each entry is first
        reconstructed from its wire form — compressed payloads actually
        decompress, references actually resolve from the receiver cache
        — so a bad resolution or decode genuinely fails the CRC32 check
        and quarantines like any other wire corruption.
        """
        injector = self._wire_injector
        verify = self.config.verify_integrity
        if ship and survivor is None and encodings is None \
                and injector is None:
            # clean fast path: no coalescing, no reduction, no wire
            # fault hook.  Verify the whole batch up front and bulk-
            # ingest it in one call; a CRC mismatch or capacity
            # overflow falls through to the per-entry loop below,
            # whose prefix/quarantine semantics stay authoritative.
            clean = True
            if verify:
                for entry in ship:
                    checksum = entry.checksum
                    if checksum is not None and \
                            _crc32(entry.payload) & 0xFFFFFFFF != checksum:
                        clean = False
                        break
            if clean:
                try:
                    self.backup_journal.ingest_batch(ship)
                except JournalFullError:
                    pass
                else:
                    last = ship[-1].sequence
                    self.main_journal.pop_through(last)
                    self.transferred_sequence = max(
                        self.transferred_sequence, last)
                    self.transferred_count.increment(len(ship))
                    if payload_bytes < 0:
                        # the caller did not thread the encode-time sum
                        payload_bytes = sum(
                            len(entry.payload) + 64 for entry in ship)
                    self.transfer_bytes.increment(payload_bytes)
                    self.transfer_batches.increment()
                    if batch_span is not None:
                        self.tracer.finish(batch_span, status="ok")
                    return "ok"
        # the consumed set only matters for the coalesced trim walk;
        # without a survivor map (coalescing off) ``batch is ship`` and
        # the delivered prefix is just the last consumed sequence, so
        # the clean path skips the per-entry set entirely
        consumed = set() if survivor is not None else None
        last_ingested = -1
        quarantined_at = -1
        delivered_count = 0
        delivered_bytes = 0
        status = "ok"
        backup_ingest = self.backup_journal.ingest
        reducer = self.reducer
        for index, entry in enumerate(ship):
            if encodings is not None:
                received = reducer.receive(encodings[index], entry.payload,
                                           entry.checksum)
                if received is not entry.payload:
                    entry = replace(entry, payload=received)
            wired = injector(entry) if injector is not None else entry
            if verify and not wired.verify_checksum():
                # corruption picked up on the wire: quarantine the
                # entry at the receive side — it must never be
                # ingested — and suspend for a targeted repair
                if consumed is not None:
                    consumed.add(entry.sequence)
                quarantined_at = entry.sequence
                self._quarantine_entry(wired, where="wire")
                status = "integrity"
                break
            try:
                backup_ingest(wired)
            except JournalFullError:
                self._suspend(PairState.PSUE, "backup journal full")
                status = "backup-full"
                break
            if consumed is not None:
                consumed.add(entry.sequence)
            last_ingested = entry.sequence
            delivered_count += 1
            delivered_bytes += len(entry.payload) + 64
        if encodings is not None:
            # book the whole shipment's post-reduction wire bytes (the
            # full batch crossed the link even if ingest stopped early)
            # plus any reference-fallback retransmits receive() priced in
            reducer.account("transfer", encodings)
        # trim the longest batch prefix in which every entry was
        # consumed directly or superseded by a consumed survivor;
        # the rest stays journaled and re-ships after the
        # suspension heals
        if consumed is None:
            # batch is ship: the consumed prefix ends at the last
            # ingested entry — or at the quarantined one, which was
            # consumed too (it must never re-ship)
            delivered = max(last_ingested, quarantined_at)
        else:
            delivered = -1
            for entry in batch:
                if survivor[(entry.volume_id, entry.block)] not in consumed:
                    break
                delivered = entry.sequence
        if delivered >= 0:
            self.main_journal.pop_through(delivered)
        if delivered_count:
            self.transferred_sequence = max(self.transferred_sequence,
                                            last_ingested)
            self.transferred_count.increment(delivered_count)
            self.transfer_bytes.increment(delivered_bytes)
        if status == "ok":
            self.transfer_batches.increment()
        if batch_span is not None:
            self.tracer.finish(batch_span, status=status)
        return status

    def _transfer_loop_serial(self) -> Generator[object, object, None]:
        """Stop-and-wait wire path (``transfer_window=1``): ship one
        batch, wait out its full link delay, sleep, repeat."""
        config = self.config
        while self._running:
            yield self.sim.timeout(
                self._jittered(config.transfer_interval, "transfer"))
            if not self._running:
                return
            if not self._transfer_enabled:
                return
            if self.suspended or not self.link.is_up:
                if not self.link.is_up:
                    # even an idle link-down voids the caches: the
                    # sender cannot prove the receiver survived it
                    self.reducer.invalidate()
                continue
            batch = self.main_journal.peek_batch(self._batch_size) \
                if len(self.main_journal) else []
            if not batch:
                # idle: keep the lag gauges fresh, but at a bounded
                # cadence so long idle soaks don't accumulate one
                # redundant sample per wake-up
                if self.sim.now - self._lag_sampled_at \
                        >= config.idle_lag_sample_interval:
                    self._sample_lag()
                continue
            if config.coalesce_overwrites and len(batch) > 1:
                ship, survivor = self._coalesce_batch(batch)
                if len(ship) < len(batch):
                    self.coalesced_count.increment(len(batch) - len(ship))
            else:
                survivor = None
                ship = batch
            encodings, payload_bytes = self._encode_ship(ship)
            tracer = self.tracer
            batch_span = None
            if tracer.enabled:
                batch_span = tracer.start(
                    "transfer-batch", group=self.group_id,
                    entries=len(ship), bytes=payload_bytes,
                    coalesced=len(batch) - len(ship),
                    first_sequence=ship[0].sequence,
                    last_sequence=ship[-1].sequence)
            full = len(batch) >= self._batch_size
            shipped_at = self.sim.now
            try:
                yield from self.link.transfer(payload_bytes)
            except LinkDownError:
                if batch_span is not None:
                    tracer.finish(batch_span, status="link-down")
                # after a mid-flight link failure the sender can no
                # longer prove the receiver's cache state: re-warm
                self.reducer.discard()
                self.reducer.invalidate()
                self._adapt_batch(False, full, self.sim.now - shipped_at,
                                  len(self.main_journal))
                continue  # entries stay journaled; retried next wake-up
            status = self._receive_batch(batch, ship, survivor, batch_span,
                                         encodings, payload_bytes)
            self._adapt_batch(status == "ok", full,
                              self.sim.now - shipped_at,
                              len(self.main_journal))
            self._sample_lag()

    def _ship(self, shipment: _Shipment,
              ) -> Generator[object, object, None]:
        """One in-flight shipment's wire transfer (its own process).

        A link failure mid-flight is captured on the shipment instead
        of propagating, so the pipelined loop can join shipments
        head-first and decide what the failure voids.
        """
        try:
            yield from self.link.transfer(shipment.payload_bytes)
        except LinkDownError as exc:
            shipment.error = exc

    def _launch_shipment(self, batch: List[JournalEntry]) -> _Shipment:
        """Coalesce, trace and launch one batch onto the wire."""
        if self.config.coalesce_overwrites and len(batch) > 1:
            ship, survivor = self._coalesce_batch(batch)
            if len(ship) < len(batch):
                self.coalesced_count.increment(len(batch) - len(ship))
        else:
            ship, survivor = batch, None
        encodings, payload_bytes = self._encode_ship(ship)
        span = None
        tracer = self.tracer
        if tracer.enabled:
            span = tracer.start(
                "transfer-batch", group=self.group_id,
                entries=len(ship), bytes=payload_bytes,
                coalesced=len(batch) - len(ship),
                first_sequence=ship[0].sequence,
                last_sequence=ship[-1].sequence)
        shipment = _Shipment(
            batch=batch, ship=ship, survivor=survivor,
            payload_bytes=payload_bytes, encodings=encodings, span=span,
            shipped_at=self.sim.now,
            full=len(batch) >= self._batch_size)
        shipment.proc = self.sim.spawn(
            self._ship(shipment),
            name=f"jg-{self.group_id}.ship-{batch[0].sequence}")
        return shipment

    def _transfer_loop_windowed(self) -> Generator[object, object, None]:
        """Pipelined wire path: up to ``transfer_window`` batches in
        flight concurrently.

        Shipments serialise FIFO on the link's shared-bandwidth queue
        and are joined strictly head-first, so the receive side ingests
        in sequence order exactly like stop-and-wait — while batch N
        propagates, batches N+1.. are already serialising behind it,
        hiding the link latency.  Entries are only trimmed from the
        main journal when their shipment is received, so on any failure
        (link down under the head shipment, quarantine, backup-journal
        overflow) every later in-flight shipment is simply discarded:
        its entries are still journaled and re-ship once the pipeline
        is healthy.  Payload already on the wire when that happens is
        wasted bandwidth, exactly like a real retransmit.
        """
        config = self.config
        inflight: Deque[_Shipment] = deque()
        covered = 0  # journal entries held by in-flight shipments
        last_done: Optional[float] = None
        while self._running:
            if not self._transfer_enabled:
                return
            if not self.suspended and self.link.is_up:
                while len(inflight) < config.transfer_window and \
                        len(self.main_journal) > covered:
                    batch = self.main_journal.peek_batch(
                        self._batch_size, offset=covered)
                    if not batch:
                        break
                    inflight.append(self._launch_shipment(batch))
                    covered += len(batch)
            if not inflight:
                last_done = None
                yield self.sim.timeout(
                    self._jittered(config.transfer_interval, "transfer"))
                if not self._running or not self._transfer_enabled:
                    return
                if self.suspended or not self.link.is_up:
                    if not self.link.is_up:
                        # idle link-down voids the caches (see the
                        # serial loop)
                        self.reducer.invalidate()
                    continue
                if not len(self.main_journal) and \
                        self.sim.now - self._lag_sampled_at \
                        >= config.idle_lag_sample_interval:
                    self._sample_lag()
                continue
            head = inflight.popleft()
            yield head.proc  # join: fires when the batch lands
            covered -= len(head.batch)
            if head.error is not None:
                if head.span is not None:
                    self.tracer.finish(head.span, status="link-down")
                # the head died on the wire: its encodings (and those
                # of everything queued behind it) were never committed
                self.reducer.discard()
                self.reducer.invalidate()
                status = "link-down"
            else:
                status = self._receive_batch(
                    head.batch, head.ship, head.survivor, head.span,
                    head.encodings, head.payload_bytes)
            # AIMD feeds on the gap between head completions: in a
            # full pipeline that gap is the batch's serialisation
            # time, the actual per-batch drain rate of the wire
            since = last_done if last_done is not None \
                else head.shipped_at
            last_done = self.sim.now
            self._adapt_batch(status == "ok", head.full,
                              self.sim.now - since,
                              len(self.main_journal) - covered)
            if status != "ok":
                # the pipeline behind a failed head is void: nothing
                # was trimmed, so those entries re-ship in order — and
                # nothing was cache-committed (commit happens at
                # receive), so discarding the encodings is the whole
                # rollback
                self.reducer.discard(len(inflight))
                for shipment in inflight:
                    if shipment.span is not None:
                        self.tracer.finish(shipment.span,
                                           status="discarded")
                inflight.clear()
                covered = 0
                last_done = None
            self._sample_lag()

    def _restore_loop(self) -> Generator[object, object, None]:
        config = self.config
        gate = self.restore_gate
        laned = config.apply_lanes > 1
        while self._running:
            yield self.sim.timeout(
                self._jittered(config.restore_interval, "restore"))
            if not self._running:
                return
            applied = 0
            while applied < config.restore_batch:
                if not self._running:
                    return
                if not gate.is_open:
                    yield gate.wait()
                if laned:
                    # the lane applier needs no distinct-address cap:
                    # conflicts coalesce last-writer-wins per address
                    window = self.backup_journal.peek_batch(
                        config.restore_batch - applied)
                else:
                    window = self._pick_restore_window(
                        config.restore_batch - applied)
                if not window:
                    break
                self.applying = True
                try:
                    if laned:
                        yield from self._apply_window_laned(window)
                    else:
                        yield from self._apply_window(window)
                    self.backup_journal.pop_through(window[-1].sequence)
                    self.restored_sequence = window[-1].sequence
                finally:
                    self.applying = False
                self.restored_count.increment(len(window))
                self._update_copy_states()
                applied += len(window)

    def _pick_restore_window(self, limit: int) -> List[JournalEntry]:
        """Contiguous journal entries safe to apply concurrently.

        The window extends while entries touch distinct (volume, block)
        addresses, so per-block ordering is preserved even though the
        media writes overlap.  Window size is additionally capped by
        ``restore_concurrency`` and the remaining batch budget.
        """
        if not len(self.backup_journal):
            return []
        cap = min(self.config.restore_concurrency, max(limit, 1))
        candidates = self.backup_journal.peek_batch(cap)
        window: List[JournalEntry] = []
        touched = set()
        for entry in candidates:
            address = (entry.volume_id, entry.block)
            if address in touched:
                break
            touched.add(address)
            window.append(entry)
        return window

    def _verify_at_apply(self) -> bool:
        """Whether restore-apply must re-verify entry checksums.

        Integrity is normally checked **once at receive** (before ingest
        into the backup journal); re-hashing every payload at apply time
        would double the CRC cost of the whole pipeline for nothing.
        The receive-side check stops covering an entry only when some
        fault path can mutate it *after* ingest — a wire injector is
        installed, or a journal-corruption fault has fired on either
        journal volume — and only then does the apply side verify again,
        preserving the zero-silent-corruption invariant.
        """
        return self.config.verify_integrity and (
            self._wire_injector is not None
            or self.main_journal.mutations > 0
            or self.backup_journal.mutations > 0)

    def _apply_window(self, window: List[JournalEntry],
                      ) -> Generator[object, object, None]:
        """Apply a non-conflicting window with one aggregated media wait.

        Semantically equivalent to overlapping one apply process per
        entry: the media writes proceed in parallel on distinct blocks,
        so the window's simulated elapsed time is the *max* of the
        per-entry apply costs (copy-on-write preservation plus the
        write), after which every surviving payload installs.  Unlike
        the per-entry fan-out this allocates no processes, no join
        events and — when tracing is off — no spans.
        """
        tracer = self.tracer
        tracing = tracer.enabled
        verify = self._verify_at_apply()
        svols = self._svol_by_pvol
        delay = 0.0
        installs = []
        for entry in window:
            # the restore-apply span parents to the *originating* span
            # that journaled the entry (host-write / initial-copy /
            # resync) — the context travelled inside the entry across
            # the site hop
            span = None
            if tracing:
                span = tracer.start(
                    "restore-apply", trace_id=entry.trace_id,
                    parent_id=entry.span_id, group=self.group_id,
                    volume=entry.volume_id, block=entry.block,
                    sequence=entry.sequence, version=entry.version)
            if verify and not entry.verify_checksum():
                # corruption inside the journal volume (torn/bit-rotted
                # write): quarantine before the media write — the
                # payload never reaches the secondary volume
                self._quarantine_entry(entry, where="journal")
                if span is not None:
                    tracer.finish(span, status="integrity", applied=False,
                                  reason="checksum mismatch")
                continue
            svol = svols.get(entry.volume_id)
            if svol is None:
                # pair deleted while entries were in flight
                if span is not None:
                    tracer.finish(span, status="skipped", applied=False,
                                  reason="pair deleted")
                continue
            current = svol.peek(entry.block)
            if current is not None and current.version >= entry.version:
                # already applied (resync overlap)
                if span is not None:
                    tracer.finish(span, status="skipped", applied=False,
                                  reason="stale version")
                continue
            cost = svol.apply_delay(entry.block)
            if cost > delay:
                delay = cost
            installs.append((svol, entry, span))
        if delay > 0:
            yield self.sim.timeout(delay)
        for svol, entry, span in installs:
            svol.install_block(entry.block, entry.payload, entry.version,
                               checksum=entry.checksum)
            if span is not None:
                tracer.finish(span, applied=True)

    def _apply_window_laned(self, window: List[JournalEntry],
                            ) -> Generator[object, object, None]:
        """Dependency-aware lane apply with a consistency-cut barrier.

        One pass in sequence order runs exactly the serial applier's
        per-entry decisions — integrity quarantine, pair-deleted skip,
        stale-version skip — then coalesces same-(volume, block)
        conflicts last-writer-wins (safe for the same reason wire
        coalescing is: the survivor is by construction the newest write
        of its address, and versions per address are monotone in
        sequence order).  The surviving installs partition round-robin
        into conflict-free lanes; each lane's media waits aggregate
        into one concurrent wait, and the join of all lanes is the
        consistency-cut barrier — nothing installs until every lane's
        media time has elapsed, so the commit lands at one simulated
        instant and every externally observable image (snapshot-group
        creation, failover promote, invariant checks, restore-point
        queries) is a window-boundary cut, exactly as with the serial
        applier.
        """
        tracer = self.tracer
        tracing = tracer.enabled
        verify = self._verify_at_apply()
        svols = self._svol_by_pvol
        conflicts = 0
        surviving: Dict[Tuple[int, int], tuple] = {}
        if not tracing and not verify:
            # span-free, verify-free variant of the loop below: the
            # clean drain's hot path, with no per-entry span objects,
            # no superseded-span bookkeeping (a plain dict overwrite
            # coalesces) and the conflict count derived at the end
            svols_get = svols.get
            accepted = 0
            for entry in window:
                svol = svols_get(entry.volume_id)
                if svol is None:
                    continue
                current = svol.peek(entry.block)
                if current is not None and \
                        current.version >= entry.version:
                    continue
                accepted += 1
                surviving[(entry.volume_id, entry.block)] = \
                    (svol, entry, None)
            conflicts = accepted - len(surviving)
        else:
            for entry in window:
                span = None
                if tracing:
                    span = tracer.start(
                        "restore-apply", trace_id=entry.trace_id,
                        parent_id=entry.span_id, group=self.group_id,
                        volume=entry.volume_id, block=entry.block,
                        sequence=entry.sequence, version=entry.version)
                if verify and not entry.verify_checksum():
                    self._quarantine_entry(entry, where="journal")
                    if span is not None:
                        tracer.finish(span, status="integrity",
                                      applied=False,
                                      reason="checksum mismatch")
                    continue
                svol = svols.get(entry.volume_id)
                if svol is None:
                    if span is not None:
                        tracer.finish(span, status="skipped",
                                      applied=False,
                                      reason="pair deleted")
                    continue
                current = svol.peek(entry.block)
                if current is not None and \
                        current.version >= entry.version:
                    if span is not None:
                        tracer.finish(span, status="skipped",
                                      applied=False,
                                      reason="stale version")
                    continue
                address = (entry.volume_id, entry.block)
                superseded = surviving.pop(address, None)
                if superseded is not None:
                    conflicts += 1
                    if superseded[2] is not None:
                        tracer.finish(superseded[2], status="coalesced",
                                      applied=False,
                                      reason="superseded in window")
                surviving[address] = (svol, entry, span)
        if conflicts and self.lane_conflicts is not None:
            self.lane_conflicts.increment(conflicts)
        installs = list(surviving.values())
        if installs:
            lanes = partition_lanes(installs, self.config.apply_lanes)
            delays = [lane_delay(svol.apply_delay(entry.block)
                                 for svol, entry, _span in lane)
                      for lane in lanes]
            yield from lane_waits(self.sim, delays,
                                  name=f"jg-{self.group_id}.restore")
        # the barrier has closed: commit every lane's surviving install
        # at this one instant
        for svol, entry, span in installs:
            svol.install_block(entry.block, entry.payload, entry.version,
                               checksum=entry.checksum)
            if span is not None:
                tracer.finish(span, applied=True)

    def _apply_entry(self, entry: JournalEntry,
                     ) -> Generator[object, object, None]:
        """Single-entry apply (failover drain path); same semantics as a
        size-1 :meth:`_apply_window` but pays the media wait inline."""
        yield from self._apply_window([entry])

    def _update_copy_states(self) -> None:
        for pair in self.pairs.values():
            if not pair.initial_copy_done and \
                    self.restored_sequence >= pair.copy_watermark:
                pair.initial_copy_done = True

    def _sample_lag(self) -> None:
        now = self.sim.now
        self._lag_sampled_at = now
        self.lag_entries.sample(now, self.entry_lag)
        oldest = self.main_journal.oldest_entry()
        self.lag_seconds.sample(
            now, now - oldest.created_at if oldest is not None else 0.0)
        self.peak_entries_gauge.sample(
            now, self.main_journal.peak_entries)

    # -- failover support ----------------------------------------------------

    @property
    def entry_lag(self) -> int:
        """Journaled-but-not-restored entries (main + backup journals)."""
        return len(self.main_journal) + len(self.backup_journal)

    def drain(self) -> Generator[object, object, int]:
        """Failover drain: apply everything already at the backup site.

        Entries still in the *main* journal are lost with the main site;
        entries in the backup journal are applied in order.  Returns the
        number of entries applied.  The restore loop must be stopped (or
        the group suspended) before draining; an in-flight apply is
        waited out so the drain never races it.
        """
        while self.applying:
            yield self.sim.timeout(0.0001)
        drain_span = self.tracer.start("journal-drain", group=self.group_id)
        applied = 0
        for entry in self.backup_journal.snapshot_entries():
            yield from self._apply_entry(entry)
            self.backup_journal.pop_through(entry.sequence)
            self.restored_sequence = entry.sequence
            self.restored_count.increment()
            applied += 1
        self._update_copy_states()
        self.tracer.finish(drain_span, applied=applied)
        return applied

    def quiesce_restore(self) -> None:
        """Close the restore gate (snapshot-group preparation)."""
        self.restore_gate.close()

    def resume_restore(self) -> None:
        """Reopen the restore gate."""
        self.restore_gate.open()

    def __repr__(self) -> str:
        return (f"<JournalGroup {self.group_id!r} pairs={len(self.pairs)} "
                f"restored={self.restored_sequence} lag={self.entry_lag} "
                f"{'SUSPENDED ' + self.suspend_reason if self.suspended else 'ok'}>")
