"""The global write history: ground truth for consistency checking.

The paper's recovery argument (§I) rests on one property of enterprise
storage: *the order of acknowledgements defines the order of data
updates*, and a backup is usable iff it corresponds to a prefix of that
order.  :class:`WriteHistory` records every **acknowledged** host write on
an array, in ack order, with a monotone sequence number.

The consistency checker (``repro.recovery.checker``) later compares a
backup image against this history: the image is *consistent* iff the set
of writes it contains is downward-closed under the history order
(restricted to the volume group under test).  This module only records;
it never influences the data path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass(slots=True)
class WriteRecord:
    """One acknowledged host write.

    ``version`` is the per-volume monotone version the write installed in
    ``block`` — the pair (volume_id, version) uniquely identifies a write,
    which is how backup block maps are matched back to history records.

    Not frozen: the frozen-dataclass ``__init__`` pays one
    ``object.__setattr__`` per field and the history append sits on the
    host-write ack path.  Records are immutable by convention — the
    history never hands out anything it would re-read.
    """

    seq: int
    time: float
    volume_id: int
    block: int
    version: int
    tag: Optional[str] = None

    def __str__(self) -> str:
        label = f" tag={self.tag}" if self.tag else ""
        return (f"#{self.seq} t={self.time:.6f} vol={self.volume_id} "
                f"block={self.block} v{self.version}{label}")


class WriteHistory:
    """Append-only ack-ordered log of host writes on one array."""

    def __init__(self) -> None:
        self._records: List[WriteRecord] = []
        self._by_volume: Dict[int, List[WriteRecord]] = {}
        # (volume_id, version) -> record, for backup image matching
        self._by_version: Dict[Tuple[int, int], WriteRecord] = {}
        # cached immutable view handed out by :attr:`records`;
        # invalidated on append so repeated probe/checker reads are O(1)
        self._view: Optional[Tuple[WriteRecord, ...]] = None
        #: times the view tuple was (re)built — regression-test hook
        #: proving repeated reads between appends do not copy the log
        self.view_builds = 0

    def append(self, time: float, volume_id: int, block: int, version: int,
               tag: Optional[str] = None) -> WriteRecord:
        """Record an acked write; returns the record with its ack seq."""
        records = self._records
        record = WriteRecord(len(records), time, volume_id, block, version,
                             tag)
        records.append(record)
        per_volume = self._by_volume.get(volume_id)
        if per_volume is None:
            per_volume = self._by_volume[volume_id] = []
        per_volume.append(record)
        self._by_version[(volume_id, version)] = record
        self._view = None
        return record

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> Tuple[WriteRecord, ...]:
        """Immutable snapshot of the full history (cached between
        appends, so probe loops and the consistency checker never pay a
        per-read copy of the whole log)."""
        view = self._view
        if view is None:
            view = self._view = tuple(self._records)
            self.view_builds += 1
        return view

    def for_volume(self, volume_id: int) -> List[WriteRecord]:
        """History restricted to one volume (ack order preserved)."""
        return list(self._by_volume.get(volume_id, []))

    def restricted(self, volume_ids: Iterable[int]) -> List[WriteRecord]:
        """History restricted to a volume group (ack order preserved)."""
        wanted = set(volume_ids)
        return [r for r in self._records if r.volume_id in wanted]

    def lookup(self, volume_id: int, version: int) -> Optional[WriteRecord]:
        """The record that installed ``version`` on ``volume_id``, if acked."""
        return self._by_version.get((volume_id, version))

    def last_seq(self) -> int:
        """Sequence of the newest record; -1 when empty."""
        return len(self._records) - 1
