"""The global write history: ground truth for consistency checking.

The paper's recovery argument (§I) rests on one property of enterprise
storage: *the order of acknowledgements defines the order of data
updates*, and a backup is usable iff it corresponds to a prefix of that
order.  :class:`WriteHistory` records every **acknowledged** host write on
an array, in ack order, with a monotone sequence number.

The consistency checker (``repro.recovery.checker``) later compares a
backup image against this history: the image is *consistent* iff the set
of writes it contains is downward-closed under the history order
(restricted to the volume group under test).  This module only records;
it never influences the data path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class WriteRecord:
    """One acknowledged host write.

    ``version`` is the per-volume monotone version the write installed in
    ``block`` — the pair (volume_id, version) uniquely identifies a write,
    which is how backup block maps are matched back to history records.
    """

    seq: int
    time: float
    volume_id: int
    block: int
    version: int
    tag: Optional[str] = None

    def __str__(self) -> str:
        label = f" tag={self.tag}" if self.tag else ""
        return (f"#{self.seq} t={self.time:.6f} vol={self.volume_id} "
                f"block={self.block} v{self.version}{label}")


class WriteHistory:
    """Append-only ack-ordered log of host writes on one array."""

    def __init__(self) -> None:
        self._records: List[WriteRecord] = []
        self._by_volume: Dict[int, List[WriteRecord]] = {}
        # (volume_id, version) -> record, for backup image matching
        self._by_version: Dict[Tuple[int, int], WriteRecord] = {}

    def append(self, time: float, volume_id: int, block: int, version: int,
               tag: Optional[str] = None) -> WriteRecord:
        """Record an acked write; returns the record with its ack seq."""
        record = WriteRecord(
            seq=len(self._records), time=time, volume_id=volume_id,
            block=block, version=version, tag=tag)
        self._records.append(record)
        self._by_volume.setdefault(volume_id, []).append(record)
        self._by_version[(volume_id, version)] = record
        return record

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> Tuple[WriteRecord, ...]:
        """Immutable snapshot of the full history."""
        return tuple(self._records)

    def for_volume(self, volume_id: int) -> List[WriteRecord]:
        """History restricted to one volume (ack order preserved)."""
        return list(self._by_volume.get(volume_id, []))

    def restricted(self, volume_ids: Iterable[int]) -> List[WriteRecord]:
        """History restricted to a volume group (ack order preserved)."""
        wanted = set(volume_ids)
        return [r for r in self._records if r.volume_id in wanted]

    def lookup(self, volume_id: int, version: int) -> Optional[WriteRecord]:
        """The record that installed ``version`` on ``volume_id``, if acked."""
        return self._by_version.get((volume_id, version))

    def last_seq(self) -> int:
        """Sequence of the newest record; -1 when empty."""
        return len(self._records) - 1
