"""Replication pairs and their lifecycle states.

Terminology follows the paper's storage system (Hitachi-style):

* **P-VOL / S-VOL** — primary (main-site) and secondary (backup-site)
  volume of a pair.
* **Pair states** — ``SMPL`` (unpaired), ``COPY`` (initial copy in
  progress), ``PAIR`` (steady-state mirroring), ``PSUS`` (intentionally
  split), ``PSUE`` (suspended by error, e.g. journal full or link down
  too long), ``SSWS`` (secondary promoted after failover).

A pair belongs to exactly one replication engine: a
:class:`~repro.storage.adc.JournalGroup` for asynchronous copy or a
:class:`~repro.storage.sdc.SyncMirror` for synchronous copy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Set, Tuple

from repro.errors import ReplicationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.volume import Volume


class PairState(enum.Enum):
    """Lifecycle state of a replication pair."""

    SMPL = "SMPL"
    COPY = "COPY"
    PAIR = "PAIR"
    PSUS = "PSUS"
    PSUE = "PSUE"
    SSWS = "SSWS"

    @property
    def protects_data(self) -> bool:
        """True while new writes are being propagated to the backup."""
        return self in (PairState.COPY, PairState.PAIR)


class CopyMode(enum.Enum):
    """Replication technology of a pair."""

    ASYNCHRONOUS = "asynchronous"
    SYNCHRONOUS = "synchronous"


@dataclass
class ReplicationPair:
    """One P-VOL/S-VOL mirror relationship.

    The ``state`` of an asynchronous pair is partly derived: while its
    journal group is healthy, a pair reports ``COPY`` until the restore
    pipeline has applied its initial-copy watermark and ``PAIR``
    afterwards.  Suspensions are recorded on the pair itself.
    """

    pair_id: str
    mode: CopyMode
    pvol: "Volume"
    svol: "Volume"
    created_at: float
    #: journal sequence that completes the initial copy (async pairs)
    copy_watermark: int = -1
    #: set when the pair is split or errors out
    suspended_state: Optional[PairState] = None
    suspend_reason: str = ""
    #: blocks written while unprotected, for resynchronisation
    dirty_blocks: Set[Tuple[int, int]] = field(default_factory=set)
    #: set after failover promotion
    promoted: bool = False
    #: set by the engine as restore progresses (async pairs)
    initial_copy_done: bool = False
    #: lifecycle hook ``(pair, event)`` called on suspend / resume /
    #: promote; the owning engine installs one to feed the flight
    #: recorder (pairs themselves have no telemetry access)
    observer: Optional[Callable[["ReplicationPair", str], None]] = \
        field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.pvol.volume_id == self.svol.volume_id and \
                self.pvol is self.svol:
            raise ReplicationError(
                f"pair {self.pair_id}: P-VOL and S-VOL must differ")
        if self.pvol.capacity_blocks != self.svol.capacity_blocks:
            raise ReplicationError(
                f"pair {self.pair_id}: capacity mismatch "
                f"({self.pvol.capacity_blocks} vs "
                f"{self.svol.capacity_blocks} blocks)")

    @property
    def state(self) -> PairState:
        """Current pair state (derived, see class docstring)."""
        if self.promoted:
            return PairState.SSWS
        if self.suspended_state is not None:
            return self.suspended_state
        if not self.initial_copy_done:
            return PairState.COPY
        return PairState.PAIR

    def suspend(self, state: PairState, reason: str) -> None:
        """Move the pair to PSUS/PSUE."""
        if state not in (PairState.PSUS, PairState.PSUE):
            raise ReplicationError(
                f"suspend target must be PSUS or PSUE, got {state}")
        self.suspended_state = state
        self.suspend_reason = reason
        self._notify("suspend")

    def clear_suspension(self) -> None:
        """Return to COPY/PAIR after a successful resync."""
        self.suspended_state = None
        self.suspend_reason = ""
        self._notify("resume")

    def mark_dirty(self, volume_id: int, block: int) -> None:
        """Remember an unprotected write for later resynchronisation."""
        self.dirty_blocks.add((volume_id, block))

    def take_dirty(self) -> Set[Tuple[int, int]]:
        """Consume the dirty-block set (start of a resync)."""
        dirty, self.dirty_blocks = self.dirty_blocks, set()
        return dirty

    def secondary_current(self, block: int, version: int) -> bool:
        """True when the S-VOL already holds ``block`` at ``version`` or
        newer.

        The delta-negotiation step of bulk copy/resync: the per-block
        ``(version, crc32)`` metadata carried by every
        :class:`~repro.storage.volume.BlockValue` is compared *before*
        any payload is shipped, so an up-to-date secondary block never
        crosses the wire.
        """
        current = self.svol.peek(block)
        return current is not None and current.version >= version

    def promote(self) -> None:
        """Failover: make the S-VOL writable (SSWS)."""
        self.promoted = True
        self._notify("promote")

    def _notify(self, event: str) -> None:
        if self.observer is not None:
            self.observer(self, event)

    def __repr__(self) -> str:
        return (f"<ReplicationPair {self.pair_id!r} {self.mode.value} "
                f"{self.state.value} pvol={self.pvol.volume_id} "
                f"svol={self.svol.volume_id}>")
