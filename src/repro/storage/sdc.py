"""Synchronous data copy: the baseline the paper's §V compares against.

A :class:`SyncMirror` propagates each host write to the secondary volume
*before* the acknowledgement: the host pays the full inter-site round
trip on every write.  This gives zero data loss (every acked write exists
at the backup) at the price of the "system slowdown" the paper's ADC is
designed to remove — experiment E1 measures exactly that trade-off.

Writes of one mirror are FIFO-ordered over the link, so a multi-pair
synchronous configuration is automatically order-preserving (the ack is
the apply); no consistency-group machinery is needed, matching how real
synchronous replication behaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Generator, List, Optional

from repro.errors import ReplicationError
from repro.simulation.network import LinkDownError, NetworkLink
from repro.simulation.resources import Lock
from repro.storage.lanes import lane_delay, lane_waits
from repro.storage.reduction import (DISABLED_REDUCTION, ReductionConfig,
                                     WireReducer)
from repro.storage.replication import PairState, ReplicationPair
from repro.telemetry.spans import Span

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.kernel import Simulator


@dataclass(frozen=True)
class SdcConfig:
    """Tuning knobs of the synchronous mirror.

    ``fence_level`` follows array convention: ``"never"`` keeps accepting
    (unprotected, dirty-tracked) host writes when the link fails, which
    is what production systems choose to avoid a replication outage
    becoming a business outage.
    """

    block_size_bytes: int = 4096
    fence_level: str = "never"
    #: blocks per bulk-copy chunk: initial copy and resync negotiate
    #: and ship this many blocks per link round trip instead of paying
    #: one propagation delay per block
    copy_batch_blocks: int = 32
    #: wire bytes of the per-block ``(version, crc32)`` negotiation
    #: metadata — the lightweight-metadata exchange that lets
    #: up-to-date secondary blocks skip the payload transfer entirely
    negotiate_metadata_bytes: int = 16
    #: wire data reduction (fingerprint dedup + inline compression) for
    #: the bulk copy / resync payload transfers; off by default — the
    #: wire then carries every stale block verbatim, exactly as before
    reduction: ReductionConfig = DISABLED_REDUCTION
    #: dependency-aware apply lanes for the bulk-copy install phase
    #: (same scheduler as the ADC restore applier).  1 = one media
    #: wait per chunk, exactly as before; >1 stages up to this many
    #: chunks and overlaps their media installs as concurrent lanes
    #: committed through one consistency-cut barrier.
    apply_lanes: int = 1

    def __post_init__(self) -> None:
        if self.block_size_bytes < 1:
            raise ValueError("block_size_bytes must be >= 1")
        if self.apply_lanes < 1:
            raise ValueError("apply_lanes must be >= 1")
        if self.fence_level not in ("never", "data"):
            raise ValueError(
                f"fence_level must be 'never' or 'data': {self.fence_level}")
        if self.copy_batch_blocks < 1:
            raise ValueError("copy_batch_blocks must be >= 1")
        if self.negotiate_metadata_bytes < 1:
            raise ValueError("negotiate_metadata_bytes must be >= 1")
        if not isinstance(self.reduction, ReductionConfig):
            raise ValueError("reduction must be a ReductionConfig")


class SyncMirror:
    """A set of synchronously mirrored pairs sharing one link."""

    def __init__(self, sim: "Simulator", mirror_id: str, link: NetworkLink,
                 config: Optional[SdcConfig] = None) -> None:
        self.sim = sim
        self.mirror_id = mirror_id
        self.link = link
        self.config = config or SdcConfig()
        self.pairs: Dict[str, ReplicationPair] = {}
        self._pairs_by_pvol: Dict[int, ReplicationPair] = {}
        # One in-flight remote write at a time per pair keeps the apply
        # order at the secondary equal to the ack order at the primary.
        self._pair_locks: Dict[str, Lock] = {}
        registry = sim.telemetry.registry
        self.tracer = sim.telemetry.tracer
        self.recorder = sim.telemetry.recorder
        #: wire data-reduction engine for the bulk copy / resync
        #: payload transfers (no-op object when disabled)
        self.reducer = WireReducer(sim, self.config.reduction,
                                   mirror=mirror_id)
        self.replicated_writes = registry.counter(
            "repro_sdc_replicated_writes_total",
            help="Writes propagated synchronously before the ack",
            mirror=mirror_id)
        self.suspensions = registry.counter(
            "repro_sdc_suspensions_total",
            help="Pair suspensions caused by link failures",
            mirror=mirror_id)
        self.copy_skipped = registry.counter(
            "repro_copy_skipped_blocks_total",
            help="Bulk-copy blocks whose (version, crc32) negotiation "
                 "proved the secondary current — they never crossed "
                 "the wire", mirror=mirror_id)

    # -- pair management ------------------------------------------------------

    def add_pair(self, pair: ReplicationPair) -> None:
        """Attach a pair. Initial copy runs via :meth:`initial_copy`."""
        if pair.pair_id in self.pairs:
            raise ReplicationError(
                f"mirror {self.mirror_id}: duplicate pair {pair.pair_id}")
        if pair.pvol.volume_id in self._pairs_by_pvol:
            raise ReplicationError(
                f"mirror {self.mirror_id}: volume {pair.pvol.volume_id} "
                "already paired")
        self.pairs[pair.pair_id] = pair
        self._pairs_by_pvol[pair.pvol.volume_id] = pair
        pair.observer = self._observe_pair
        self._pair_locks[pair.pair_id] = Lock(
            self.sim, name=f"sdc-{pair.pair_id}")

    def _observe_pair(self, pair: ReplicationPair, event: str) -> None:
        """Pair lifecycle hook: feed transitions to the flight recorder."""
        self.recorder.record(
            "pair", pair.pair_id, mirror=self.mirror_id, event=event,
            state=pair.state.value, reason=pair.suspend_reason)

    def remove_pair(self, pair_id: str) -> ReplicationPair:
        """Detach a pair; returns it."""
        pair = self.pairs.pop(pair_id, None)
        if pair is None:
            raise ReplicationError(
                f"mirror {self.mirror_id}: unknown pair {pair_id}")
        del self._pairs_by_pvol[pair.pvol.volume_id]
        del self._pair_locks[pair_id]
        return pair

    def pair_for_pvol(self, volume_id: int) -> Optional[ReplicationPair]:
        """The pair whose primary is ``volume_id``, if any."""
        return self._pairs_by_pvol.get(volume_id)

    @property
    def member_pvol_ids(self) -> List[int]:
        """Primary volume ids of all member pairs."""
        return sorted(self._pairs_by_pvol)

    # -- data path ----------------------------------------------------------

    def _bulk_copy(self, pair: ReplicationPair,
                   items: List[tuple], path: str = "copy",
                   ) -> Generator[object, object, None]:
        """Delta-negotiated batched copy of ``(block, value)`` items.

        Each chunk of ``copy_batch_blocks`` blocks first ships only the
        per-block ``(version, crc32)`` metadata and waits one
        propagation delay for the verdict; blocks the secondary proves
        current never cross the wire (counted in
        ``repro_copy_skipped_blocks_total``).  The stale remainder
        ships as one batched payload transfer and applies with
        overlapped media writes — the whole chunk costs three one-way
        delays instead of one per block.

        With reduction enabled the stale payload transfer is charged
        its *post-reduction* byte count (dedup references + compressed
        payloads), the installed bytes are the actual receive-side
        reconstruction, and ``path`` labels the wire-byte accounting
        (``"copy"`` for initial copy, ``"resync"`` for resync).

        With ``apply_lanes > 1`` the install phases of up to that many
        chunks stage as conflict-free lanes (blocks within one
        ``_bulk_copy`` call are distinct) and commit together through
        the shared lane scheduler's consistency-cut barrier: one
        aggregated media wait per staged chunk, run concurrently, then
        every staged block installs at one instant.  ``apply_lanes=1``
        commits after every chunk, exactly as before.
        """
        config = self.config
        svol = pair.svol
        reducer = self.reducer
        #: completed chunks whose media installs await the next barrier
        staged: List[List[tuple]] = []

        def commit() -> Generator[object, object, None]:
            # a concurrent replicate_write may have raced a newer
            # version in while the payload was on the wire or staged;
            # re-check before applying, exactly like the per-block
            # path did
            lanes: List[List[tuple]] = []
            delays: List[float] = []
            for group in staged:
                installs = [
                    (block, payload, value)
                    for block, payload, value in group
                    if not pair.secondary_current(block, value.version)]
                if not installs:
                    continue
                lanes.append(installs)
                delays.append(lane_delay(
                    svol.apply_delay(block)
                    for block, _payload, _value in installs))
            staged.clear()
            yield from lane_waits(self.sim, delays,
                                  name=f"sdc-{pair.pair_id}.{path}")
            for installs in lanes:
                for block, payload, value in installs:
                    svol.install_block(block, payload,
                                       version=value.version,
                                       checksum=value.checksum)

        for start in range(0, len(items), config.copy_batch_blocks):
            chunk = items[start:start + config.copy_batch_blocks]
            # negotiation round trip: metadata out, verdict back
            negotiate_bytes = config.negotiate_metadata_bytes * len(chunk)
            try:
                yield from self.link.transfer(negotiate_bytes)
            except LinkDownError:
                # payloads already staged did land; install them before
                # surfacing the failure (the per-chunk path had them
                # installed already)
                yield from commit()
                reducer.invalidate()
                raise
            if reducer.enabled:
                reducer.account(path, [], extra_wire=negotiate_bytes)
            ack_delay = self.link.one_way_delay()
            if ack_delay > 0:
                yield self.sim.timeout(ack_delay)
            stale = [(block, value) for block, value in chunk
                     if not pair.secondary_current(block, value.version)]
            if len(stale) < len(chunk):
                self.copy_skipped.increment(len(chunk) - len(stale))
            if not stale:
                continue
            if reducer.enabled:
                # every block ships at the fixed block size unreduced,
                # so raw_bytes prices the wire cost it would have paid
                pending = reducer.begin_batch()
                encodings = [
                    reducer.encode(value.payload, pending,
                                   raw_bytes=config.block_size_bytes)
                    for _block, value in stale]
                wire_bytes = sum(e.wire_bytes for e in encodings)
            else:
                encodings = None
                wire_bytes = config.block_size_bytes * len(stale)
            try:
                yield from self.link.transfer(wire_bytes)
            except LinkDownError:
                # the shipment never landed: nothing was committed, but
                # the sender can no longer prove the receiver's state
                yield from commit()
                reducer.discard()
                reducer.invalidate()
                raise
            if encodings is not None:
                # receive side: reconstruct each block from its wire
                # form (committing the caches in lockstep) and book the
                # chunk's post-reduction bytes under this path
                received = {
                    block: reducer.receive(encodings[i], value.payload,
                                           value.checksum)
                    for i, (block, value) in enumerate(stale)}
                reducer.account(path, encodings)
            else:
                received = {block: value.payload for block, value in stale}
            staged.append([(block, received[block], value)
                           for block, value in stale])
            if len(staged) >= config.apply_lanes:
                yield from commit()
        yield from commit()

    def initial_copy(self, pair_id: str) -> Generator[object, object, None]:
        """Copy the current P-VOL content to the S-VOL over the link.

        Process generator; the pair reports COPY until it completes.
        The copy is delta-negotiated and batched: per-block
        ``(version, crc32)`` metadata is exchanged *before* any payload
        moves, so blocks already current on the S-VOL pay the metadata
        bytes only — never the ``block_size_bytes`` wire cost.
        """
        pair = self._require_pair(pair_id)
        items = sorted(pair.pvol.block_map().items())
        yield from self._bulk_copy(pair, items)
        pair.initial_copy_done = True

    def replicate_write(self, volume_id: int, block: int, payload: bytes,
                        version: int, span: Optional[Span] = None,
                        ) -> Generator[object, object, bool]:
        """Propagate one host write to the secondary before the ack.

        Called from the host-write path after the local apply.  Returns
        True when the write reached the secondary, False when the mirror
        is suspended (fence level "never") and the write is only
        dirty-tracked.  With fence level "data" a link failure raises.
        ``span`` is the originating host-write span.
        """
        pair = self._pairs_by_pvol.get(volume_id)
        if pair is None:
            raise ReplicationError(
                f"mirror {self.mirror_id}: volume {volume_id} not paired")
        if pair.suspended_state is not None:
            pair.mark_dirty(volume_id, block)
            return False
        rep_span = self.tracer.start(
            "replicate-write", parent=span, mirror=self.mirror_id,
            volume=volume_id, block=block)
        lock = self._pair_locks[pair.pair_id]
        yield lock.acquire()
        try:
            yield from self.link.transfer(self.config.block_size_bytes)
            yield from pair.svol.write_block(
                block, payload, version=version)
            # The completion status travels back before the host ack.
            ack_delay = self.link.one_way_delay()
            if ack_delay > 0:
                yield self.sim.timeout(ack_delay)
        except LinkDownError:
            # fingerprint state is void after any link failure
            self.reducer.invalidate()
            if self.config.fence_level == "data":
                self.tracer.finish(rep_span, status="error")
                raise
            pair.suspend(PairState.PSUE, "link down")
            pair.mark_dirty(volume_id, block)
            self.suspensions.increment()
            self.tracer.finish(rep_span, status="suspended")
            return False
        finally:
            lock.release()
        self.replicated_writes.increment()
        self.tracer.finish(rep_span)
        return True

    # -- suspension / resync -------------------------------------------------

    def split(self) -> None:
        """Operator-initiated suspension of every pair (PSUS)."""
        for pair in self.pairs.values():
            if pair.suspended_state is None:
                pair.suspend(PairState.PSUS, "split by operator")

    def resync(self) -> Generator[object, object, None]:
        """Copy dirty blocks to the secondaries and clear suspensions.

        Rides the same delta-negotiated bulk path as
        :meth:`initial_copy`: dirty blocks whose content already
        reached the secondary are skipped after the metadata exchange,
        and the stale remainder ships in
        ``copy_batch_blocks``-sized batches.
        """
        if not self.link.is_up:
            raise ReplicationError(
                f"mirror {self.mirror_id}: cannot resync while link is down")
        for pair in self.pairs.values():
            if pair.suspended_state is None:
                continue
            items = []
            for _volume_id, block in sorted(pair.take_dirty()):
                value = pair.pvol.peek(block)
                if value is None:
                    continue
                items.append((block, value))
            yield from self._bulk_copy(pair, items, path="resync")
            pair.clear_suspension()

    def _require_pair(self, pair_id: str) -> ReplicationPair:
        pair = self.pairs.get(pair_id)
        if pair is None:
            raise ReplicationError(
                f"mirror {self.mirror_id}: unknown pair {pair_id}")
        return pair

    def __repr__(self) -> str:
        return (f"<SyncMirror {self.mirror_id!r} pairs={len(self.pairs)} "
                f"writes={self.replicated_writes.value}>")
