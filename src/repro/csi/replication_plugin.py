"""The Replication Plug-in for Containers (§III-B2).

Reconciles :class:`~repro.csi.crds.ConsistencyGroupReplication` custom
resources into storage array commands:

1. resolve every listed PVC to its bound PV and array volume handle;
2. ensure the journal group(s) exist — **one shared group** when
   ``spec.consistency_group`` is true (the paper's configuration), one
   private group per volume otherwise (the collapse-prone baseline);
3. ensure an asynchronous replication pair per volume, creating the
   secondary volume at the backup array on first need;
4. register the secondary volumes as PersistentVolumes on the *backup
   cluster* (the Fig 3 → Fig 4 transition: "PVs appear in the backup
   site after tagging"), pre-bound to same-named claims so a recovered
   namespace binds to them directly;
5. surface aggregate pair state in the CR status and keep polling it.

Deletion is finalizer-driven: pairs are dissolved, empty journal groups
torn down, and backup PVs removed before the CR disappears.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import ClassVar, Dict, Generator, List, Optional, Type

from repro.errors import CsiError, NotFoundError
from repro.csi.crds import (REPLICATION_FINALIZER, STATE_CONFIGURING,
                            STATE_COPYING, STATE_PAIRED, STATE_SUSPENDED,
                            ConsistencyGroupReplication, VolumeReplication)
from repro.csi.rpc import RpcChannel
from repro.csi.storage_plugin import resolve_bound_volume
from repro.platform.apiserver import ApiServer
from repro.platform.controller import Reconciler, ReconcileResult, Requeue
from repro.platform.objects import Condition, ObjectKey, set_condition
from repro.platform.resources import PersistentVolume, claim_ref
from repro.simulation.network import NetworkLink
from repro.storage.adc import AdcConfig
from repro.storage.array import StorageArray
from repro.storage.replication import PairState

#: label the plugin puts on backup-site PVs it registers
SECONDARY_PV_LABEL = "replication.hitachi.com/secondary-of"


@dataclass
class ReplicationPluginContext:
    """Everything the plugin needs to drive a two-site topology."""

    main_array: StorageArray
    backup_array: StorageArray
    link: NetworkLink
    main_pool_id: int
    backup_pool_id: int
    #: API server of the backup cluster (for PV registration)
    backup_api: ApiServer
    #: storage-management REST latency per command
    command_latency: float = 0.050
    adc_config: Optional[AdcConfig] = None
    #: management transport; when set, every array command travels
    #: through it (latency, deadlines, ambiguous-outcome injection)
    rpc: Optional[RpcChannel] = None


class ReplicationReconciler(Reconciler):
    """Turns ConsistencyGroupReplication CRs into array configuration."""

    kind: ClassVar[Type[ConsistencyGroupReplication]] = \
        ConsistencyGroupReplication

    def __init__(self, context: ReplicationPluginContext) -> None:
        self.context = context

    # -- helpers -------------------------------------------------------------

    def _pay(self, api: ApiServer) -> Generator[object, object, None]:
        if self.context.rpc is not None:
            yield from self.context.rpc.pay()
        elif self.context.command_latency > 0:
            yield api.sim.timeout(self.context.command_latency)

    def _call(self, api: ApiServer, step: str, fn, probe=None,
              ) -> Generator[object, object, object]:
        """Run one array command over the management transport.

        With an :class:`RpcChannel` the command gets deadline/ambiguous-
        outcome semantics (and probing recovery); without one it is the
        historical pay-then-execute path.
        """
        if self.context.rpc is not None:
            result = yield from self.context.rpc.call(step, fn, probe=probe)
        else:
            yield from self._pay(api)
            result = fn()
        self._count(api, step)
        return result

    @staticmethod
    def _count(api: ApiServer, step: str) -> None:
        """Count one array-facing ensure/teardown step in the registry."""
        api.sim.telemetry.registry.counter(
            "repro_csi_replication_steps_total",
            help="Array-facing steps taken by the replication plugin",
            step=step,
        ).increment()

    @staticmethod
    def _group_ids(cr: ConsistencyGroupReplication) -> Dict[str, str]:
        """pvc name -> journal group id for this CR's configuration."""
        base = f"jg-{cr.meta.namespace}-{cr.meta.name}"
        if cr.spec.consistency_group:
            return {pvc: base for pvc in cr.spec.pvc_names}
        return {pvc: f"{base}-{pvc}" for pvc in cr.spec.pvc_names}

    @staticmethod
    def _pair_id(cr: ConsistencyGroupReplication, pvc_name: str) -> str:
        return f"{cr.meta.namespace}/{cr.meta.name}/{pvc_name}"

    def _backup_pv_name(self, cr: ConsistencyGroupReplication,
                        pvc_name: str) -> str:
        return f"pv-{cr.meta.namespace}-{pvc_name}-replica"

    # -- reconcile ----------------------------------------------------------

    def reconcile(self, api: ApiServer, key: ObjectKey,
                  ) -> Generator[object, object, ReconcileResult]:
        cr = api.try_get(ConsistencyGroupReplication, key.name,
                         key.namespace)
        if cr is None:
            return None
        if cr.meta.deleting:
            yield from self._teardown(api, cr)
            return None
        if REPLICATION_FINALIZER not in cr.meta.finalizers:
            cr.meta.finalizers.append(REPLICATION_FINALIZER)
            cr = api.update(cr)

        # 1. resolve PVCs -> PVs
        volumes: Dict[str, PersistentVolume] = {}
        for pvc_name in cr.spec.pvc_names:
            try:
                volumes[pvc_name] = resolve_bound_volume(
                    api, cr.meta.namespace, pvc_name)
            except (CsiError, NotFoundError) as exc:
                if (cr.status.state, cr.status.message) != \
                        (STATE_CONFIGURING, str(exc)):
                    cr.status.state = STATE_CONFIGURING
                    cr.status.message = str(exc)
                    api.update(cr)
                return Requeue(after=0.050)

        # 2. ensure journal groups
        group_ids = self._group_ids(cr)
        for group_id in sorted(set(group_ids.values())):
            yield from self._ensure_journal_group(api, group_id)

        # 3. ensure pairs (and secondary volumes)
        for pvc_name in cr.spec.pvc_names:
            cr = yield from self._ensure_pair(
                api, cr, pvc_name, group_ids[pvc_name], volumes[pvc_name])

        # 4. register backup PVs
        for pvc_name in cr.spec.pvc_names:
            self._ensure_backup_pv(cr, pvc_name, volumes[pvc_name])

        # 4b. requested suspension state (maintenance windows)
        yield from self._reconcile_suspension(api, cr, group_ids)

        # 5. status aggregation
        cr = api.get(ConsistencyGroupReplication, key.name, key.namespace)
        previous_status = copy.deepcopy(cr.status)
        pair_states = {}
        for pvc_name in cr.spec.pvc_names:
            pair = self.context.main_array.find_pair(
                self._pair_id(cr, pvc_name))
            pair_states[pvc_name] = pair.state.value if pair else "SMPL"
        cr.status.pair_states = pair_states
        cr.status.journal_groups = sorted(set(group_ids.values()))
        states = set(pair_states.values())
        if states <= {PairState.PAIR.value}:
            cr.status.state = STATE_PAIRED
            cr.status.message = ""
        elif states & {PairState.PSUS.value, PairState.PSUE.value}:
            cr.status.state = STATE_SUSPENDED
        else:
            cr.status.state = STATE_COPYING
        set_condition(cr.status.conditions, Condition(
            type="Ready", status=cr.status.state == STATE_PAIRED,
            reason=cr.status.state, last_transition=api.sim.now))
        if cr.status != previous_status:
            api.update(cr)
            if cr.status.state != previous_status.state:
                from repro.platform.events import record_event
                record_event(api, cr.meta.namespace, cr.key,
                             reason=cr.status.state,
                             message=f"pairs: {cr.status.pair_states}",
                             source="replication-plugin")
        if cr.status.state == STATE_PAIRED:
            return Requeue(after=0.500)  # keep pair health fresh
        if cr.status.state == STATE_SUSPENDED and cr.spec.suspended:
            return Requeue(after=0.500)  # intentional: just keep fresh
        return Requeue(after=0.020)

    # -- ensure steps ----------------------------------------------------

    def _ensure_journal_group(self, api: ApiServer, group_id: str,
                              ) -> Generator[object, object, None]:
        if group_id in self.context.main_array.journal_groups:
            return

        def command():
            main_journal = self.context.main_array.create_journal(
                self.context.main_pool_id)
            backup_journal = self.context.backup_array.create_journal(
                self.context.backup_pool_id)
            return self.context.main_array.create_journal_group(
                group_id, main_journal.journal_id,
                self.context.backup_array, backup_journal.journal_id,
                self.context.link, adc_config=self.context.adc_config)

        yield from self._call(
            api, "create_journal_group", command,
            probe=lambda: self.context.main_array.journal_groups.get(
                group_id))

    def _ensure_pair(self, api: ApiServer,
                     cr: ConsistencyGroupReplication, pvc_name: str,
                     group_id: str, pv: PersistentVolume,
                     ) -> Generator[object, object,
                                    ConsistencyGroupReplication]:
        pair_id = self._pair_id(cr, pvc_name)
        if self.context.main_array.find_pair(pair_id) is not None:
            return cr
        pvol_id = self.context.main_array.parse_handle(
            pv.spec.csi.volume_handle)
        secondary_handle = cr.status.secondary_handles.get(pvc_name)
        if secondary_handle is None:
            svol_name = f"{pair_id}-svol"
            # a previous attempt may have created the volume and then
            # died before persisting the handle to the CR; re-discover
            # by deterministic name instead of leaking an orphan
            svol = self.context.backup_array.find_volume_by_name(svol_name)
            if svol is None:
                svol = yield from self._call(
                    api, "create_secondary_volume",
                    lambda: self.context.backup_array.create_volume(
                        self.context.backup_pool_id,
                        pv.spec.capacity_blocks, name=svol_name),
                    probe=lambda:
                    self.context.backup_array.find_volume_by_name(
                        svol_name))
            secondary_handle = self.context.backup_array.volume_handle(
                svol.volume_id)
            cr.status.secondary_handles[pvc_name] = secondary_handle
            cr = api.update(cr)  # persist before pairing (idempotency)
        svol_id = self.context.backup_array.parse_handle(secondary_handle)
        yield from self._call(
            api, "create_async_pair",
            lambda: self.context.main_array.create_async_pair(
                pair_id, group_id, pvol_id, self.context.backup_array,
                svol_id),
            probe=lambda: self.context.main_array.find_pair(pair_id))
        return cr

    def _reconcile_suspension(self, api: ApiServer,
                              cr: ConsistencyGroupReplication,
                              group_ids: Dict[str, str],
                              ) -> Generator[object, object, None]:
        """Split or resynchronise the journal groups to match
        ``spec.suspended``.

        Self-healing is limited to *intentional* splits (PSUS): a group
        suspended by error (PSUE — journal overflow, dead link) needs
        repair first; auto-resyncing it would fail repeatedly or hide
        the fault, so it is surfaced in status instead.
        """
        groups = [self.context.main_array.journal_groups[group_id]
                  for group_id in sorted(set(group_ids.values()))
                  if group_id in self.context.main_array.journal_groups]
        for group in groups:
            states = {pair.suspended_state for pair in
                      group.pairs.values()}
            if cr.spec.suspended and not group.suspended:
                yield from self._call(
                    api, "split", group.split,
                    probe=lambda g=group: g if g.suspended else None)
            elif not cr.spec.suspended and group.suspended and \
                    states == {PairState.PSUS} and group.link.is_up:
                yield from self._pay(api)
                yield from group.resync()
                self._count(api, "resync")

    def _ensure_backup_pv(self, cr: ConsistencyGroupReplication,
                          pvc_name: str, pv: PersistentVolume) -> None:
        backup_api = self.context.backup_api
        name = self._backup_pv_name(cr, pvc_name)
        if backup_api.try_get(PersistentVolume, name) is not None:
            return
        secondary_handle = cr.status.secondary_handles.get(pvc_name)
        if secondary_handle is None:
            return
        backup_pv = PersistentVolume()
        backup_pv.meta.name = name
        backup_pv.meta.labels = {
            SECONDARY_PV_LABEL: f"{cr.meta.namespace}.{cr.meta.name}",
            "replication.hitachi.com/pvc": pvc_name,
        }
        backup_pv.spec.capacity_blocks = pv.spec.capacity_blocks
        backup_pv.spec.storage_class = pv.spec.storage_class
        backup_pv.spec.csi.driver = pv.spec.csi.driver
        backup_pv.spec.csi.volume_handle = secondary_handle
        backup_pv.spec.csi.array_serial = self.context.backup_array.serial
        backup_pv.spec.claim_ref = claim_ref(cr.meta.namespace, pvc_name)
        backup_api.create(backup_pv)
        self._count(backup_api, "register_backup_pv")

    # -- teardown ------------------------------------------------------------

    def _teardown(self, api: ApiServer, cr: ConsistencyGroupReplication,
                  ) -> Generator[object, object, None]:
        if REPLICATION_FINALIZER not in cr.meta.finalizers:
            return
        group_ids = self._group_ids(cr)
        for pvc_name in cr.spec.pvc_names:
            pair_id = self._pair_id(cr, pvc_name)
            if self.context.main_array.find_pair(pair_id) is not None:
                yield from self._call(
                    api, "delete_pair",
                    lambda p=pair_id: self.context.main_array.delete_pair(
                        p),
                    probe=lambda p=pair_id: True
                    if self.context.main_array.find_pair(p) is None
                    else None)
        for group_id in sorted(set(group_ids.values())):
            group = self.context.main_array.journal_groups.get(group_id)
            if group is not None and not group.pairs:
                yield from self._call(
                    api, "delete_journal_group",
                    lambda g=group_id:
                    self.context.main_array.delete_journal_group(
                        g, self.context.backup_array),
                    probe=lambda g=group_id: True
                    if g not in self.context.main_array.journal_groups
                    else None)
        for pvc_name in cr.spec.pvc_names:
            name = self._backup_pv_name(cr, pvc_name)
            if self.context.backup_api.try_get(
                    PersistentVolume, name) is not None:
                self.context.backup_api.delete(PersistentVolume, name)
        api.remove_finalizer(ConsistencyGroupReplication, cr.meta.name,
                             cr.meta.namespace, REPLICATION_FINALIZER)


class VolumeReplicationReconciler(Reconciler):
    """Single-volume replication: owns a one-member consistency group CR.

    Demonstrates operator composition: the VolumeReplication CR is
    implemented *on top of* ConsistencyGroupReplication rather than
    duplicating the pairing logic.
    """

    kind: ClassVar[Type[VolumeReplication]] = VolumeReplication

    def _owned_name(self, key: ObjectKey) -> str:
        return f"vr-{key.name}"

    def reconcile(self, api: ApiServer, key: ObjectKey,
                  ) -> Generator[object, object, ReconcileResult]:
        vr = api.try_get(VolumeReplication, key.name, key.namespace)
        owned_name = self._owned_name(key)
        if vr is None or vr.meta.deleting:
            owned = api.try_get(ConsistencyGroupReplication, owned_name,
                                key.namespace)
            if owned is not None and not owned.meta.deleting:
                api.delete(ConsistencyGroupReplication, owned_name,
                           key.namespace)
            return None
        owned = api.try_get(ConsistencyGroupReplication, owned_name,
                            key.namespace)
        if owned is None:
            owned = ConsistencyGroupReplication()
            owned.meta.name = owned_name
            owned.meta.namespace = key.namespace
            owned.spec.pvc_names = [vr.spec.pvc_name]
            owned.spec.target_site = vr.spec.target_site
            api.create(owned)
            return Requeue(after=0.020)
        previous_status = copy.deepcopy(vr.status)
        vr.status.state = owned.status.state
        vr.status.pair_state = owned.status.pair_states.get(
            vr.spec.pvc_name, "")
        vr.status.secondary_handle = owned.status.secondary_handles.get(
            vr.spec.pvc_name, "")
        vr.status.message = owned.status.message
        if vr.status != previous_status:
            api.update(vr)
        if vr.status.state != STATE_PAIRED:
            return Requeue(after=0.050)
        return Requeue(after=0.500)
        yield  # pragma: no cover - generator marker


def install_replication_plugin(cluster, context: ReplicationPluginContext,
                               ) -> None:
    """Install the Replication Plug-in for Containers on a (main) cluster."""
    cluster.install(ReplicationReconciler(context),
                    name=f"{cluster.name}.replication-plugin")
    cluster.install(VolumeReplicationReconciler(),
                    name=f"{cluster.name}.volume-replication")
