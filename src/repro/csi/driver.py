"""The array-backed CSI driver (the simulated Storage Plug-in driver).

:class:`HspcDriver` wraps one :class:`~repro.storage.array.StorageArray`
and exposes the CSI controller operations.  Management calls pay a
configurable REST latency so operator-automation experiments (E3) can
compare configuration times honestly.

Idempotency: CSI requires CreateVolume/CreateSnapshot to be idempotent
per name; the driver keeps a name → handle table and returns the
existing resource on retry, as a real driver does.
"""

from __future__ import annotations

from typing import Dict, Generator, Iterable

from repro.errors import CsiError
from repro.csi.spec import (CsiDriver, ProvisionedSnapshot,
                            ProvisionedSnapshotGroup, ProvisionedVolume,
                            snapshot_handle)
from repro.storage.array import StorageArray


class HspcDriver(CsiDriver):
    """CSI driver for the simulated enterprise array."""

    driver_name = "hspc.hitachi.com"

    def __init__(self, array: StorageArray, default_pool_id: int,
                 management_latency: float = 0.050,
                 enable_group_snapshots: bool = False) -> None:
        if management_latency < 0:
            raise ValueError("management_latency must be >= 0")
        self.array = array
        self.default_pool_id = default_pool_id
        self.management_latency = management_latency
        self._enable_group_snapshots = enable_group_snapshots
        self._volumes_by_name: Dict[str, ProvisionedVolume] = {}
        self._snapshots_by_name: Dict[str, ProvisionedSnapshot] = {}
        self._groups_by_name: Dict[str, ProvisionedSnapshotGroup] = {}

    # -- helpers -------------------------------------------------------------

    def _pool_id(self, parameters: Dict[str, str]) -> int:
        raw = parameters.get("poolId")
        if raw is None:
            return self.default_pool_id
        try:
            return int(raw)
        except ValueError as exc:
            raise CsiError(f"bad poolId parameter: {raw!r}") from exc

    def _pay_latency(self) -> Generator[object, object, None]:
        if self.management_latency > 0:
            yield self.array.sim.timeout(self.management_latency)

    # -- controller service --------------------------------------------------

    def create_volume(self, name: str, capacity_blocks: int,
                      parameters: Dict[str, str],
                      ) -> Generator[object, object, ProvisionedVolume]:
        existing = self._volumes_by_name.get(name)
        if existing is not None:
            if existing.capacity_blocks != capacity_blocks:
                raise CsiError(
                    f"CreateVolume {name!r}: incompatible capacity "
                    f"{capacity_blocks} (existing "
                    f"{existing.capacity_blocks})")
            return existing
        yield from self._pay_latency()
        volume = self.array.create_volume(
            self._pool_id(parameters), capacity_blocks, name=name)
        provisioned = ProvisionedVolume(
            volume_handle=self.array.volume_handle(volume.volume_id),
            array_serial=self.array.serial,
            capacity_blocks=capacity_blocks)
        self._volumes_by_name[name] = provisioned
        return provisioned

    def delete_volume(self, volume_handle: str,
                      ) -> Generator[object, object, None]:
        yield from self._pay_latency()
        volume_id = self.array.parse_handle(volume_handle)
        pool_id = self._pool_for_volume(volume_id)
        self.array.delete_volume(volume_id, pool_id)
        self._volumes_by_name = {
            name: vol for name, vol in self._volumes_by_name.items()
            if vol.volume_handle != volume_handle}

    def _pool_for_volume(self, volume_id: int) -> int:
        # The simulated array reserves volumes against exactly one pool;
        # resolve it by checking which pool holds the reservation.
        for pool_id, pool in self.array._pools.items():
            if pool.holds(f"volume-{volume_id}"):
                return pool_id
        raise CsiError(f"volume {volume_id} has no pool reservation")

    def create_snapshot(self, name: str, source_volume_handle: str,
                        ) -> Generator[object, object, ProvisionedSnapshot]:
        existing = self._snapshots_by_name.get(name)
        if existing is not None:
            return existing
        yield from self._pay_latency()
        volume_id = self.array.parse_handle(source_volume_handle)
        snapshot = self.array.create_snapshot(volume_id, name=name)
        provisioned = ProvisionedSnapshot(
            snapshot_handle=snapshot_handle(self.array.serial,
                                            snapshot.snapshot_id),
            source_volume_handle=source_volume_handle,
            creation_time=snapshot.created_at)
        self._snapshots_by_name[name] = provisioned
        return provisioned

    def delete_snapshot(self, handle: str,
                        ) -> Generator[object, object, None]:
        from repro.csi.spec import parse_snapshot_handle
        yield from self._pay_latency()
        serial, snapshot_id = parse_snapshot_handle(handle)
        if serial != self.array.serial:
            raise CsiError(f"snapshot {handle!r} belongs to array {serial}")
        self.array.delete_snapshot(snapshot_id)
        self._snapshots_by_name = {
            name: snap for name, snap in self._snapshots_by_name.items()
            if snap.snapshot_handle != handle}

    def get_capacity(self, parameters: Dict[str, str]) -> int:
        pool = self.array._pools.get(self._pool_id(parameters))
        if pool is None:
            raise CsiError(f"unknown pool {self._pool_id(parameters)}")
        return pool.free_blocks

    # -- alpha group-snapshot extension ------------------------------------

    @property
    def supports_group_snapshots(self) -> bool:
        return self._enable_group_snapshots

    def create_snapshot_group(self, name: str,
                              source_volume_handles: Iterable[str],
                              ) -> Generator[object, object, ProvisionedSnapshotGroup]:
        if not self._enable_group_snapshots:
            raise CsiError(
                f"driver {self.driver_name} does not support group "
                "snapshots (alpha CSI feature; see paper §II)")
        existing = self._groups_by_name.get(name)
        if existing is not None:
            return existing
        yield from self._pay_latency()
        handles = list(source_volume_handles)
        volume_ids = [self.array.parse_handle(h) for h in handles]
        group = yield from self.array.create_snapshot_group(
            name, volume_ids, quiesce=True)
        members: Dict[str, str] = {}
        by_base = group.by_base_volume()
        for handle, volume_id in zip(handles, volume_ids):
            snap = by_base[volume_id]
            members[handle] = snapshot_handle(self.array.serial,
                                              snap.snapshot_id)
        provisioned = ProvisionedSnapshotGroup(
            group_handle=f"snapgrp.{self.array.serial}.{name}",
            member_handles=members, creation_time=group.created_at)
        self._groups_by_name[name] = provisioned
        return provisioned

    # -- handle resolution (used by the replication plugin) ------------------

    def resolve_volume_id(self, volume_handle: str) -> int:
        """Array volume id behind a handle (no latency: local parse)."""
        return self.array.parse_handle(volume_handle)

    def __repr__(self) -> str:
        return (f"<HspcDriver array={self.array.serial!r} "
                f"volumes={len(self._volumes_by_name)}>")
