"""Custom resources of the replication plugin (§III-B2).

The namespace operator does not talk to the storage array; it creates
these custom resources, and the *Replication Plug-in for Containers*
reconciles them into array commands.  Two kinds:

* :class:`ConsistencyGroupReplication` — the paper's configuration: every
  listed PVC's volume is paired inside **one** consistency group (one
  shared journal).  Setting ``spec.consistency_group = False`` gives the
  collapse-prone baseline: one private journal group per volume.
* :class:`VolumeReplication` — single-volume replication, provided for
  completeness (equivalent to a one-member group).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Dict, List

from repro.errors import InvalidObjectError
from repro.platform.objects import ApiObject, Condition

#: finalizer the replication plugin owns on its CRs
REPLICATION_FINALIZER = "replication.hitachi.com/teardown"

#: replication states surfaced in CR status
STATE_CONFIGURING = "Configuring"
STATE_COPYING = "Copying"
STATE_PAIRED = "Paired"
STATE_SUSPENDED = "Suspended"
STATE_DELETING = "Deleting"


@dataclass
class ConsistencyGroupReplicationSpec:
    """Desired replication of a set of PVCs as one consistency group."""

    pvc_names: List[str] = field(default_factory=list)
    #: share one journal (True, the paper's configuration) or give each
    #: pair its own journal (False, the collapse-prone ADC baseline)
    consistency_group: bool = True
    #: name of the backup site this group replicates to
    target_site: str = "backup"
    #: operator-requested suspension: pairs split (PSUS) while True and
    #: resynchronise when it returns to False (maintenance windows)
    suspended: bool = False


@dataclass
class ConsistencyGroupReplicationStatus:
    """Observed replication state, maintained by the plugin."""

    state: str = STATE_CONFIGURING
    #: pvc name -> pair state string (COPY/PAIR/PSUS/PSUE/SSWS)
    pair_states: Dict[str, str] = field(default_factory=dict)
    #: pvc name -> backup-array S-VOL handle
    secondary_handles: Dict[str, str] = field(default_factory=dict)
    #: journal group ids backing this CR (1 with CG, N without)
    journal_groups: List[str] = field(default_factory=list)
    conditions: List[Condition] = field(default_factory=list)
    message: str = ""


@dataclass
class ConsistencyGroupReplication(ApiObject):
    """The custom resource the namespace operator creates (one per
    tagged namespace)."""

    KIND: ClassVar[str] = "ConsistencyGroupReplication"
    NAMESPACED: ClassVar[bool] = True

    spec: ConsistencyGroupReplicationSpec = field(
        default_factory=ConsistencyGroupReplicationSpec)
    status: ConsistencyGroupReplicationStatus = field(
        default_factory=ConsistencyGroupReplicationStatus)

    def validate(self) -> None:
        super().validate()
        if not self.spec.pvc_names:
            raise InvalidObjectError(
                f"ConsistencyGroupReplication {self.meta.name!r} needs at "
                "least one PVC")
        if len(set(self.spec.pvc_names)) != len(self.spec.pvc_names):
            raise InvalidObjectError(
                f"ConsistencyGroupReplication {self.meta.name!r} lists "
                "duplicate PVCs")

    @property
    def ready(self) -> bool:
        """True once every pair reached steady-state mirroring."""
        return self.status.state == STATE_PAIRED


@dataclass
class VolumeReplicationSpec:
    """Desired replication of a single PVC."""

    pvc_name: str = ""
    target_site: str = "backup"


@dataclass
class VolumeReplicationStatus:
    """Observed single-volume replication state."""

    state: str = STATE_CONFIGURING
    pair_state: str = ""
    secondary_handle: str = ""
    message: str = ""


@dataclass
class VolumeReplication(ApiObject):
    """Single-volume replication custom resource."""

    KIND: ClassVar[str] = "VolumeReplication"
    NAMESPACED: ClassVar[bool] = True

    spec: VolumeReplicationSpec = field(
        default_factory=VolumeReplicationSpec)
    status: VolumeReplicationStatus = field(
        default_factory=VolumeReplicationStatus)

    def validate(self) -> None:
        super().validate()
        if not self.spec.pvc_name:
            raise InvalidObjectError(
                f"VolumeReplication {self.meta.name!r} needs spec.pvc_name")
