"""The storage-management RPC transport used by the CSI plugins.

Array commands in the plugin do not execute by magic method call: on a
real system they travel over the storage controller's REST interface,
where they cost latency and can **time out with the outcome unknown** —
the array may have executed the command just before the deadline passed.
:class:`RpcChannel` models exactly that:

* every call pays the configured management latency;
* an attached :class:`CsiRpcInjector` (driven by chaos campaigns) makes
  a seed-deterministic fraction of calls raise
  :class:`~repro.errors.RpcTimeoutError` — optionally *after* the
  command took effect, the ambiguous case only idempotent callers
  survive;
* ambiguous outcomes are recovered by **probing**: the caller supplies
  a read-only probe that re-reads array state, and the channel returns
  the probed result instead of blindly re-driving the side effect.

Only when the probe shows the effect did *not* apply does the channel
re-drive the command, up to its retry budget.  Callers without a probe
get the timeout raised immediately — their reconcile loop retries
level-triggered, re-entering with its own existence guards.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional, TypeVar

from repro.errors import RpcTimeoutError
from repro.simulation.kernel import Simulator

T = TypeVar("T")

#: probe contract: return the (non-None) effect if it is observable on
#: the array, None if the command definitely did not apply
Probe = Callable[[], Optional[T]]


class CsiRpcInjector:
    """Deterministic fault injection for the management transport.

    ``timeout_probability`` is the chance a call raises
    :class:`RpcTimeoutError`; ``effect_probability`` is the chance —
    *given* a timeout — that the command executed before the deadline
    (the ambiguous-outcome case).  Both draws come from a named seeded
    RNG stream, so campaigns are reproducible per seed.
    """

    def __init__(self, sim: Simulator, stream: str = "chaos.csi") -> None:
        self.sim = sim
        self.stream = stream
        self.timeout_probability = 0.0
        self.effect_probability = 1.0
        #: total timeouts injected (timeline bookkeeping for campaigns)
        self.injected = 0

    def clear(self) -> None:
        """Heal: stop injecting (the injector stays installed)."""
        self.timeout_probability = 0.0
        self.effect_probability = 1.0

    def draw(self) -> Optional[bool]:
        """One fault decision: None = healthy, else whether the command
        takes effect before the injected timeout fires."""
        if not self.timeout_probability:
            return None
        if self.sim.rng.uniform(self.stream, 0.0, 1.0) >= \
                self.timeout_probability:
            return None
        self.injected += 1
        return self.sim.rng.uniform(self.stream, 0.0, 1.0) < \
            self.effect_probability


class RpcChannel:
    """One management transport to a storage array (or array pair)."""

    def __init__(self, sim: Simulator, latency: float = 0.050,
                 injector: Optional[CsiRpcInjector] = None,
                 retries: int = 2, name: str = "csi-rpc") -> None:
        if latency < 0:
            raise ValueError(f"negative latency: {latency}")
        if retries < 0:
            raise ValueError(f"negative retries: {retries}")
        self.sim = sim
        self.latency = latency
        self.injector = injector if injector is not None \
            else CsiRpcInjector(sim)
        self.retries = retries
        self.name = name
        self._timeouts_metric_cache: dict = {}

    def pay(self) -> Generator[object, object, None]:
        """Pay one round of management latency (no command)."""
        if self.latency > 0:
            yield self.sim.timeout(self.latency)

    def _record_timeout(self, step: str, applied: bool) -> None:
        key = (step, applied)
        metric = self._timeouts_metric_cache.get(key)
        if metric is None:
            metric = self.sim.telemetry.registry.counter(
                "repro_rpc_timeouts_total",
                help="CSI management RPCs that exceeded their deadline",
                step=step, applied="true" if applied else "false")
            self._timeouts_metric_cache[key] = metric
        metric.increment()
        self.sim.telemetry.recorder.record(
            "csi", "rpc_timeout", channel=self.name, step=step,
            applied=applied)

    def call(self, step: str, fn: Callable[[], T],
             probe: Optional[Probe] = None,
             ) -> Generator[object, object, T]:
        """Run one array command over the transport (process generator).

        ``fn`` is the synchronous array command; ``probe`` re-reads
        array state and returns the effect if observable.  On an
        injected timeout the channel first probes (never re-driving an
        effect that already applied), then re-drives up to ``retries``
        times, and finally raises :class:`RpcTimeoutError` — at which
        point the caller's level-triggered retry takes over.
        """
        attempt = 0
        while True:
            yield from self.pay()
            verdict = self.injector.draw()
            if verdict is None:
                return fn()
            if verdict:
                fn()  # the command lands, but the reply is lost
            self._record_timeout(step, applied=verdict)
            if probe is not None:
                observed = probe()
                if observed is not None:
                    self.sim.telemetry.recorder.record(
                        "csi", "rpc_recovered", channel=self.name,
                        step=step, attempt=attempt)
                    return observed  # type: ignore[return-value]
            if probe is None or attempt >= self.retries:
                raise RpcTimeoutError(
                    f"{self.name}: {step} deadline exceeded "
                    f"(outcome ambiguous, attempt {attempt + 1})")
            attempt += 1
