"""CSI-shaped driver interface (§II's Container Storage Interface).

The CSI "standardizes the operations of external storage systems, which
vary depending on the vendors" — here that means every storage operation
a platform controller performs goes through :class:`CsiDriver`, never
through a :class:`~repro.storage.array.StorageArray` directly.  The demo
deliberately breaks this rule in exactly one place, as the paper does:
snapshot *groups* are an alpha CSI feature the vendor plugin does not
support yet, so the console operates the array directly for them.

All driver methods are process generators (they model management-path
REST calls to the array, which take time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator


@dataclass(frozen=True)
class ProvisionedVolume:
    """Result of CreateVolume: the array-side identity of a new volume."""

    volume_handle: str
    array_serial: str
    capacity_blocks: int


@dataclass(frozen=True)
class ProvisionedSnapshot:
    """Result of CreateSnapshot."""

    snapshot_handle: str
    source_volume_handle: str
    creation_time: float


class CsiDriver:
    """Abstract CSI driver: identity + controller services.

    Concrete drivers wrap one storage array.  Method names follow the
    CSI controller-service RPCs.
    """

    #: the driver name storage classes reference as ``provisioner``
    driver_name: str = ""

    def create_volume(self, name: str, capacity_blocks: int,
                      parameters: Dict[str, str],
                      ) -> Generator[object, object, ProvisionedVolume]:
        """Provision a volume; idempotent per ``name``."""
        raise NotImplementedError
        yield  # pragma: no cover

    def delete_volume(self, volume_handle: str,
                      ) -> Generator[object, object, None]:
        """Delete a provisioned volume."""
        raise NotImplementedError
        yield  # pragma: no cover

    def create_snapshot(self, name: str, source_volume_handle: str,
                        ) -> Generator[object, object, ProvisionedSnapshot]:
        """Cut a snapshot of one volume; idempotent per ``name``."""
        raise NotImplementedError
        yield  # pragma: no cover

    def delete_snapshot(self, snapshot_handle: str,
                        ) -> Generator[object, object, None]:
        """Delete a snapshot."""
        raise NotImplementedError
        yield  # pragma: no cover

    def get_capacity(self, parameters: Dict[str, str]) -> int:
        """Free capacity (blocks) for the given parameters."""
        raise NotImplementedError

    # -- alpha group-snapshot extension (not yet in the standard) ---------

    @property
    def supports_group_snapshots(self) -> bool:
        """Whether the driver implements the alpha group-snapshot calls.

        The paper's plugin does not (§II); the forward-looking driver
        here does, but the corresponding controller is off by default.
        """
        return False

    def create_snapshot_group(self, name: str, source_volume_handles,
                              ) -> Generator[object, object, "ProvisionedSnapshotGroup"]:
        """Cut a consistent snapshot group (alpha extension)."""
        raise NotImplementedError
        yield  # pragma: no cover


@dataclass(frozen=True)
class ProvisionedSnapshotGroup:
    """Result of the alpha CreateSnapshotGroup extension."""

    group_handle: str
    #: source volume handle -> member snapshot handle
    member_handles: Dict[str, str]
    creation_time: float


def snapshot_handle(array_serial: str, snapshot_id: int) -> str:
    """Canonical snapshot handle format."""
    return f"snap.{array_serial}.{snapshot_id}"


def parse_snapshot_handle(handle: str) -> tuple[str, int]:
    """Inverse of :func:`snapshot_handle`: ``(array_serial, snapshot_id)``."""
    parts = handle.split(".")
    if len(parts) != 3 or parts[0] != "snap":
        raise ValueError(f"malformed snapshot handle {handle!r}")
    return parts[1], int(parts[2])
