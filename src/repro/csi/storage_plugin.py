"""The Storage Plug-in for Containers (§III-B2): provisioning and
snapshots through CSI.

Three reconcilers:

* :class:`ProvisionerReconciler` — binds Pending PVCs, preferring a
  pre-created Available PV (how replicated secondaries surface at the
  backup site) and dynamically provisioning through the CSI driver
  otherwise;
* :class:`SnapshotReconciler` — turns ``VolumeSnapshot`` objects into
  array snapshots via the driver (the Fig 5 "snapshot development on the
  web console" path);
* :class:`GroupSnapshotReconciler` — the *forward-looking* controller
  for the alpha ``VolumeGroupSnapshot`` API.  The paper's system does
  not have this (users operate the array directly); install it only to
  demonstrate the future state (§II's "will be removed by the technical
  advancements in the CSI and the storage plugin").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar, Generator, List, Type

from repro.errors import CsiError, NotFoundError
from repro.csi.driver import HspcDriver
from repro.platform.apiserver import ApiServer, WatchEvent
from repro.platform.controller import Reconciler, ReconcileResult, Requeue
from repro.platform.objects import ObjectKey
from repro.platform.resources import (PersistentVolume,
                                      PersistentVolumeClaim, StorageClass,
                                      VolumeGroupSnapshot, VolumeSnapshot,
                                      claim_ref)

if TYPE_CHECKING:  # pragma: no cover
    from repro.platform.cluster import Cluster


#: finalizer protecting claims until their storage is reclaimed
PVC_PROTECTION_FINALIZER = "csi.hitachi.com/pvc-protection"

#: finalizer protecting snapshots until the array snapshot is deleted
SNAPSHOT_PROTECTION_FINALIZER = "csi.hitachi.com/snapshot-protection"


class ProvisionerReconciler(Reconciler):
    """Binds, dynamically provisions, and reclaims persistent volume
    claims (reclaim policy: Delete)."""

    kind: ClassVar[Type[PersistentVolumeClaim]] = PersistentVolumeClaim
    extra_kinds = (PersistentVolume,)

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster

    def reconcile(self, api: ApiServer, key: ObjectKey,
                  ) -> Generator[object, object, ReconcileResult]:
        pvc = api.try_get(PersistentVolumeClaim, key.name, key.namespace)
        if pvc is None:
            return None
        if pvc.meta.deleting:
            result = yield from self._reclaim(api, pvc)
            return result
        if pvc.bound:
            return None
        storage_class = api.try_get(StorageClass, pvc.spec.storage_class)
        if storage_class is None:
            return Requeue(after=0.100)
        if not self.cluster.has_csi_driver(storage_class.provisioner):
            return None  # another plugin's class; not ours to act on
        if PVC_PROTECTION_FINALIZER not in pvc.meta.finalizers:
            pvc.meta.finalizers.append(PVC_PROTECTION_FINALIZER)
            pvc = api.update(pvc)
        ref = claim_ref(key.namespace, key.name)
        pv = self._find_bindable_pv(api, pvc, ref)
        if pv is None:
            driver = self.cluster.csi_driver(storage_class.provisioner)
            provisioned = yield from driver.create_volume(
                name=f"pvc-{pvc.meta.uid}",
                capacity_blocks=pvc.spec.capacity_blocks,
                parameters=storage_class.parameters)
            pv = PersistentVolume()
            pv.meta.name = f"pv-{pvc.meta.uid}"
            pv.spec.capacity_blocks = provisioned.capacity_blocks
            pv.spec.storage_class = storage_class.meta.name
            pv.spec.csi.driver = driver.driver_name
            pv.spec.csi.volume_handle = provisioned.volume_handle
            pv.spec.csi.array_serial = provisioned.array_serial
            pv.spec.claim_ref = ref
            pv = api.create(pv)
        self._bind(api, pvc, pv, ref)
        return None

    def _reclaim(self, api: ApiServer, pvc: PersistentVolumeClaim,
                 ) -> Generator[object, object, ReconcileResult]:
        """Delete-reclaim: release the PV and the array volume, then
        let the claim finish deleting.

        A volume still paired for replication (or still carrying
        snapshots) cannot be deleted yet — the replication plugin's own
        teardown must run first, so the reclaim retries.
        """
        if PVC_PROTECTION_FINALIZER not in pvc.meta.finalizers:
            return None
        pv = None
        if pvc.spec.volume_name:
            pv = api.try_get(PersistentVolume, pvc.spec.volume_name)
        if pv is not None:
            if not self.cluster.has_csi_driver(pv.spec.csi.driver):
                return Requeue(after=0.250)
            driver = self.cluster.csi_driver(pv.spec.csi.driver)
            from repro.errors import ArrayCommandError
            try:
                yield from driver.delete_volume(pv.spec.csi.volume_handle)
            except ArrayCommandError:
                # still replicated / still has snapshots: retry after
                # the owning controllers unwind their configuration
                return Requeue(after=0.100)
            api.delete(PersistentVolume, pv.meta.name)
        api.remove_finalizer(PersistentVolumeClaim, pvc.meta.name,
                             pvc.meta.namespace,
                             PVC_PROTECTION_FINALIZER)
        return None

    def _find_bindable_pv(self, api: ApiServer,
                          pvc: PersistentVolumeClaim,
                          ref: str) -> PersistentVolume | None:
        candidates = []
        for pv in api.list(PersistentVolume):
            if pv.spec.claim_ref == ref:
                # already (half-)bound to exactly this claim: a bind
                # whose PVC update flaked or crashed left the PV Bound
                # while the claim stayed Pending.  Adopt it — trying to
                # provision a fresh PV would livelock on the name
                return pv
            if pv.status.phase != "Available":
                continue
            if pv.spec.storage_class != pvc.spec.storage_class:
                continue
            if pv.spec.capacity_blocks < pvc.spec.capacity_blocks:
                continue
            if pv.spec.claim_ref and pv.spec.claim_ref != ref:
                continue
            candidates.append(pv)
        if not candidates:
            return None
        # prefer a PV pre-bound to exactly this claim, then smallest fit
        candidates.sort(key=lambda pv: (pv.spec.claim_ref != ref,
                                        pv.spec.capacity_blocks,
                                        pv.meta.name))
        return candidates[0]

    def _bind(self, api: ApiServer, pvc: PersistentVolumeClaim,
              pv: PersistentVolume, ref: str) -> None:
        pv.spec.claim_ref = ref
        pv.status.phase = "Bound"
        api.update(pv)
        pvc.spec.volume_name = pv.meta.name
        pvc.status.phase = "Bound"
        api.update(pvc)

    def map_event(self, api: ApiServer,
                  event: WatchEvent) -> List[ObjectKey]:
        """A new Available PV may satisfy a waiting claim."""
        pv = event.object
        if pv.spec.claim_ref:
            namespace, _slash, name = pv.spec.claim_ref.partition("/")
            return [ObjectKey(PersistentVolumeClaim.KIND, namespace, name)]
        pending = [pvc.key for pvc in api.list(PersistentVolumeClaim)
                   if not pvc.bound]
        return pending


def resolve_bound_volume(api: ApiServer, namespace: str,
                         pvc_name: str) -> PersistentVolume:
    """PV behind a bound PVC; raises CsiError when not resolvable."""
    pvc = api.try_get(PersistentVolumeClaim, pvc_name, namespace)
    if pvc is None:
        raise NotFoundError(f"PVC {namespace}/{pvc_name} not found")
    if not pvc.bound:
        raise CsiError(f"PVC {namespace}/{pvc_name} is not bound")
    pv = api.try_get(PersistentVolume, pvc.spec.volume_name)
    if pv is None:
        raise CsiError(
            f"PVC {namespace}/{pvc_name} references missing PV "
            f"{pvc.spec.volume_name!r}")
    return pv


class SnapshotReconciler(Reconciler):
    """Cuts array snapshots for ``VolumeSnapshot`` objects."""

    kind: ClassVar[Type[VolumeSnapshot]] = VolumeSnapshot

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster

    def reconcile(self, api: ApiServer, key: ObjectKey,
                  ) -> Generator[object, object, ReconcileResult]:
        snapshot = api.try_get(VolumeSnapshot, key.name, key.namespace)
        if snapshot is None:
            return None
        if snapshot.meta.deleting:
            yield from self._delete_array_snapshot(api, snapshot)
            return None
        if snapshot.status.ready:
            return None
        if SNAPSHOT_PROTECTION_FINALIZER not in snapshot.meta.finalizers:
            snapshot.meta.finalizers.append(
                SNAPSHOT_PROTECTION_FINALIZER)
            snapshot = api.update(snapshot)
        try:
            pv = resolve_bound_volume(api, key.namespace,
                                      snapshot.spec.pvc_name)
        except (CsiError, NotFoundError) as exc:
            if snapshot.status.error != str(exc):
                snapshot.status.error = str(exc)
                api.update(snapshot)
            return Requeue(after=0.100)
        driver = self.cluster.csi_driver(pv.spec.csi.driver)
        provisioned = yield from driver.create_snapshot(
            name=f"snap-{snapshot.meta.uid}",
            source_volume_handle=pv.spec.csi.volume_handle)
        current = api.try_get(VolumeSnapshot, key.name, key.namespace)
        if current is None:
            return None
        current.status.ready = True
        current.status.snapshot_handle = provisioned.snapshot_handle
        current.status.error = ""
        api.update(current)
        return None

    def _delete_array_snapshot(self, api: ApiServer,
                               snapshot: VolumeSnapshot,
                               ) -> Generator[object, object, None]:
        if SNAPSHOT_PROTECTION_FINALIZER not in snapshot.meta.finalizers:
            return
        handle = snapshot.status.snapshot_handle
        if handle:
            from repro.csi.spec import parse_snapshot_handle
            from repro.errors import SnapshotError
            serial, _snapshot_id = parse_snapshot_handle(handle)
            for driver_name in ("hspc.hitachi.com",):
                if not self.cluster.has_csi_driver(driver_name):
                    continue
                driver = self.cluster.csi_driver(driver_name)
                if driver.array.serial != serial:
                    continue
                try:
                    yield from driver.delete_snapshot(handle)
                except SnapshotError:
                    pass  # already gone: deletion is idempotent
        api.remove_finalizer(VolumeSnapshot, snapshot.meta.name,
                             snapshot.meta.namespace,
                             SNAPSHOT_PROTECTION_FINALIZER)


class GroupSnapshotReconciler(Reconciler):
    """Forward-looking alpha controller for ``VolumeGroupSnapshot``.

    NOT installed by default — the paper's plugin lacks this support and
    the demo performs snapshot groups directly on the array.  Enable it
    (plus a driver with ``enable_group_snapshots=True``) to reproduce
    the future state the paper anticipates.
    """

    kind: ClassVar[Type[VolumeGroupSnapshot]] = VolumeGroupSnapshot

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster

    def reconcile(self, api: ApiServer, key: ObjectKey,
                  ) -> Generator[object, object, ReconcileResult]:
        group = api.try_get(VolumeGroupSnapshot, key.name, key.namespace)
        if group is None or group.meta.deleting or group.status.ready:
            return None
        pvcs = api.list(PersistentVolumeClaim, namespace=key.namespace,
                        label_selector=group.spec.selector)
        if not pvcs:
            if group.status.error != "selector matches no PVCs":
                group.status.error = "selector matches no PVCs"
                api.update(group)
            return Requeue(after=0.100)
        handles: List[str] = []
        driver_name = ""
        for pvc in pvcs:
            try:
                pv = resolve_bound_volume(api, key.namespace,
                                          pvc.meta.name)
            except (CsiError, NotFoundError):
                return Requeue(after=0.100)
            handles.append(pv.spec.csi.volume_handle)
            driver_name = pv.spec.csi.driver
        driver = self.cluster.csi_driver(driver_name)
        if not driver.supports_group_snapshots:
            message = (
                "driver does not support group snapshots (alpha CSI "
                "feature; operate the storage array directly, see §II)")
            if group.status.error != message:
                group.status.error = message
                api.update(group)
            return None
        provisioned = yield from driver.create_snapshot_group(
            name=f"vgs-{group.meta.uid}", source_volume_handles=handles)
        current = api.try_get(VolumeGroupSnapshot, key.name, key.namespace)
        if current is None:
            return None
        current.status.ready = True
        current.status.group_handle = provisioned.group_handle
        current.status.snapshot_handles = {
            pvc.meta.name: provisioned.member_handles[handle]
            for pvc, handle in zip(pvcs, handles)}
        current.status.error = ""
        api.update(current)
        return None


def install_storage_plugin(cluster: "Cluster", driver: HspcDriver,
                           enable_group_snapshots: bool = False) -> None:
    """Install the Storage Plug-in for Containers on a cluster.

    Registers the CSI driver plus the provisioner and snapshotter
    controllers; optionally the alpha group-snapshot controller.
    """
    cluster.register_csi_driver(driver)
    cluster.install(ProvisionerReconciler(cluster),
                    name=f"{cluster.name}.csi-provisioner")
    cluster.install(SnapshotReconciler(cluster),
                    name=f"{cluster.name}.csi-snapshotter")
    if enable_group_snapshots:
        cluster.install(GroupSnapshotReconciler(cluster),
                        name=f"{cluster.name}.csi-group-snapshotter")
