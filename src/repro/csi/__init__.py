"""CSI driver and vendor storage plugins (§II, §III-B2).

* :class:`CsiDriver`, :class:`HspcDriver` — the CSI-shaped driver over
  the simulated array;
* :func:`install_storage_plugin` — provisioner + snapshotter (+ the
  optional alpha group-snapshot controller);
* :func:`install_replication_plugin`,
  :class:`ReplicationPluginContext` — the replication plugin reconciling
  :class:`ConsistencyGroupReplication` / :class:`VolumeReplication`
  custom resources into array commands.
"""

from repro.csi.crds import (REPLICATION_FINALIZER, STATE_CONFIGURING,
                            STATE_COPYING, STATE_PAIRED, STATE_SUSPENDED,
                            ConsistencyGroupReplication, VolumeReplication)
from repro.csi.driver import HspcDriver
from repro.csi.rpc import CsiRpcInjector, RpcChannel
from repro.csi.replication_plugin import (SECONDARY_PV_LABEL,
                                          ReplicationPluginContext,
                                          ReplicationReconciler,
                                          VolumeReplicationReconciler,
                                          install_replication_plugin)
from repro.csi.spec import (CsiDriver, ProvisionedSnapshot,
                            ProvisionedSnapshotGroup, ProvisionedVolume,
                            parse_snapshot_handle, snapshot_handle)
from repro.csi.storage_plugin import (GroupSnapshotReconciler,
                                      ProvisionerReconciler,
                                      SnapshotReconciler,
                                      install_storage_plugin,
                                      resolve_bound_volume)

__all__ = [
    "ConsistencyGroupReplication",
    "CsiDriver",
    "CsiRpcInjector",
    "GroupSnapshotReconciler",
    "HspcDriver",
    "ProvisionedSnapshot",
    "ProvisionedSnapshotGroup",
    "ProvisionedVolume",
    "ProvisionerReconciler",
    "REPLICATION_FINALIZER",
    "ReplicationPluginContext",
    "ReplicationReconciler",
    "RpcChannel",
    "SECONDARY_PV_LABEL",
    "STATE_CONFIGURING",
    "STATE_COPYING",
    "STATE_PAIRED",
    "STATE_SUSPENDED",
    "SnapshotReconciler",
    "VolumeReplication",
    "VolumeReplicationReconciler",
    "install_replication_plugin",
    "install_storage_plugin",
    "parse_snapshot_handle",
    "resolve_bound_volume",
    "snapshot_handle",
]
