"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``     — run the scripted three-step demonstration (Figs 2-6)
  and print its summary (optionally the console logs);
* ``collapse`` — sweep disaster instants and show recoverability with
  vs without consistency groups (the §I claim);
* ``modes``    — print the no-backup / SDC / ADC latency table (E1's
  shape) for one RTT;
* ``metrics``  — run a scenario and print its telemetry registry
  (Prometheus text or JSON);
* ``trace``    — run a scenario and print the span-stage breakdown and
  the span-derived replication-lag (RPO) report; ``--chrome out.json``
  also exports the spans as a Chrome/Perfetto trace-event file;
* ``chaos``    — run seeded fault-injection campaigns against a
  protected business process and verify the robustness invariants
  (exit 1 on any violation); ``--seeds N --jobs M`` shards consecutive
  seeds across worker processes with a deterministic seed-order merge;
  failing campaigns print their auto-generated postmortem;
* ``slo``      — run the canonical deterministic incident scenario and
  print the SLO rule table plus every alert transition;
* ``incident`` — run the same scenario and print its postmortem
  (markdown, or byte-reproducible JSON with ``--json``);
* ``perf``     — run the hot-path microbenchmark suite (``--jobs``
  shards the benchmarks), write ``BENCH_PERF.json``, and optionally
  gate against a committed baseline (exit 1 on regression, with a
  per-benchmark delta table naming the offender);
* ``report``   — regenerate every EXPERIMENTS.md table.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.scenarios import run_demo
    environment = run_demo(seed=args.seed)
    result = environment.result
    if args.screens:
        print("--- main-site console ---")
        print(result.screens["main"])
        print("--- backup-site console ---")
        print(result.screens["backup"])
        print()
    print(result.summary())
    return 0


def _cmd_collapse(args: argparse.Namespace) -> int:
    from repro.bench import run_e2_collapse
    table, facts = run_e2_collapse(
        seeds=tuple(range(args.seed, args.seed + args.disasters)),
        load_time=0.35)
    print(table.render())
    return 0


def _cmd_modes(args: argparse.Namespace) -> int:
    from repro.apps import WorkloadConfig, run_order_workload
    from repro.bench import (MODE_ADC_CG, MODE_NONE, MODE_SDC,
                             build_business_system)
    print(f"{'mode':10} {'orders/s':>10} {'p50(ms)':>9} {'p99(ms)':>9}")
    for mode in (MODE_NONE, MODE_SDC, MODE_ADC_CG):
        experiment = build_business_system(
            seed=args.seed, mode=mode,
            link_latency=args.rtt_ms / 2 / 1e3)
        result = run_order_workload(
            experiment.sim, experiment.business.app,
            WorkloadConfig(client_count=4, duration=1.0))
        summary = result.latency_summary().as_millis()
        print(f"{mode:10} {result.throughput:10.1f} "
              f"{summary.p50:9.2f} {summary.p99:9.2f}")
    return 0


def _run_scenario(args: argparse.Namespace):
    """Run the scenario named by ``args.scenario``; returns its Simulator."""
    if args.probe_interval <= 0:
        raise SystemExit("repro: --probe-interval must be > 0 "
                         f"(got {args.probe_interval})")
    if args.scenario == "demo":
        from repro.scenarios import run_demo
        environment = run_demo(seed=args.seed,
                               probe_interval=args.probe_interval)
        return environment.sim
    raise SystemExit(f"unknown scenario: {args.scenario!r}")


def _cmd_metrics(args: argparse.Namespace) -> int:
    sim = _run_scenario(args)
    print(sim.telemetry.registry.render(format=args.format))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.telemetry import (chrome_trace, replication_lag_report,
                                 stage_breakdown)
    sim = _run_scenario(args)
    tracer = sim.telemetry.tracer
    if args.chrome is not None:
        import json
        document = chrome_trace(tracer)
        with open(args.chrome, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
        print(f"[chrome trace: {args.chrome} "
              f"({len(document['traceEvents'])} events)]")
    if args.json:
        print(tracer.render_json())
        return 0
    print(f"{'span':18} {'count':>8} {'mean(ms)':>10} {'max(ms)':>10}")
    for stage in stage_breakdown(tracer):
        print(f"{stage.name:18} {stage.count:8d} "
              f"{stage.mean * 1e3:10.3f} {stage.maximum * 1e3:10.3f}")
    lag = replication_lag_report(tracer)
    print()
    print("replication lag (RPO) from spans:")
    print(f"  host writes applied at backup : {lag.applied}")
    print(f"  host writes not yet applied   : {lag.unapplied}")
    print(f"  worst apply lag               : {lag.worst_lag * 1e3:.3f} ms")
    print(f"  mean apply lag                : {lag.mean_lag * 1e3:.3f} ms")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import run_campaigns
    preset = args.preset or ("soak" if args.soak else args.campaign)
    if args.seeds < 1:
        raise SystemExit(f"repro: --seeds must be >= 1 (got {args.seeds})")
    if args.transfer_window < 1:
        raise SystemExit("repro: --transfer-window must be >= 1 "
                         f"(got {args.transfer_window})")
    if args.apply_lanes < 1:
        raise SystemExit("repro: --apply-lanes must be >= 1 "
                         f"(got {args.apply_lanes})")
    seeds = list(range(args.seed, args.seed + args.seeds))
    adc_overrides = {}
    if args.transfer_window > 1:
        adc_overrides["transfer_window"] = args.transfer_window
    if args.apply_lanes > 1:
        adc_overrides["apply_lanes"] = args.apply_lanes
    if args.reduction:
        from repro.storage import ReductionConfig
        adc_overrides["reduction"] = ReductionConfig(enabled=True)
    adc_overrides = adc_overrides or None
    reports = run_campaigns(seeds, preset=preset,
                            verify_failover=not args.no_failover,
                            jobs=args.jobs,
                            adc_overrides=adc_overrides)
    for index, report in enumerate(reports):
        if index:
            print()
        print(report.render())
        if not report.passed and report.postmortem is not None:
            print()
            print(report.postmortem.to_markdown())
    if len(reports) > 1:
        failed = [r.seed for r in reports if not r.passed]
        print()
        print(f"campaigns: {len(reports) - len(failed)}/{len(reports)} "
              f"passed" + (f" (failed seeds: {failed})" if failed else ""))
    return 0 if all(r.passed for r in reports) else 1


def _cmd_slo(args: argparse.Namespace) -> int:
    from repro.chaos import run_incident
    run = run_incident(seed=args.seed)
    print(run.engine.slo.render())
    print()
    print(f"incident campaign seed={args.seed}: "
          f"{'PASS' if run.report.passed else 'FAIL'} "
          f"({run.report.orders_completed} orders completed through "
          f"the incident)")
    return 0 if run.report.passed else 1


def _cmd_incident(args: argparse.Namespace) -> int:
    from repro.chaos import run_incident
    run = run_incident(seed=args.seed, dump_dir=args.dump_dir)
    if args.json:
        print(run.incident.to_json())
    else:
        print(run.incident.to_markdown())
    return 0 if run.report.passed else 1


def _cmd_perf(args: argparse.Namespace) -> int:
    import os
    import pathlib

    from repro.bench.perf import (compare_perf, load_perf_baseline,
                                  perf_delta_lines, run_perf,
                                  write_perf_json)
    table, facts = run_perf(quick=args.quick, jobs=args.jobs)
    print(table.render())
    if args.output is not None:
        output = pathlib.Path(args.output)
    else:
        bench_dir = pathlib.Path(os.environ.get("REPRO_BENCH_DIR", "."))
        bench_dir.mkdir(parents=True, exist_ok=True)
        output = bench_dir / "BENCH_PERF.json"
    write_perf_json(output, table, facts)
    print(f"[bench json: {output}]")
    if args.check is None:
        return 0
    try:
        baseline = load_perf_baseline(args.check)
    except (OSError, KeyError, ValueError) as exc:
        raise SystemExit(
            f"repro: cannot load perf baseline {args.check!r}: {exc}")
    try:
        problems = compare_perf(facts, baseline,
                                max_regression=args.max_regression)
    except ValueError as exc:
        raise SystemExit(f"repro: {exc}")
    print()
    print(f"per-benchmark delta vs {args.check} (+ is better):")
    for line in perf_delta_lines(facts, baseline):
        print(f"  {line}")
    if problems:
        print()
        print(f"perf regression vs {args.check}:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"perf gate passed vs {args.check} "
          f"(tolerance {args.max_regression:.0%})")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.bench.report import main as report_main
    report_main(markdown=not args.text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Reproduction of 'Data Backup System with No Impact "
                     "on Business Processing' (ICDE 2025) on simulated "
                     "substrates"))
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run the Figs 2-6 demonstration")
    demo.add_argument("--seed", type=int, default=2025)
    demo.add_argument("--screens", action="store_true",
                      help="also print both console operation logs")
    demo.set_defaults(func=_cmd_demo)

    collapse = sub.add_parser(
        "collapse", help="ADC with vs without consistency groups")
    collapse.add_argument("--seed", type=int, default=1000)
    collapse.add_argument("--disasters", type=int, default=6)
    collapse.set_defaults(func=_cmd_collapse)

    modes = sub.add_parser(
        "modes", help="latency per replication mode at one RTT")
    modes.add_argument("--seed", type=int, default=11)
    modes.add_argument("--rtt-ms", type=float, default=10.0)
    modes.set_defaults(func=_cmd_modes)

    def add_scenario_args(command: argparse.ArgumentParser) -> None:
        command.add_argument("--scenario", choices=["demo"],
                             default="demo",
                             help="which scenario to run and observe")
        command.add_argument("--seed", type=int, default=2025)
        command.add_argument("--probe-interval", type=float, default=0.02,
                             help="telemetry probe sampling interval in "
                                  "simulated seconds")

    metrics = sub.add_parser(
        "metrics", help="run a scenario and print its metrics registry")
    add_scenario_args(metrics)
    metrics.add_argument("--format", choices=["prom", "json"],
                         default="prom")
    metrics.set_defaults(func=_cmd_metrics)

    trace = sub.add_parser(
        "trace", help="run a scenario and print its span statistics")
    add_scenario_args(trace)
    trace.add_argument("--json", action="store_true",
                       help="dump the raw finished spans as JSON")
    trace.add_argument("--chrome", default=None, metavar="PATH",
                       help="also export the spans as a Chrome/Perfetto "
                            "trace-event JSON file")
    trace.set_defaults(func=_cmd_trace)

    chaos = sub.add_parser(
        "chaos", help="run a seeded fault-injection campaign and "
                      "verify the robustness invariants")
    chaos.add_argument("--campaign", choices=["quick", "soak", "control"],
                       default="quick",
                       help="fault-storm preset (quick = CI-sized, "
                            "soak = longer regression hunt, control = "
                            "control-plane storm)")
    chaos.add_argument("--preset", choices=["quick", "soak", "control"],
                       default=None,
                       help="alias for --campaign (wins when both are "
                            "given)")
    chaos.add_argument("--seed", type=int, default=7,
                       help="master seed; the same seed replays the "
                            "exact same campaign")
    chaos.add_argument("--soak", action="store_true",
                       help="shorthand for --campaign soak")
    chaos.add_argument("--seeds", type=int, default=1, metavar="N",
                       help="run N campaigns at consecutive seeds "
                            "starting from --seed (default 1)")
    chaos.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="shard the seeds across N worker processes "
                            "(0 = one per CPU); reports merge in seed "
                            "order, identical to --jobs 1")
    chaos.add_argument("--no-failover", action="store_true",
                       help="skip the final fail-and-recover "
                            "consistency verification")
    chaos.add_argument("--transfer-window", type=int, default=1,
                       metavar="N",
                       help="run the campaigns with N transfer batches "
                            "in flight (pipelined inter-site transfer; "
                            "default 1 = stop-and-wait)")
    chaos.add_argument("--reduction", action="store_true",
                       help="run the campaigns with the wire "
                            "data-reduction engine enabled (fingerprint "
                            "dedup + inline compression on the "
                            "inter-site link)")
    chaos.add_argument("--apply-lanes", type=int, default=1, metavar="N",
                       help="run the campaigns with N dependency-aware "
                            "restore apply lanes (consistency-cut "
                            "barrier commit; default 1 = the serial "
                            "applier)")
    chaos.set_defaults(func=_cmd_chaos)

    slo = sub.add_parser(
        "slo", help="run the canonical incident scenario and print the "
                    "SLO rule table and alert transitions")
    slo.add_argument("--seed", type=int, default=7,
                     help="master seed; the same seed replays the exact "
                          "same incident")
    slo.set_defaults(func=_cmd_slo)

    incident = sub.add_parser(
        "incident", help="run the canonical incident scenario and print "
                         "its automated postmortem")
    incident.add_argument("--seed", type=int, default=7,
                          help="master seed; the same seed reproduces "
                               "the postmortem byte-for-byte")
    incident.add_argument("--json", action="store_true",
                          help="machine-readable postmortem instead of "
                               "markdown")
    incident.add_argument("--dump-dir", default=None, metavar="DIR",
                          help="also write every flight-recorder "
                               "snapshot as a JSON file under DIR")
    incident.set_defaults(func=_cmd_incident)

    perf = sub.add_parser(
        "perf", help="run the hot-path microbenchmark suite "
                     "(journal, kernel, restore drain, E1 cell)")
    perf.add_argument("--quick", action="store_true",
                      help="CI-sized workloads instead of the full sizes")
    perf.add_argument("--output", default=None,
                      help="where to write BENCH_PERF.json (default: "
                           "$REPRO_BENCH_DIR or the current directory)")
    perf.add_argument("--check", default=None, metavar="BASELINE",
                      help="gate against this committed BENCH_PERF.json; "
                           "exit 1 when any microbench regresses beyond "
                           "the tolerance")
    perf.add_argument("--max-regression", type=float, default=0.30,
                      help="allowed fractional regression per metric "
                           "(default 0.30)")
    perf.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="shard the benchmarks across N worker "
                           "processes (0 = one per CPU); same table "
                           "structure as --jobs 1, but concurrent "
                           "benchmarks contend for cores — do not "
                           "record baselines with --jobs > 1")
    perf.set_defaults(func=_cmd_perf)

    report = sub.add_parser(
        "report", help="regenerate every EXPERIMENTS.md table")
    report.add_argument("--text", action="store_true",
                        help="plain text instead of markdown")
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
