"""Crash-restartable runbooks for failover and failback.

A disaster-recovery procedure is itself a process that can die: the
orchestrator driving a failover may be OOM-killed, its node may reboot,
its operator may be restarted mid-procedure.  The paper's no-impact
guarantee is worthless if a half-run failover leaves the backup site in
a state no second attempt can finish from.  This module provides the
discipline that makes the procedures restartable:

* every step is journaled to a :class:`RunbookState` checkpoint in a
  :class:`RunbookJournal` (the simulated durable store — it survives the
  orchestrator, like a CR status or a config-map would);
* a **checkpointed** step runs exactly once across all incarnations:
  a resumed runbook returns the persisted payload instead of re-driving
  the side effect.  Non-idempotent actions — journal drain, secondary
  promotion, volume format, pair creation — are checkpointed, so a
  crash at any boundary never double-drives them;
* a **volatile** step re-runs on resume: read-only recompute (database
  recovery, invariant checks, measurements) whose repetition is
  harmless and deterministic.  Volatile steps may only follow the last
  checkpointed step of a procedure;
* step wall-clock accounting is persisted with each checkpoint, so a
  resumed run reports the *same* per-step durations as an uninterrupted
  one — the resumed-failover equivalence invariant.

The crash-injection hook ``crash_after`` raises
:class:`~repro.errors.RunbookInterrupted` immediately after the named
step's checkpoint is saved — the exact worst case for every boundary.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import RunbookError, RunbookInterrupted
from repro.simulation.kernel import Simulator


@dataclass
class StepRecord:
    """One completed step's checkpoint."""

    name: str
    seq: int
    started_at: float
    completed_at: float
    payload: object = None
    #: incarnation (0-based) that executed the step
    incarnation: int = 0

    @property
    def duration(self) -> float:
        return self.completed_at - self.started_at


@dataclass
class RunbookState:
    """The persisted progress of one runbook execution."""

    name: str
    started_at: float
    incarnation: int = 0
    steps: Dict[str, StepRecord] = field(default_factory=dict)

    def completed(self, step: str) -> Optional[StepRecord]:
        return self.steps.get(step)

    def step_durations(self) -> Dict[str, float]:
        """step name -> wall-clock duration, in execution order."""
        ordered = sorted(self.steps.values(), key=lambda r: r.seq)
        return {record.name: record.duration for record in ordered}

    def completed_steps(self) -> List[str]:
        ordered = sorted(self.steps.values(), key=lambda r: r.seq)
        return [record.name for record in ordered]


class RunbookJournal:
    """The durable store runbook checkpoints persist to.

    Lives *outside* the manager that writes to it (the test or chaos
    engine holds it), so a crashed manager's successor can load the
    state back.  Payloads are deep-copied on the way in and out —
    holding a returned payload never aliases journal state, exactly
    like the API server's object semantics.
    """

    def __init__(self) -> None:
        self._states: Dict[str, RunbookState] = {}

    def load(self, name: str) -> Optional[RunbookState]:
        state = self._states.get(name)
        return copy.deepcopy(state) if state is not None else None

    def save(self, state: RunbookState) -> None:
        self._states[state.name] = copy.deepcopy(state)

    def discard(self, name: str) -> None:
        self._states.pop(name, None)

    def __contains__(self, name: str) -> bool:
        return name in self._states


class Runbook:
    """Step executor over a journaled :class:`RunbookState`.

    Construct one per manager incarnation; if the journal already holds
    state for ``name``, the runbook resumes from it.
    """

    def __init__(self, sim: Simulator, name: str,
                 journal: Optional[RunbookJournal] = None,
                 crash_after: Optional[str] = None) -> None:
        self.sim = sim
        self.name = name
        self.journal = journal if journal is not None else RunbookJournal()
        self.crash_after = crash_after
        prior = self.journal.load(name)
        if prior is not None:
            self.state = prior
            self.state.incarnation += 1
            self.resumed = True
            sim.telemetry.registry.counter(
                "repro_runbook_resumes_total",
                help="Runbook executions resumed from a checkpoint",
                runbook=name).increment()
            sim.telemetry.recorder.record(
                "runbook", "resume", runbook=name,
                incarnation=self.state.incarnation,
                completed=len(self.state.steps))
        else:
            self.state = RunbookState(name=name, started_at=sim.now)
            self.resumed = False
        self.journal.save(self.state)
        self._seq = len(self.state.steps)

    @property
    def started_at(self) -> float:
        """Start time of the *first* incarnation."""
        return self.state.started_at

    def step(self, name: str, fn: Callable[[], object], volatile: bool = False):
        """Run one step exactly once across incarnations (generator).

        ``fn`` is either a generator function (the step consumes
        simulated time) or a plain callable.  A checkpointed step found
        in the journal is skipped and its persisted payload returned; a
        ``volatile`` step re-runs on resume (it must be read-only).
        After checkpointing, the ``crash_after`` hook fires.
        """
        record = self.state.completed(name)
        if record is not None and not volatile:
            self.sim.telemetry.registry.counter(
                "repro_runbook_steps_skipped_total",
                help="Checkpointed steps skipped on runbook resume",
                runbook=self.name).increment()
            self.sim.telemetry.recorder.record(
                "runbook", "step_skipped", runbook=self.name, step=name)
            return record.payload
        started = self.sim.now
        outcome = fn()
        if hasattr(outcome, "send"):  # generator step: takes sim time
            result = yield from outcome
        else:
            result = outcome
        seq = record.seq if record is not None else self._seq
        if record is None:
            self._seq += 1
        # volatile results may reference live objects (databases, the
        # app); they re-run on resume, so only checkpointed payloads —
        # plain data by contract — are persisted
        self.state.steps[name] = StepRecord(
            name=name, seq=seq, started_at=started,
            completed_at=self.sim.now,
            payload=None if volatile else result,
            incarnation=self.state.incarnation)
        try:
            self.journal.save(self.state)
        except Exception as exc:
            raise RunbookError(
                f"runbook {self.name!r}: step {name!r} completed but its "
                f"checkpoint could not be persisted: {exc}") from exc
        self.sim.telemetry.registry.counter(
            "repro_runbook_steps_total",
            help="Runbook steps executed (not skipped)",
            runbook=self.name, step=name).increment()
        self.sim.telemetry.recorder.record(
            "runbook", "step", runbook=self.name, step=name,
            duration=round(self.sim.now - started, 9))
        if self.crash_after == name:
            self.sim.telemetry.recorder.record(
                "runbook", "crash", runbook=self.name, step=name)
            raise RunbookInterrupted(self.name, name)
        return result

    def step_durations(self) -> Dict[str, float]:
        """Persisted per-step wall-clock accounting (execution order)."""
        return self.state.step_durations()

    def finish(self) -> None:
        """Mark the runbook done and drop its journal entry."""
        self.journal.discard(self.name)
