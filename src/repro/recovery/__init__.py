"""Recovery layer: consistency checking, failover, RPO/RTO measurement."""

from repro.recovery.checker import (BusinessCheckReport, CutWitness,
                                    InvariantViolation, StorageCutReport,
                                    check_business_invariants,
                                    check_storage_cut,
                                    image_versions_from_volumes)
from repro.recovery.failback import (FailbackManager, FailbackReport,
                                     FailbackResult)
from repro.recovery.failover import (FailoverManager, FailoverReport,
                                     PromotedBusiness, fail_and_recover)
from repro.recovery.runbook import (Runbook, RunbookJournal, RunbookState,
                                    StepRecord)
from repro.recovery.schedule import SnapshotGeneration, SnapshotScheduler

__all__ = [
    "FailbackManager",
    "FailbackReport",
    "FailbackResult",
    "BusinessCheckReport",
    "CutWitness",
    "FailoverManager",
    "FailoverReport",
    "InvariantViolation",
    "PromotedBusiness",
    "Runbook",
    "RunbookJournal",
    "RunbookState",
    "SnapshotGeneration",
    "StepRecord",
    "SnapshotScheduler",
    "StorageCutReport",
    "check_business_invariants",
    "check_storage_cut",
    "fail_and_recover",
    "image_versions_from_volumes",
]
