"""Consistency checkers: is a backup image usable?

Two levels, matching the paper's argument structure (§I):

* **Storage level** — :func:`check_storage_cut`: the backup image of a
  volume group is *consistent* iff the set of acknowledged writes it
  contains is downward-closed under the main array's ack order
  (restricted to the group).  Equivalently: it is a prefix — possibly
  plus in-flight never-acked writes, which are harmless because no
  application was told they happened.  The consistency group makes this
  hold by construction; independent journals break it.

* **Business level** — :func:`check_business_invariants`: after database
  recovery and 2PC resolution, the e-commerce invariants must hold:
  every order has its stock movement and vice versa, quantities match,
  and stock is conserved against the initial inventory.  A storage-level
  prefix violation surfaces here as orders without movements *and*
  movements without orders simultaneously — the "collapsed" backup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.apps.ecommerce import BusinessState, CatalogItem
from repro.storage.history import WriteHistory, WriteRecord


@dataclass(frozen=True)
class CutWitness:
    """Evidence of a non-prefix cut: an applied write acked *after* a
    missing write."""

    missing: WriteRecord
    applied: WriteRecord

    def __str__(self) -> str:
        return (f"write {self.applied} is present although earlier "
                f"{self.missing} is absent")


@dataclass
class StorageCutReport:
    """Result of the storage-level prefix check."""

    consistent: bool
    #: acked writes present in the image
    applied_count: int
    #: acked writes absent from the image (the cut's tail = RPO source)
    missing_count: int
    #: writes present at the backup but never acked (in-flight; harmless)
    unacked_count: int
    #: the first few violations, for diagnostics
    witnesses: List[CutWitness] = field(default_factory=list)
    #: ack seq of the last contiguously-applied record (-1 if none)
    prefix_seq: int = -1

    def __str__(self) -> str:
        verdict = "CONSISTENT" if self.consistent else "COLLAPSED"
        return (f"{verdict}: applied={self.applied_count} "
                f"missing={self.missing_count} "
                f"unacked={self.unacked_count} prefix={self.prefix_seq}")


def check_storage_cut(history: WriteHistory,
                      image_versions: Mapping[int, Mapping[int, int]],
                      max_witnesses: int = 5) -> StorageCutReport:
    """Check a backup image of a volume group against the ack history.

    ``image_versions`` maps *primary* volume id → (block → version) of
    the corresponding backup image (secondary volume block map, or a
    snapshot's frozen version map, re-keyed by primary id).

    A history record is *applied* iff the image's version for its block
    is >= the record's version (restore applies versions monotonically,
    so this is exact).
    """
    group_history = history.restricted(image_versions.keys())
    applied_count = 0
    missing_count = 0
    prefix_seq = -1
    in_prefix = True
    first_missing: Optional[WriteRecord] = None
    witnesses: List[CutWitness] = []
    acked_versions: Dict[Tuple[int, int], int] = {}
    for record in group_history:
        key = (record.volume_id, record.block)
        acked_versions[key] = max(acked_versions.get(key, 0),
                                  record.version)
        image_version = image_versions[record.volume_id].get(
            record.block, 0)
        applied = image_version >= record.version
        if applied:
            applied_count += 1
            if in_prefix:
                prefix_seq = record.seq
            elif first_missing is not None and \
                    len(witnesses) < max_witnesses:
                witnesses.append(CutWitness(missing=first_missing,
                                            applied=record))
        else:
            missing_count += 1
            if in_prefix:
                in_prefix = False
                first_missing = record
    unacked_count = 0
    for volume_id, blocks in image_versions.items():
        for block, version in blocks.items():
            if version > acked_versions.get((volume_id, block), 0):
                unacked_count += 1
    return StorageCutReport(
        consistent=not witnesses, applied_count=applied_count,
        missing_count=missing_count, unacked_count=unacked_count,
        witnesses=witnesses, prefix_seq=prefix_seq)


def image_versions_from_volumes(pair_map: Mapping[int, object],
                                ) -> Dict[int, Dict[int, int]]:
    """Build the checker input from secondary volume objects.

    ``pair_map`` maps primary volume id → secondary
    :class:`~repro.storage.volume.Volume`.
    """
    return {
        pvol_id: {block: value.version
                  for block, value in svol.block_map().items()}
        for pvol_id, svol in pair_map.items()}


# ---------------------------------------------------------------------------
# Business level
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class InvariantViolation:
    """One broken business invariant."""

    kind: str
    detail: str

    def __str__(self) -> str:
        return f"{self.kind}: {self.detail}"


@dataclass
class BusinessCheckReport:
    """Result of the business-level invariant check."""

    consistent: bool
    order_count: int
    movement_count: int
    violations: List[InvariantViolation] = field(default_factory=list)

    @property
    def collapsed(self) -> bool:
        """True when the image shows *mutual* missing transactions —
        the §I collapse signature that no recovery procedure can fix."""
        kinds = {violation.kind for violation in self.violations}
        return "order-without-movement" in kinds and \
            "movement-without-order" in kinds

    def __str__(self) -> str:
        verdict = "CONSISTENT" if self.consistent else (
            "COLLAPSED" if self.collapsed else "INCONSISTENT")
        return (f"{verdict}: orders={self.order_count} "
                f"movements={self.movement_count} "
                f"violations={len(self.violations)}")


def check_business_invariants(business: BusinessState,
                              catalog: Sequence[CatalogItem],
                              ) -> BusinessCheckReport:
    """Check the e-commerce invariants over recovered business state."""
    violations: List[InvariantViolation] = []
    order_gtids = set(business.orders)
    movement_gtids = set(business.movements)
    for gtid in sorted(order_gtids - movement_gtids):
        violations.append(InvariantViolation(
            kind="order-without-movement",
            detail=f"order {gtid} has no stock movement"))
    for gtid in sorted(movement_gtids - order_gtids):
        violations.append(InvariantViolation(
            kind="movement-without-order",
            detail=f"stock movement {gtid} has no order"))
    for gtid in sorted(order_gtids & movement_gtids):
        order_lines = business.orders[gtid]["lines"]
        movement_lines = business.movements[gtid]["lines"]
        if order_lines != movement_lines:
            violations.append(InvariantViolation(
                kind="order-movement-mismatch",
                detail=(f"{gtid}: order {order_lines} vs movement "
                        f"{movement_lines}")))
    sold: Dict[str, int] = {}
    for movement in business.movements.values():
        for line in movement["lines"]:
            sold[line["item"]] = sold.get(line["item"], 0) + line["qty"]
    for item in catalog:
        expected = item.initial_qty - sold.get(item.item_id, 0)
        actual = business.quantities.get(item.item_id)
        if actual is None:
            violations.append(InvariantViolation(
                kind="missing-quantity",
                detail=f"{item.item_id}: no quantity record"))
        elif actual != expected:
            violations.append(InvariantViolation(
                kind="stock-not-conserved",
                detail=(f"{item.item_id}: have {actual}, expected "
                        f"{expected} (initial {item.initial_qty}, "
                        f"sold {sold.get(item.item_id, 0)})")))
    return BusinessCheckReport(
        consistent=not violations,
        order_count=len(order_gtids),
        movement_count=len(movement_gtids),
        violations=violations)
