"""Scheduled snapshot generations at the backup site.

The paper's demonstration cuts a single snapshot group on demand; an
operational deployment keeps a *rotation*: a consistent snapshot group
every N seconds, retaining the last K generations, so analytics and
point-in-time restore can pick any recent instant.  This module provides
that as the natural extension of §III-A2's snapshot-group technology —
the cadence/retention knobs the paper leaves to the operator.

Each generation is cut with restore quiesce (so every generation is a
consistent cut of the replicated order) and pruned oldest-first once the
retention limit is exceeded; pruning releases the copy-on-write store.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence

from repro.errors import SnapshotError
from repro.storage.array import StorageArray
from repro.storage.snapshot import SnapshotGroup


@dataclass(frozen=True)
class SnapshotGeneration:
    """One retained generation of the rotation."""

    index: int
    group_id: str
    created_at: float
    group: SnapshotGroup


class SnapshotScheduler:
    """Cuts and rotates consistent snapshot groups of a volume set."""

    def __init__(self, array: StorageArray, volume_ids: Sequence[int],
                 interval: float, retain: int,
                 name: str = "schedule") -> None:
        if interval <= 0:
            raise SnapshotError(f"interval must be > 0: {interval}")
        if retain < 1:
            raise SnapshotError(f"retain must be >= 1: {retain}")
        if not volume_ids:
            raise SnapshotError("scheduler needs at least one volume")
        self.array = array
        self.volume_ids = list(volume_ids)
        self.interval = interval
        self.retain = retain
        self.name = name
        self._generations: List[SnapshotGeneration] = []
        self._counter = itertools.count(1)
        self._running = False
        self._process = None
        #: generations ever pruned (observability)
        self.pruned_count = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Spawn the rotation loop (idempotent)."""
        if self._running:
            return
        self._running = True
        self._process = self.array.sim.spawn(
            self._loop(), name=f"snapshot-scheduler-{self.name}")

    def stop(self) -> None:
        """Stop cutting new generations (retained ones stay)."""
        self._running = False

    def _loop(self) -> Generator[object, object, None]:
        while self._running:
            yield self.array.sim.timeout(self.interval)
            if not self._running:
                return
            yield from self.take_generation()

    # -- operations ---------------------------------------------------------

    def take_generation(self,
                        ) -> Generator[object, object, SnapshotGeneration]:
        """Cut one generation now and prune beyond the retention limit.

        Process generator (the group cut quiesces restore briefly).
        """
        index = next(self._counter)
        group_id = f"{self.name}-gen-{index}"
        group = yield from self.array.create_snapshot_group(
            group_id, self.volume_ids, quiesce=True)
        generation = SnapshotGeneration(
            index=index, group_id=group_id,
            created_at=self.array.sim.now, group=group)
        self._generations.append(generation)
        while len(self._generations) > self.retain:
            oldest = self._generations.pop(0)
            self.array.delete_snapshot_group(oldest.group_id)
            self.pruned_count += 1
        return generation

    # -- access ------------------------------------------------------------

    @property
    def generations(self) -> List[SnapshotGeneration]:
        """Retained generations, oldest first."""
        return list(self._generations)

    def latest(self) -> SnapshotGeneration:
        """The newest retained generation."""
        if not self._generations:
            raise SnapshotError(f"{self.name}: no generations yet")
        return self._generations[-1]

    def at_or_before(self, time: float) -> Optional[SnapshotGeneration]:
        """The newest generation cut at or before ``time`` (point-in-time
        selection for restore/analytics), or None."""
        candidates = [g for g in self._generations
                      if g.created_at <= time]
        return candidates[-1] if candidates else None

    def __repr__(self) -> str:
        return (f"<SnapshotScheduler {self.name!r} "
                f"every={self.interval:g}s retain={self.retain} "
                f"kept={len(self._generations)}>")
