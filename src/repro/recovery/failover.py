"""Failover: promoting the backup site after a main-site disaster.

:class:`FailoverManager` performs the recovery the paper's DR design
enables (§I, §III-A1), using **only backup-site state** — the backup
cluster's API objects and the backup array — because the main site is
gone:

1. discover the business process's secondary volumes through the
   backup-site PVs the replication plugin registered;
2. stop the restore pipelines and **drain** the backup journals (data
   already at the backup site is never thrown away);
3. promote the secondary volumes (SSWS — host-writable);
4. recover the databases: coordinator first, then participants with the
   coordinator's 2PC decisions (presumed abort);
5. verify the business invariants; a collapsed image raises
   :class:`~repro.errors.CollapsedBackupError` — the §I failure this
   reproduction exists to demonstrate;
6. reopen the databases and the application at the backup site.

The returned :class:`FailoverReport` carries RTO (simulated seconds from
disaster to a serving application) and RPO measurements (storage writes
and committed orders lost).  RPO is measured against ground truth the
*experimenter* holds (the main array's history, the main app's committed
gtids) — the failover itself never touches main-site state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence, Set

from repro.errors import CollapsedBackupError, FailoverError
from repro.apps.analytics import DatabaseImage, recover_business_images
from repro.apps.ecommerce import (CatalogItem, EcommerceApp,
                                  decode_business_state)
from repro.apps.minidb.device import ArrayBlockDevice
from repro.apps.minidb.recovery import reopen_database
from repro.csi.replication_plugin import SECONDARY_PV_LABEL
from repro.platform.resources import PersistentVolume
from repro.recovery.checker import (BusinessCheckReport, StorageCutReport,
                                    check_business_invariants,
                                    check_storage_cut,
                                    image_versions_from_volumes)
from repro.recovery.runbook import Runbook, RunbookJournal
from repro.scenarios.builders import TwoSiteSystem
from repro.scenarios.business import PVC_LAYOUT, BusinessProcess
from repro.storage.adc import JournalGroup


@dataclass
class FailoverReport:
    """Everything measured during one failover."""

    started_at: float
    completed_at: float = 0.0
    #: journal entries applied during the drain step
    drained_entries: int = 0
    #: storage-level prefix check over the promoted volumes
    storage_report: Optional[StorageCutReport] = None
    #: business-level invariant check after recovery
    business_report: Optional[BusinessCheckReport] = None
    #: acked-but-lost host writes (storage RPO), vs ground truth
    lost_acked_writes: int = -1
    #: age of the newest recovered write at disaster time (RPO seconds);
    #: 0.0 when nothing acked was lost, -1.0 when not measured
    rpo_seconds: float = -1.0
    #: committed orders missing after recovery (business RPO)
    lost_committed_orders: int = -1
    #: gtids of the lost orders
    lost_gtids: List[str] = field(default_factory=list)
    succeeded: bool = False
    failure_reason: str = ""
    #: per-step wall-clock accounting from the runbook checkpoints; a
    #: resumed failover reports the same durations as an uninterrupted
    #: one because completed steps carry their persisted timing
    step_durations: Dict[str, float] = field(default_factory=dict)
    #: True when this report came from a resumed (crashed) runbook
    resumed: bool = False

    @property
    def rto_seconds(self) -> float:
        """Disaster-to-serving time in simulated seconds."""
        return self.completed_at - self.started_at


@dataclass
class PromotedBusiness:
    """The recovered application serving at the backup site."""

    app: EcommerceApp
    report: FailoverReport


class FailoverManager:
    """Drives backup-site promotion for the demonstration's business
    process."""

    def __init__(self, system: TwoSiteSystem,
                 business_namespace: str = "order-processing",
                 journal: Optional[RunbookJournal] = None,
                 crash_after: Optional[str] = None) -> None:
        """``journal`` is the durable checkpoint store; pass the same
        journal to a new manager to resume a crashed failover.
        ``crash_after`` kills the runbook right after the named step's
        checkpoint (test hook for the resume-equivalence invariant)."""
        self.system = system
        self.business_namespace = business_namespace
        self.journal = journal if journal is not None else RunbookJournal()
        self.crash_after = crash_after

    # -- discovery (backup-site state only) --------------------------------

    def discover_secondary_volumes(self) -> Dict[str, int]:
        """pvc name -> backup-array volume id, from backup-site PVs."""
        backup = self.system.backup
        mapping: Dict[str, int] = {}
        for pv in backup.api.list(PersistentVolume):
            if SECONDARY_PV_LABEL not in pv.meta.labels:
                continue
            namespace, _dot, _cr = pv.meta.labels[
                SECONDARY_PV_LABEL].partition(".")
            if namespace != self.business_namespace:
                continue
            pvc_name = pv.meta.labels.get("replication.hitachi.com/pvc")
            if pvc_name:
                mapping[pvc_name] = backup.array.parse_handle(
                    pv.spec.csi.volume_handle)
        return mapping

    def _involved_groups(self, svol_ids: Sequence[int],
                         ) -> List[JournalGroup]:
        groups: List[JournalGroup] = []
        seen: Set[str] = set()
        registry = self.system.backup.array._restore_group_by_svol
        for svol_id in svol_ids:
            group = registry.get(svol_id)
            if group is not None and group.group_id not in seen:
                seen.add(group.group_id)
                groups.append(group)
        return groups

    # -- the failover procedure ------------------------------------------------

    def execute(self, catalog: Sequence[CatalogItem],
                expected_history=None,
                expected_committed_gtids: Optional[Sequence[str]] = None,
                pvol_ids: Optional[Dict[str, int]] = None,
                ) -> Generator[object, object, PromotedBusiness]:
        """Promote the backup site (process generator).

        ``catalog`` is the business catalog (needed for invariant checks
        and to resume the app).  ``expected_history`` /
        ``expected_committed_gtids`` / ``pvol_ids`` are *measurement*
        ground truth (main-array history, main app's committed orders,
        pvc→primary-volume map); recovery itself never reads them.
        Raises :class:`CollapsedBackupError` when the backup image
        admits no consistent recovery.

        The procedure is a crash-restartable runbook: every
        side-effecting step is checkpointed to the manager's journal, so
        a manager that dies mid-failover can be replaced by a new one
        holding the same journal — it resumes after the last completed
        step, never re-driving the drain or the promotion.  Read-only
        steps (measurement, database recovery and its 2PC resolution —
        pure reads of the coordinator image — verification, reopen) are
        volatile: they re-run on resume with identical results.
        """
        sim = self.system.sim
        runbook = Runbook(sim, f"failover/{self.business_namespace}",
                          journal=self.journal,
                          crash_after=self.crash_after)
        report = FailoverReport(started_at=runbook.started_at)
        report.resumed = runbook.resumed
        tracer = sim.telemetry.tracer
        recorder = sim.telemetry.recorder
        span = tracer.start("failover", namespace=self.business_namespace)
        recorder.record("failover", self.business_namespace,
                        step="start", incarnation=runbook.state.incarnation)
        secondary: Dict[str, int] = yield from runbook.step(
            "discover", self.discover_secondary_volumes)
        missing = [pvc for pvc in PVC_LAYOUT if pvc not in secondary]
        if missing:
            raise FailoverError(
                f"backup site has no secondary PVs for {missing}; was "
                "the namespace protected?")
        backup_array = self.system.backup.array
        groups = self._involved_groups(list(secondary.values()))

        # 2. stop restore, drain what already arrived
        def stop_step():
            for group in groups:
                group.stop()
            yield sim.timeout(0.010)  # let in-flight applies finish

        yield from runbook.step("stop", stop_step)

        def drain_step():
            total = 0
            for group in groups:
                drained = yield from group.drain()
                total += drained
            return total

        report.drained_entries = yield from runbook.step("drain",
                                                         drain_step)
        recorder.record("failover", self.business_namespace,
                        step="drained", entries=report.drained_entries)

        # 3. promote
        def promote_step():
            for svol_id in secondary.values():
                backup_array.promote_secondary(svol_id)
            return len(secondary)

        promoted = yield from runbook.step("promote", promote_step)
        recorder.record("failover", self.business_namespace,
                        step="promoted", volumes=promoted)

        # measurement: storage-level cut check + RPO (read-only)
        def measure_step():
            if expected_history is None or pvol_ids is None:
                return
            pair_map = {pvol_ids[pvc]: backup_array.get_volume(svol_id)
                        for pvc, svol_id in secondary.items()}
            image = image_versions_from_volumes(pair_map)
            report.storage_report = check_storage_cut(expected_history,
                                                      image)
            report.lost_acked_writes = \
                report.storage_report.missing_count
            if report.lost_acked_writes == 0:
                report.rpo_seconds = 0.0
            elif report.storage_report.prefix_seq >= 0:
                newest = expected_history.records[
                    report.storage_report.prefix_seq]
                report.rpo_seconds = max(
                    0.0, report.started_at - newest.time)

        yield from runbook.step("measure", measure_step, volatile=True)

        # 4. recover the databases from the promoted volumes
        def device(pvc_name: str) -> ArrayBlockDevice:
            return ArrayBlockDevice(backup_array, secondary[pvc_name])

        bucket_count = self._bucket_count()
        sales_image = DatabaseImage(wal_device=device("sales-wal"),
                                    data_device=device("sales-data"),
                                    bucket_count=bucket_count)
        stock_image = DatabaseImage(wal_device=device("stock-wal"),
                                    data_device=device("stock-data"),
                                    bucket_count=bucket_count)
        sales_recovered, stock_recovered = yield from runbook.step(
            "recover",
            lambda: recover_business_images(sim, sales_image, stock_image),
            volatile=True)

        # 5. verify business invariants
        def verify_step():
            business = decode_business_state(sales_recovered.state,
                                             stock_recovered.state)
            report.business_report = check_business_invariants(business,
                                                               catalog)
            if expected_committed_gtids is not None:
                recovered_gtids = set(business.orders)
                lost = [gtid for gtid in expected_committed_gtids
                        if gtid not in recovered_gtids]
                report.lost_committed_orders = len(lost)
                report.lost_gtids = lost

        yield from runbook.step("verify", verify_step, volatile=True)
        if not report.business_report.consistent:
            report.failure_reason = str(report.business_report)
            report.completed_at = sim.now
            report.step_durations = runbook.step_durations()
            self._record_outcome(report, span, collapsed=True)
            raise CollapsedBackupError(
                "backup image is not recoverable: "
                f"{report.business_report}", )

        # 6. reopen databases and the application
        def reopen_step():
            sales_db = reopen_database(
                sim, "sales", sales_image.wal_device,
                sales_image.data_device, bucket_count, sales_recovered)
            stock_db = reopen_database(
                sim, "stock", stock_image.wal_device,
                stock_image.data_device, bucket_count, stock_recovered)
            # a fresh gtid epoch: the promoted incarnation must never
            # reuse a pre-disaster global transaction id
            return EcommerceApp(sales_db, stock_db, catalog, epoch="bkup")

        app = yield from runbook.step("reopen", reopen_step, volatile=True)
        report.completed_at = sim.now
        report.succeeded = True
        report.step_durations = runbook.step_durations()
        self._record_outcome(report, span, collapsed=False)
        return PromotedBusiness(app=app, report=report)

    def _record_outcome(self, report: FailoverReport, span,
                        collapsed: bool) -> None:
        """Publish the failover outcome into the telemetry registry."""
        sim = self.system.sim
        registry = sim.telemetry.registry
        outcome = "collapsed" if collapsed else "recovered"
        registry.counter(
            "repro_failovers_total",
            help="Failover attempts by outcome", outcome=outcome,
        ).increment()
        registry.gauge(
            "repro_failover_rto_seconds",
            help="Disaster-to-serving time of the last failover",
            unit="seconds", namespace=self.business_namespace,
        ).sample(sim.now, report.rto_seconds)
        if report.rpo_seconds >= 0:
            registry.gauge(
                "repro_failover_rpo_seconds",
                help="Age of the newest recovered write at disaster time",
                unit="seconds", namespace=self.business_namespace,
            ).sample(sim.now, report.rpo_seconds)
        sim.telemetry.tracer.finish(
            span, status="error" if collapsed else "ok",
            drained_entries=report.drained_entries,
            rto_seconds=report.rto_seconds,
            rpo_seconds=report.rpo_seconds,
            lost_acked_writes=report.lost_acked_writes)
        recorder = sim.telemetry.recorder
        recorder.record(
            "failover", self.business_namespace, step=outcome,
            rto_seconds=round(report.rto_seconds, 6),
            drained_entries=report.drained_entries)
        # a failover is always snapshot-worthy: freeze the black box
        recorder.snapshot(f"failover-{outcome}")

    def _bucket_count(self) -> int:
        """Bucket count of the business databases.

        Stored in the deployed layout; the default matches
        :class:`repro.scenarios.business.BusinessConfig`.
        """
        return self._configured_bucket_count

    #: overridable without subclassing (set from the business config)
    _configured_bucket_count: int = 32

    def configure_buckets(self, bucket_count: int) -> None:
        """Set the bucket count used when reopening the databases."""
        self._configured_bucket_count = bucket_count


def fail_and_recover(system: TwoSiteSystem, business: BusinessProcess,
                     expected_committed: Optional[Sequence[str]] = None,
                     ) -> PromotedBusiness:
    """Convenience: inject the disaster and run the failover to completion.

    Raises :class:`CollapsedBackupError` when the backup collapsed.
    """
    history = system.main.array.history
    committed = (list(expected_committed)
                 if expected_committed is not None
                 else list(business.app.coordinator.committed_gtids))
    system.fail_main_site()
    manager = FailoverManager(system, business.namespace)
    manager.configure_buckets(business.config.bucket_count)
    process = system.sim.spawn(manager.execute(
        catalog=list(business.app.catalog.values()),
        expected_history=history,
        expected_committed_gtids=committed,
        pvol_ids=business.volume_ids),
        name="failover")
    return system.sim.run_until_complete(process)
