"""Failback: returning the business to a repaired main site.

The paper's demonstration stops at running the business from the backup
site; a production deployment must eventually *fail back*.  This module
implements the standard procedure on top of the same primitives
(reverse asynchronous copy + promotion), as the natural extension of the
paper's system:

1. **repair** — the main array comes back online; its volumes still hold
   the stale pre-disaster state (including acked writes that never made
   it out — exactly the data that must *not* survive);
2. **unpair & format** — the old forward pairs are dissolved and the old
   primary volumes erased, so the reverse copy cannot collide with stale
   higher-versioned blocks;
3. **reverse replication** — a new journal group (one consistency group,
   of course) copies backup → main while the business keeps running at
   the backup site: the initial copy plus ongoing updates flow in the
   background;
4. **switchover** — once the reverse pairs are in PAIR, the business
   quiesces briefly: remaining journal entries drain, the main-side
   volumes are promoted, the databases recover (trivially — the cut is
   complete), and the application reopens at the main site.

The measured "failback downtime" is only step 4's quiesce window; steps
1-3 run entirely in the background, mirroring the paper's zero-impact
philosophy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence

from repro.errors import FailoverError
from repro.apps.analytics import DatabaseImage, recover_business_images
from repro.apps.ecommerce import CatalogItem, EcommerceApp, \
    decode_business_state
from repro.apps.minidb.device import ArrayBlockDevice
from repro.apps.minidb.recovery import reopen_database
from repro.recovery.checker import (BusinessCheckReport,
                                    check_business_invariants)
from repro.recovery.runbook import Runbook, RunbookJournal
from repro.scenarios.builders import TwoSiteSystem
from repro.storage.replication import PairState

#: id of the reverse journal group failback creates
REVERSE_GROUP_ID = "failback-reverse"


@dataclass
class FailbackReport:
    """Everything measured during one failback."""

    started_at: float
    #: background phase: repair + reverse copy until PAIR
    reverse_paired_at: float = 0.0
    #: switchover quiesce: business stopped -> serving at main
    quiesce_started_at: float = 0.0
    completed_at: float = 0.0
    business_report: Optional[BusinessCheckReport] = None
    #: orders committed at the backup site during the reverse copy
    orders_during_reverse_copy: int = 0
    succeeded: bool = False
    #: per-step wall-clock accounting from the runbook checkpoints
    step_durations: Optional[Dict[str, float]] = None
    #: True when this report came from a resumed (crashed) runbook
    resumed: bool = False

    @property
    def downtime_seconds(self) -> float:
        """Business quiesce duration (the only user-visible stop)."""
        return self.completed_at - self.quiesce_started_at

    @property
    def total_seconds(self) -> float:
        """Repair-to-serving-at-main duration."""
        return self.completed_at - self.started_at


@dataclass
class FailbackResult:
    """The application serving at the repaired main site again."""

    app: EcommerceApp
    report: FailbackReport


class FailbackManager:
    """Drives the return of the business to the repaired main site."""

    def __init__(self, system: TwoSiteSystem,
                 secondary_volume_ids: Dict[str, int],
                 original_volume_ids: Dict[str, int],
                 bucket_count: int = 32,
                 journal: Optional[RunbookJournal] = None,
                 crash_after: Optional[str] = None) -> None:
        """``secondary_volume_ids``/``original_volume_ids`` map pvc name
        → backup-array (now production) / main-array volume id.
        ``journal``/``crash_after`` follow the failover manager's crash-
        restartable runbook contract."""
        if set(secondary_volume_ids) != set(original_volume_ids):
            raise FailoverError(
                "secondary and original volume maps must cover the same "
                "claims")
        self.system = system
        self.secondary = dict(secondary_volume_ids)
        self.original = dict(original_volume_ids)
        self.bucket_count = bucket_count
        self.journal = journal if journal is not None else RunbookJournal()
        self.crash_after = crash_after

    def execute(self, backup_app: EcommerceApp,
                catalog: Sequence[CatalogItem],
                pair_poll_interval: float = 0.050,
                load=None,
                ) -> Generator[object, object, FailbackResult]:
        """Run the full failback (process generator).

        ``backup_app`` is the application currently serving at the
        backup site.  Pass the running
        :class:`~repro.apps.workload.BackgroundLoad` as ``load`` and the
        manager stops it exactly at the switchover point — the business
        runs through the entire reverse copy and is quiesced only for
        the drain-promote-recover window.
        """
        sim = self.system.sim
        main = self.system.main.array
        backup = self.system.backup.array
        runbook = Runbook(sim, "failback", journal=self.journal,
                          crash_after=self.crash_after)
        report = FailbackReport(started_at=runbook.started_at)
        report.resumed = runbook.resumed

        # 1. repair the main site
        def repair_step():
            main.repair()
            self.system.network.restore()

        yield from runbook.step("repair", repair_step)

        # 2. dissolve old forward pairs, format the stale volumes
        def dissolve_step():
            self._dissolve_forward_pairs()
            for volume_id in sorted(self.original.values()):
                main.format_volume(volume_id)

        yield from runbook.step("dissolve", dissolve_step)

        # 3. reverse replication (backup -> main), one consistency group
        def reverse_step():
            reverse_journal_b = backup.create_journal(
                self.system.backup.pool_id)
            reverse_journal_m = main.create_journal(
                self.system.main.pool_id)
            backup.create_journal_group(
                REVERSE_GROUP_ID, reverse_journal_b.journal_id, main,
                reverse_journal_m.journal_id,
                self.system.network.backward)
            for pvc_name in sorted(self.secondary):
                backup.create_async_pair(
                    f"failback/{pvc_name}", REVERSE_GROUP_ID,
                    self.secondary[pvc_name], main,
                    self.original[pvc_name])
            return backup_app.orders_accepted  # orders before the copy

        orders_before = yield from runbook.step("reverse_pairs",
                                                reverse_step)

        def wait_step():
            group = backup.journal_groups[REVERSE_GROUP_ID]
            while not all(pair.state is PairState.PAIR
                          for pair in group.pairs.values()):
                if any(pair.state is PairState.PSUE
                       for pair in group.pairs.values()):
                    raise FailoverError(
                        "failback reverse copy suspended (PSUE); repair "
                        "the link/journals and retry")
                yield sim.timeout(pair_poll_interval)
            return {"reverse_paired_at": sim.now,
                    "orders_during": (backup_app.orders_accepted
                                      - orders_before)}

        paired = yield from runbook.step("wait_pair", wait_step)
        report.reverse_paired_at = paired["reverse_paired_at"]
        report.orders_during_reverse_copy = paired["orders_during"]

        # 4. switchover: quiesce, drain, promote, recover, reopen
        def quiesce_step():
            quiesce_started = sim.now
            group = backup.journal_groups[REVERSE_GROUP_ID]
            if load is not None:
                load.stop()
                while load.alive_clients:
                    yield sim.timeout(pair_poll_interval)
            # the business is quiet; wait for the pipeline to drain
            while group.entry_lag > 0:
                yield sim.timeout(pair_poll_interval)
            group.stop()
            while group.applying:
                yield sim.timeout(0.0001)
            drained = yield from group.drain()
            if drained:
                raise FailoverError(
                    "reverse journal still had entries after the drain "
                    "wait")
            # existence guards make a mid-step crash re-runnable
            for pvc_name in sorted(self.original):
                if backup.find_pair(f"failback/{pvc_name}") is not None:
                    backup.delete_pair(f"failback/{pvc_name}")
            if REVERSE_GROUP_ID in backup.journal_groups:
                backup.delete_journal_group(REVERSE_GROUP_ID, main)
            return quiesce_started

        report.quiesce_started_at = yield from runbook.step(
            "quiesce", quiesce_step)

        def device(pvc_name: str) -> ArrayBlockDevice:
            return ArrayBlockDevice(main, self.original[pvc_name])

        sales_image = DatabaseImage(wal_device=device("sales-wal"),
                                    data_device=device("sales-data"),
                                    bucket_count=self.bucket_count)
        stock_image = DatabaseImage(wal_device=device("stock-wal"),
                                    data_device=device("stock-data"),
                                    bucket_count=self.bucket_count)
        sales_rec, stock_rec = yield from runbook.step(
            "recover",
            lambda: recover_business_images(sim, sales_image, stock_image),
            volatile=True)

        def verify_step():
            business = decode_business_state(sales_rec.state,
                                             stock_rec.state)
            report.business_report = check_business_invariants(
                business, catalog)
            if not report.business_report.consistent:
                raise FailoverError(
                    f"failback image inconsistent: "
                    f"{report.business_report}")

        yield from runbook.step("verify", verify_step, volatile=True)

        def reopen_step():
            sales_db = reopen_database(
                sim, "sales", sales_image.wal_device,
                sales_image.data_device, self.bucket_count, sales_rec)
            stock_db = reopen_database(
                sim, "stock", stock_image.wal_device,
                stock_image.data_device, self.bucket_count, stock_rec)
            return EcommerceApp(sales_db, stock_db, catalog,
                                epoch="main2")

        app = yield from runbook.step("reopen", reopen_step,
                                      volatile=True)
        report.completed_at = sim.now
        report.succeeded = True
        report.step_durations = runbook.step_durations()
        return FailbackResult(app=app, report=report)

    def _dissolve_forward_pairs(self) -> None:
        """Remove the pre-disaster forward pairs and their groups."""
        main = self.system.main.array
        backup = self.system.backup.array
        for group_id in list(main.journal_groups):
            group = main.journal_groups[group_id]
            if group.main_journal not in set(main._journals.values()):
                continue  # not a forward group
            targets = {pair.svol.volume_id for pair in
                       group.pairs.values()}
            if not targets & set(self.secondary.values()):
                continue  # protects something else
            group.stop()
            for pair_id in list(group.pairs):
                main.delete_pair(pair_id)
            main.delete_journal_group(group_id, backup)
