"""The experiment runners behind every benchmark (E1-E8, D0).

Each ``run_*`` function executes one experiment end to end on fresh
simulators and returns ``(table, facts)``:

* ``table`` — the rows the paper's narrative predicts, printable;
* ``facts`` — the derived quantities the benchmark asserts the *shape*
  of (who wins, by roughly what factor, where behaviour flips).

See DESIGN.md §4 for the experiment-to-paper-claim map and
EXPERIMENTS.md for recorded results.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps import (BackgroundLoad, DatabaseImage, WorkloadConfig,
                        run_analytics, run_order_workload)
from repro.apps.minidb.device import ViewBlockDevice
from repro.bench.setups import (MODE_ADC_CG, MODE_ADC_NOCG, MODE_NONE,
                                MODE_SDC, ExperimentSystem,
                                build_business_system,
                                business_journal_groups,
                                experiment_config)
from repro.bench.tables import Table
from repro.errors import CollapsedBackupError, RecoveryError, ReproError
from repro.recovery import check_business_invariants, fail_and_recover
from repro.recovery.checker import check_storage_cut
from repro.scenarios.builders import build_system
from repro.simulation.kernel import Simulator

Facts = Dict[str, object]


# ---------------------------------------------------------------------------
# E1 — ADC eliminates system slowdown (§I, §III-A1)
# ---------------------------------------------------------------------------


def _e1_cell(cell: Tuple[str, float, int, float, int],
             ) -> Dict[str, float]:
    """One E1 (mode, rtt) cell on a fresh simulator.

    Top-level and tuple-argumented so :class:`ParallelRunner` can ship
    it to a worker process; everything random derives from ``seed``.
    """
    mode, rtt_ms, seed, duration, clients = cell
    experiment = build_business_system(
        seed=seed, mode=mode, link_latency=rtt_ms / 2 / 1e3)
    result = run_order_workload(
        experiment.sim, experiment.business.app,
        WorkloadConfig(client_count=clients, duration=duration))
    # order latency read back from the telemetry registry (the
    # workload published it there); identical numbers to the
    # local recorder because the summary kind keeps raw samples
    registry = experiment.sim.telemetry.registry
    summary = registry.get(
        "repro_order_latency_seconds",
        workload="workload").summary().as_millis()
    writes = registry.get(
        "repro_host_write_seconds",
        array=experiment.system.main.array.serial).summary()
    return {
        "accepted": result.accepted,
        "throughput": result.throughput,
        "p50": summary.p50, "p99": summary.p99,
        "host_write_p50_ms": writes.p50 * 1e3,
        "host_write_p95_ms": writes.p95 * 1e3,
        "host_write_p99_ms": writes.p99 * 1e3,
        "host_writes": writes.count,
    }


def run_e1_slowdown(rtt_ms_values: Sequence[float] = (1.0, 5.0, 10.0, 25.0),
                    duration: float = 1.0, clients: int = 4,
                    seed: int = 100, jobs: int = 1) -> Tuple[Table, Facts]:
    """Order latency/throughput: no-backup vs SDC vs ADC across RTT.

    ``jobs`` shards the mode × RTT grid across worker processes; the
    merge is by cell key, so the table and facts are identical for any
    job count.
    """
    from repro.bench.parallel import ParallelRunner

    table = Table(
        title="E1: transaction latency vs inter-site RTT",
        columns=("mode", "rtt_ms", "orders", "throughput_per_s",
                 "p50_ms", "p99_ms"))
    cells = [(mode, rtt_ms, seed, duration, clients)
             for mode in (MODE_NONE, MODE_SDC, MODE_ADC_CG)
             for rtt_ms in rtt_ms_values]
    results = ParallelRunner(jobs).map(_e1_cell, cells)
    measured: Dict[Tuple[str, float], Dict[str, float]] = {}
    registry_facts: Dict[str, Dict[str, float]] = {}
    for (mode, rtt_ms, _seed, _dur, _cl), outcome in zip(cells, results):
        table.add_row(mode, rtt_ms, outcome["accepted"],
                      outcome["throughput"], outcome["p50"],
                      outcome["p99"])
        measured[(mode, rtt_ms)] = {
            "p50": outcome["p50"], "p99": outcome["p99"],
            "throughput": outcome["throughput"]}
        registry_facts[f"{mode}@{rtt_ms}ms"] = {
            "host_write_p50_ms": outcome["host_write_p50_ms"],
            "host_write_p95_ms": outcome["host_write_p95_ms"],
            "host_write_p99_ms": outcome["host_write_p99_ms"],
            "host_writes": outcome["host_writes"],
        }
    max_rtt = max(rtt_ms_values)
    adc_overhead = max(
        measured[(MODE_ADC_CG, rtt)]["p50"]
        / measured[(MODE_NONE, rtt)]["p50"]
        for rtt in rtt_ms_values)
    sdc_ratio_at_max = (measured[(MODE_SDC, max_rtt)]["p50"]
                        / measured[(MODE_ADC_CG, max_rtt)]["p50"])
    sdc_growth = (measured[(MODE_SDC, max_rtt)]["p50"]
                  / measured[(MODE_SDC, min(rtt_ms_values))]["p50"])
    adc_growth = (measured[(MODE_ADC_CG, max_rtt)]["p50"]
                  / measured[(MODE_ADC_CG, min(rtt_ms_values))]["p50"])
    facts: Facts = {
        "adc_overhead_vs_none": adc_overhead,
        "sdc_over_adc_at_max_rtt": sdc_ratio_at_max,
        "sdc_p50_growth_over_rtt": sdc_growth,
        "adc_p50_growth_over_rtt": adc_growth,
        "registry": registry_facts,
    }
    table.note(f"ADC worst-case p50 overhead vs no-backup: "
               f"{(adc_overhead - 1) * 100:.1f}%")
    table.note(f"SDC p50 / ADC p50 at RTT={max_rtt}ms: "
               f"{sdc_ratio_at_max:.1f}x")
    return table, facts


# ---------------------------------------------------------------------------
# E2 — ADC without a consistency group collapses backup data (§I)
# ---------------------------------------------------------------------------


def run_e2_collapse(seeds: Sequence[int] = tuple(range(1000, 1012)),
                    load_time: float = 0.35, clients: int = 6,
                    ) -> Tuple[Table, Facts]:
    """Disaster sweep: recoverability with vs without consistency group."""
    table = Table(
        title="E2: backup recoverability at random disaster instants",
        columns=("mode", "disasters", "recovered", "collapsed",
                 "collapse_rate", "avg_lost_orders"))
    facts: Facts = {}
    for mode in (MODE_ADC_NOCG, MODE_ADC_CG):
        collapsed = 0
        lost: List[int] = []
        for seed in seeds:
            experiment = build_business_system(
                seed=seed, mode=mode,
                adc_overrides=dict(transfer_interval=0.004,
                                   interval_jitter=0.6))
            sim = experiment.sim
            load = BackgroundLoad(sim, experiment.business.app,
                                  client_count=clients)
            sim.run(until=sim.now + load_time)
            committed = load.committed_gtids
            try:
                promoted = fail_and_recover(
                    experiment.system, experiment.business,
                    expected_committed=committed)
            except CollapsedBackupError:
                collapsed += 1
                continue
            lost.append(promoted.report.lost_committed_orders)
        rate = collapsed / len(seeds)
        avg_lost = sum(lost) / len(lost) if lost else float("nan")
        table.add_row(mode, len(seeds), len(seeds) - collapsed,
                      collapsed, rate, avg_lost)
        facts[f"{mode}_collapse_rate"] = rate
        facts[f"{mode}_avg_lost_orders"] = avg_lost
    table.note("collapse = no consistent recovery exists "
               "(mutual cross-database missing transactions)")
    return table, facts


# ---------------------------------------------------------------------------
# E3 — the namespace operator automates ADC configuration (§III-B, Figs 3-4)
# ---------------------------------------------------------------------------


def run_e3_operator(volume_counts: Sequence[int] = (2, 4, 8, 16),
                    seed: int = 300) -> Tuple[Table, Facts]:
    """User operations and configuration latency: NSO vs manual."""
    from repro.csi.crds import ConsistencyGroupReplication, STATE_PAIRED
    from repro.operator import (TAG_CONSISTENT, TAG_KEY,
                                install_namespace_operator)
    from repro.platform.resources import PersistentVolumeClaim
    from repro.scenarios.builders import DEFAULT_STORAGE_CLASS

    table = Table(
        title="E3: backup configuration effort vs namespace size",
        columns=("volumes", "nso_user_ops", "nso_seconds",
                 "manual_user_ops", "manual_seconds"))
    facts: Facts = {"nso_ops": [], "manual_ops": []}

    def create_claims(system, count):
        system.main.cluster.create_namespace("bench-ns")
        for index in range(count):
            pvc = PersistentVolumeClaim()
            pvc.meta.name = f"data-{index:02d}"
            pvc.meta.namespace = "bench-ns"
            pvc.spec.storage_class = DEFAULT_STORAGE_CLASS
            pvc.spec.capacity_blocks = 64
            system.main.api.create(pvc)
        system.sim.run(until=system.sim.now + 1.0)

    for count in volume_counts:
        # --- operator path: one tag ------------------------------------
        sim = Simulator(seed=seed)
        system = build_system(sim, experiment_config())
        install_namespace_operator(system.main.cluster)
        create_claims(system, count)
        ops_before = system.main.console.operation_count()
        started = sim.now
        system.main.console.tag_namespace("bench-ns", TAG_KEY,
                                          TAG_CONSISTENT)
        deadline = sim.now + 60.0
        while sim.now < deadline:
            sim.run(until=sim.now + 0.1)
            cr = system.main.api.try_get(ConsistencyGroupReplication,
                                         "nso-bench-ns", "bench-ns")
            if cr is not None and cr.status.state == STATE_PAIRED:
                break
        else:
            raise ReproError(f"E3: NSO never paired {count} volumes")
        nso_seconds = sim.now - started
        nso_ops = system.main.console.operation_count() - ops_before

        # --- manual path: per-volume storage administration -------------
        sim = Simulator(seed=seed + 1)
        system = build_system(sim, experiment_config())
        create_claims(system, count)
        console = system.main.console
        started = sim.now
        manual = _manual_adc_configuration(system, "bench-ns")
        sim.run_until_complete(sim.spawn(manual, name="manual-admin"))
        manual_seconds = sim.now - started
        manual_ops = console.operation_count("storage-array") + \
            console.operation_count("console")

        table.add_row(count, nso_ops, nso_seconds, manual_ops,
                      manual_seconds)
        facts["nso_ops"].append(nso_ops)
        facts["manual_ops"].append(manual_ops)
    table.note("manual path counts each storage-array command and PV "
               "lookup as one user operation; human think time excluded")
    return table, facts


def _manual_adc_configuration(system, namespace):
    """The administrator's manual procedure the NSO replaces.

    Looks up every claim's volume handle, creates journals, the journal
    group and one pair per volume — each step a console / array
    operation with management latency.
    """
    from repro.csi.storage_plugin import resolve_bound_volume
    sim = system.sim
    console = system.main.console
    latency = system.config.command_latency
    claims = console.list_claims(namespace)
    handles = []
    for claim in claims:
        pv = resolve_bound_volume(system.main.api, namespace,
                                  claim.meta.name)
        console.storage_array_command(
            f"lookup volume for PV {pv.meta.name}")
        yield sim.timeout(latency)
        handles.append(pv.spec.csi.volume_handle)
    console.storage_array_command("create journal (main)")
    yield sim.timeout(latency)
    main_journal = system.main.array.create_journal(system.main.pool_id)
    console.storage_array_command("create journal (backup)")
    yield sim.timeout(latency)
    backup_journal = system.backup.array.create_journal(
        system.backup.pool_id)
    console.storage_array_command("create consistency group")
    yield sim.timeout(latency)
    system.main.array.create_journal_group(
        "manual-cg", main_journal.journal_id, system.backup.array,
        backup_journal.journal_id, system.replication_link)
    for index, handle in enumerate(handles):
        pvol_id = system.main.array.parse_handle(handle)
        pvol = system.main.array.get_volume(pvol_id)
        console.storage_array_command(f"create secondary volume {index}")
        yield sim.timeout(latency)
        svol = system.backup.array.create_volume(
            system.backup.pool_id, pvol.capacity_blocks)
        console.storage_array_command(f"create pair {index}")
        yield sim.timeout(latency)
        system.main.array.create_async_pair(
            f"manual-{index}", "manual-cg", pvol_id, system.backup.array,
            svol.volume_id)
    # wait for all pairs to reach PAIR, polling status (also an op)
    while True:
        states = {system.main.array.pair_status(f"manual-{i}").value
                  for i in range(len(handles))}
        console.storage_array_command("query pair status")
        if states == {"PAIR"}:
            return
        yield sim.timeout(0.1)


# ---------------------------------------------------------------------------
# E4 — snapshot groups stay consistent under live restore (§III-A2, Fig 5)
# ---------------------------------------------------------------------------


def run_e4_snapshot(seeds: Sequence[int] = tuple(range(400, 406)),
                    load_time: float = 0.25,
                    ) -> Tuple[Table, Facts]:
    """Snapshot-group vs per-volume snapshots under replication load."""
    table = Table(
        title="E4: snapshot consistency under live restore",
        columns=("method", "attempts", "consistent", "consistency_rate",
                 "mean_create_ms"))
    facts: Facts = {}
    for method, quiesce in (("snapshot-group", True),
                            ("per-volume", False)):
        consistent = 0
        create_times: List[float] = []
        for seed in seeds:
            experiment = build_business_system(
                seed=seed, mode=MODE_ADC_CG,
                adc_overrides=dict(transfer_interval=0.004,
                                   interval_jitter=0.5))
            sim = experiment.sim
            load = BackgroundLoad(sim, experiment.business.app,
                                  client_count=6)
            sim.run(until=sim.now + load_time)
            secondary = _secondary_ids(experiment)
            started = sim.now
            if quiesce:
                group_proc = sim.spawn(
                    experiment.system.backup.array.create_snapshot_group(
                        f"e4-{seed}", [secondary[p] for p in
                                       sorted(secondary)],
                        quiesce=True))
                group = sim.run_until_complete(group_proc)
                frozen = group.frozen_versions()
            else:
                # per-volume snapshots are separate console operations:
                # each costs one management-command latency, so the
                # members freeze at different restore points
                frozen = {}
                latency = experiment.system.config.command_latency

                def per_volume(sim):
                    for pvc in sorted(secondary):
                        snapshot = experiment.system.backup.array \
                            .create_snapshot(secondary[pvc])
                        frozen[secondary[pvc]] = \
                            snapshot.frozen_version_map()
                        yield sim.timeout(latency)

                sim.run_until_complete(sim.spawn(per_volume(sim)))
            create_times.append((sim.now - started) * 1e3)
            load.drain()
            image = {
                experiment.business.volume_ids[pvc]:
                    frozen.get(svol_id, {})
                for pvc, svol_id in secondary.items()}
            report = check_storage_cut(
                experiment.system.main.array.history, image)
            if report.consistent:
                consistent += 1
        rate = consistent / len(seeds)
        table.add_row(method, len(seeds), consistent, rate,
                      sum(create_times) / len(create_times))
        facts[f"{method}_rate"] = rate
    table.note("consistent = frozen images form a prefix of the main "
               "site's ack order across all four volumes")
    return table, facts


def _secondary_ids(experiment: ExperimentSystem) -> Dict[str, int]:
    from repro.recovery.failover import FailoverManager
    manager = FailoverManager(experiment.system,
                              experiment.business.namespace)
    return manager.discover_secondary_volumes()


# ---------------------------------------------------------------------------
# E5 — analytics on snapshots does not disturb the business (§IV-D, Fig 6)
# ---------------------------------------------------------------------------


def run_e5_analytics(seed: int = 500, window: float = 1.0,
                     repeats: int = 3) -> Tuple[Table, Facts]:
    """Main-site impact and result validity per analytics placement."""
    table = Table(
        title="E5: analytics placement vs business impact and validity",
        columns=("config", "orders_per_s", "repl_lag_ms", "runs",
                 "valid", "stable"))
    facts: Facts = {}
    for config_name in ("no-analytics", "on-snapshots", "on-live-mirror"):
        experiment = build_business_system(
            seed=seed, mode=MODE_ADC_CG,
            adc_overrides=dict(transfer_interval=0.004,
                               interval_jitter=0.4))
        sim = experiment.sim
        business = experiment.business
        load = BackgroundLoad(sim, business.app, client_count=4)
        sim.run(until=sim.now + 0.2)  # warm up
        orders_at_start = business.app.orders_accepted
        window_started = sim.now
        reports = []
        valid = 0
        if config_name != "no-analytics":
            secondary = _secondary_ids(experiment)
            group = None
            if config_name == "on-snapshots":
                group_proc = sim.spawn(
                    experiment.system.backup.array.create_snapshot_group(
                        "e5-group",
                        [secondary[p] for p in sorted(secondary)],
                        quiesce=True))
                group = sim.run_until_complete(group_proc)
            for repeat in range(repeats):
                try:
                    report, business_ok = _run_backup_analytics(
                        experiment, secondary, group,
                        tag=f"{config_name}-{repeat}")
                except (RecoveryError, CollapsedBackupError):
                    reports.append(None)
                    continue
                reports.append(report)
                if business_ok:
                    valid += 1
            if group is not None:
                group.delete()
        remaining = window - (sim.now - window_started)
        if remaining > 0:
            sim.run(until=sim.now + remaining)
        throughput = (business.app.orders_accepted - orders_at_start) \
            / (sim.now - window_started)
        groups = business_journal_groups(experiment)
        lag_ms = sum(g.lag_seconds.mean() for g in groups) \
            / len(groups) * 1e3
        load.drain()
        counts = [r.order_count for r in reports if r is not None]
        stable = len(set(counts)) <= 1
        runs = repeats if config_name != "no-analytics" else 0
        table.add_row(config_name, throughput, lag_ms, runs,
                      valid, stable if runs else "-")
        facts[f"{config_name}_throughput"] = throughput
        facts[f"{config_name}_lag_ms"] = lag_ms
        if runs:
            facts[f"{config_name}_valid"] = valid
            facts[f"{config_name}_stable"] = stable
    table.note("valid = recovered analytics state satisfies the business "
               "invariants; stable = repeated runs see the same orders")
    return table, facts


def _run_backup_analytics(experiment: ExperimentSystem,
                          secondary: Dict[str, int],
                          group, tag: str):
    """One analytics job at the backup site; returns (report, valid).

    ``group`` is the snapshot group to read from, or ``None`` to read
    the live mirror volumes directly.
    """
    sim = experiment.sim
    backup_array = experiment.system.backup.array
    if group is not None:
        views = group.by_base_volume()

        def device(pvc):
            return ViewBlockDevice(views[secondary[pvc]].view())
    else:
        def device(pvc):
            return ViewBlockDevice(
                backup_array.get_volume(secondary[pvc]))

    bucket_count = experiment.business.config.bucket_count
    sales_image = DatabaseImage(wal_device=device("sales-wal"),
                                data_device=device("sales-data"),
                                bucket_count=bucket_count)
    stock_image = DatabaseImage(wal_device=device("stock-wal"),
                                data_device=device("stock-data"),
                                bucket_count=bucket_count)
    report = sim.run_until_complete(sim.spawn(
        run_analytics(sim, sales_image, stock_image), name=f"e5-{tag}"))
    # validity: rebuild the business state and check the invariants
    from repro.apps.analytics import recover_business_images
    from repro.apps.ecommerce import decode_business_state
    sales_rec, stock_rec = sim.run_until_complete(sim.spawn(
        recover_business_images(sim, sales_image, stock_image)))
    business_state = decode_business_state(sales_rec.state,
                                           stock_rec.state)
    check = check_business_invariants(
        business_state, list(experiment.business.app.catalog.values()))
    return report, check.consistent


# ---------------------------------------------------------------------------
# E6 — downtime elimination: RPO/RTO per mode (§I, §V)
# ---------------------------------------------------------------------------


def run_e6_downtime(seeds: Sequence[int] = tuple(range(1000, 1006)),
                    load_time: float = 0.3) -> Tuple[Table, Facts]:
    """Recovery success, data loss and recovery time per backup mode."""
    table = Table(
        title="E6: disaster recovery per backup mode",
        columns=("mode", "disasters", "recovered", "mean_lost_orders",
                 "max_lost_orders", "mean_rpo_ms", "mean_rto_ms"))
    facts: Facts = {}
    for mode in (MODE_SDC, MODE_ADC_CG, MODE_ADC_NOCG):
        lost: List[int] = []
        rpos: List[float] = []
        rtos: List[float] = []
        recovered = 0
        for seed in seeds:
            experiment = build_business_system(
                seed=seed, mode=mode,
                adc_overrides=dict(transfer_interval=0.004,
                                   interval_jitter=0.6))
            sim = experiment.sim
            load = BackgroundLoad(sim, experiment.business.app,
                                  client_count=6)
            sim.run(until=sim.now + load_time)
            committed = load.committed_gtids
            try:
                promoted = fail_and_recover(
                    experiment.system, experiment.business,
                    expected_committed=committed)
            except CollapsedBackupError:
                continue
            recovered += 1
            lost.append(promoted.report.lost_committed_orders)
            rtos.append(promoted.report.rto_seconds * 1e3)
            if promoted.report.rpo_seconds >= 0:
                rpos.append(promoted.report.rpo_seconds * 1e3)
        mean_lost = sum(lost) / len(lost) if lost else float("nan")
        max_lost = max(lost) if lost else -1
        mean_rpo = sum(rpos) / len(rpos) if rpos else float("nan")
        mean_rto = sum(rtos) / len(rtos) if rtos else float("nan")
        table.add_row(mode, len(seeds), recovered, mean_lost, max_lost,
                      mean_rpo, mean_rto)
        facts[f"{mode}_recovered"] = recovered
        facts[f"{mode}_mean_lost"] = mean_lost
        facts[f"{mode}_max_lost"] = max_lost
        facts[f"{mode}_mean_rto_ms"] = mean_rto
        facts[f"{mode}_disasters"] = len(seeds)
    table.note("SDC: zero loss but E1's latency cost; ADC+CG: bounded "
               "loss, always recoverable; ADC without CG: may collapse")
    return table, facts


# ---------------------------------------------------------------------------
# E7 — journal transfer interval ablation (§III-A1)
# ---------------------------------------------------------------------------


def _coalesce_hotspot(interval_ms: float, seed: int, writes: int,
                      hot_blocks: int, coalesce: bool,
                      reduced: bool = False, payload_fn=None,
                      ) -> Dict[str, float]:
    """One hotspot run for the E7 coalescing / reduction ablations.

    A block-level hotspot (round-robin overwrites of ``hot_blocks``
    blocks) drained through one ADC pair.  The order workload cannot
    exercise coalescing — minidb is log-structured, every put lands in
    a fresh block — so the ablation drives the overwrite pattern the
    optimisation targets directly at the array, the way a page-update
    OLTP volume would.  ``reduced`` turns the wire data-reduction
    engine on and ``payload_fn(i)`` shapes the payload stream (the
    reduction ablation feeds a duplicate-heavy
    :class:`~repro.apps.workload.PayloadProfile`; default is the tiny
    all-distinct ``page-NNNNNN`` tag).  Returns wire-side counters
    after a full drain — ``wire_bytes`` is what the link physically
    carried, ``transferred_bytes`` the logical pre-reduction volume.
    """
    from repro.simulation import NetworkLink
    from repro.storage import AdcConfig, ArrayConfig, StorageArray
    from repro.storage.reduction import ReductionConfig

    sim = Simulator(seed=seed)
    adc = AdcConfig(transfer_interval=interval_ms / 1e3,
                    transfer_batch=1024, restore_interval=interval_ms / 1e3,
                    restore_batch=1024, interval_jitter=0.0,
                    coalesce_overwrites=coalesce,
                    reduction=ReductionConfig(enabled=reduced))
    config = ArrayConfig(adc=adc)
    main = StorageArray(sim, serial="E7-MAIN", config=config)
    backup = StorageArray(sim, serial="E7-BKUP", config=config)
    link = NetworkLink(sim, latency=0.005, name="e7-hotspot")
    main_pool = main.create_pool(100_000)
    backup_pool = backup.create_pool(100_000)
    pvol = main.create_volume(main_pool.pool_id, 4096)
    svol = backup.create_volume(backup_pool.pool_id, 4096)
    main_jnl = main.create_journal(main_pool.pool_id, 50_000)
    backup_jnl = backup.create_journal(backup_pool.pool_id, 50_000)
    group = main.create_journal_group(
        "e7-hotspot", main_jnl.journal_id, backup,
        backup_jnl.journal_id, link)
    main.create_async_pair("e7-hotspot-pair", "e7-hotspot",
                           pvol.volume_id, backup, svol.volume_id)

    if payload_fn is None:
        payload_fn = lambda i: b"page-%06d" % i  # noqa: E731

    def hotspot(sim):
        for i in range(writes):
            yield from main.host_write(
                pvol.volume_id, i % hot_blocks, payload_fn(i))

    sim.run_until_complete(sim.spawn(hotspot(sim), name="hotspot"))
    deadline = sim.now + 30.0
    while group.entry_lag and sim.now < deadline:
        sim.run(until=sim.now + 0.05)
    mismatched = sum(
        1 for block in range(hot_blocks)
        if (pvol.peek(block) is None) != (svol.peek(block) is None)
        or (pvol.peek(block) is not None
            and pvol.peek(block).payload != svol.peek(block).payload))
    return {
        "transferred_entries": group.transferred_count.value,
        "transferred_bytes": group.transfer_bytes.value,
        "wire_bytes": link.bytes_transferred,
        "coalesced_entries": group.coalesced_count.value,
        "mismatched_blocks": mismatched,
    }


def _e7_cell(cell: Tuple[float, int, float]) -> Dict[str, float]:
    """One E7 (interval, seed) cell: load, disaster, registry readouts.

    Top-level and tuple-argumented for :class:`ParallelRunner`.
    """
    interval_ms, seed, load_time = cell
    experiment = build_business_system(
        seed=seed, mode=MODE_ADC_CG,
        adc_overrides=dict(transfer_interval=interval_ms / 1e3,
                           interval_jitter=0.3))
    sim = experiment.sim
    load = BackgroundLoad(sim, experiment.business.app, client_count=6)
    sim.run(until=sim.now + load_time)
    committed = load.committed_gtids
    groups = business_journal_groups(experiment)
    promoted = fail_and_recover(
        experiment.system, experiment.business,
        expected_committed=committed)
    # journal-side observables come from the telemetry registry
    # (the gauges/counters the transfer loop maintains), not from
    # reaching into the journal internals
    return {
        "throughput": len(committed) / load_time,
        "lost": promoted.report.lost_committed_orders,
        "peak": max(
            int(g.peak_entries_gauge.value)
            if g.peak_entries_gauge.points else 0 for g in groups),
        "entry_lags": [g.lag_entries.maximum() for g in groups
                       if g.lag_entries.points],
        "batches": sum(g.transfer_batches.value for g in groups),
        "wire_bytes": sum(g.transfer_bytes.value for g in groups),
    }


def _e7_hotspot_cell(cell: Tuple[float, int, int, int, bool],
                     ) -> Dict[str, float]:
    """Tuple-argumented wrapper of :func:`_coalesce_hotspot`."""
    interval_ms, seed, writes, hot_blocks, coalesce = cell
    return _coalesce_hotspot(interval_ms, seed=seed, writes=writes,
                             hot_blocks=hot_blocks, coalesce=coalesce)


def _e7_reduction_cell(cell: Tuple[float, int, int, int, bool],
                       ) -> Dict[str, float]:
    """One reduction-ablation hotspot run (tuple-argumented).

    Drives the duplicate-heavy seeded payload profile — 1 KiB pages
    cycling a pool of 16 distinct contents — through the hotspot
    harness with the wire data-reduction engine off or on.
    """
    from repro.apps.workload import PayloadProfile

    interval_ms, seed, writes, hot_blocks, reduced = cell
    profile = PayloadProfile(kind="duplicate", size_bytes=1024,
                             seed=seed, unique_payloads=16)
    return _coalesce_hotspot(interval_ms, seed=seed, writes=writes,
                             hot_blocks=hot_blocks, coalesce=False,
                             reduced=reduced, payload_fn=profile.payload)


def run_e7_journal(intervals_ms: Sequence[float] = (1.0, 5.0, 20.0, 50.0),
                   seeds: Sequence[int] = (700, 701, 702),
                   load_time: float = 0.3, jobs: int = 1,
                   ) -> Tuple[Table, Facts]:
    """RPO vs foreground throughput as the transfer interval grows,
    plus a hotspot ablation of transfer-side write coalescing.

    ``jobs`` shards the interval × seed grid (and the two ablation
    runs) across worker processes; the merge is by cell key, so the
    table and facts are identical for any job count.
    """
    from repro.bench.parallel import ParallelRunner

    table = Table(
        title="E7: journal transfer interval trade-off (ADC+CG)",
        columns=("interval_ms", "orders_per_s", "mean_lost_orders",
                 "peak_journal_entries", "transferred_kb"))
    throughputs: List[float] = []
    mean_losses: List[float] = []
    transferred_bytes: List[float] = []
    registry_facts: Dict[str, Dict[str, float]] = {}
    runner = ParallelRunner(jobs)
    cells = [(interval_ms, seed, load_time)
             for interval_ms in intervals_ms for seed in seeds]
    outcomes = runner.map(_e7_cell, cells)
    per_interval = {
        interval_ms: outcomes[i * len(seeds):(i + 1) * len(seeds)]
        for i, interval_ms in enumerate(intervals_ms)}
    for interval_ms in intervals_ms:
        rows = per_interval[interval_ms]
        tputs = [r["throughput"] for r in rows]
        lost = [r["lost"] for r in rows]
        peaks = [r["peak"] for r in rows]
        entry_lags = [lag for r in rows for lag in r["entry_lags"]]
        batches = sum(r["batches"] for r in rows)
        wire_bytes = [r["wire_bytes"] for r in rows]
        throughput = sum(tputs) / len(tputs)
        mean_lost = sum(lost) / len(lost)
        mean_wire = sum(wire_bytes) / len(wire_bytes)
        table.add_row(interval_ms, throughput, mean_lost,
                      max(peaks), mean_wire / 1024)
        throughputs.append(throughput)
        mean_losses.append(mean_lost)
        transferred_bytes.append(mean_wire)
        registry_facts[f"{interval_ms}ms"] = {
            "max_entry_lag": max(entry_lags) if entry_lags else 0.0,
            "transfer_batches": batches,
            "peak_journal_entries": max(peaks),
            "transferred_bytes": mean_wire,
        }
    # -- coalescing ablation: a block-overwrite hotspot drained with and
    #    without coalesce_overwrites at the largest (batch-building)
    #    interval; the win is wire entries/bytes that never ship
    ablation_interval = max(intervals_ms)
    plain, coalesced = runner.map(_e7_hotspot_cell, [
        (ablation_interval, min(seeds), 2_000, 16, False),
        (ablation_interval, min(seeds), 2_000, 16, True)])
    for label, run_counters in (("hotspot", plain),
                                ("hotspot+coalesce", coalesced)):
        table.add_row(f"{ablation_interval:g} ({label})", 0.0, 0.0,
                      int(run_counters["transferred_entries"]),
                      run_counters["transferred_bytes"] / 1024)
    # -- wire data-reduction ablation: the same hotspot fed the
    #    duplicate-heavy payload profile, drained with the reduction
    #    engine off and on; the transferred_kb column then shows the
    #    bytes the link physically carried (logical vs post-reduction)
    verbatim, reduced = runner.map(_e7_reduction_cell, [
        (ablation_interval, min(seeds), 2_000, 16, False),
        (ablation_interval, min(seeds), 2_000, 16, True)])
    for label, run_counters in (("duplicate", verbatim),
                                ("duplicate+reduction", reduced)):
        table.add_row(f"{ablation_interval:g} ({label})", 0.0, 0.0,
                      int(run_counters["transferred_entries"]),
                      run_counters["wire_bytes"] / 1024)
    facts: Facts = {
        "throughputs": throughputs,
        "mean_losses": mean_losses,
        "loss_grows": mean_losses[-1] > mean_losses[0],
        "throughput_spread": max(throughputs) / min(throughputs),
        "transferred_bytes": transferred_bytes,
        "coalesce": {
            "interval_ms": ablation_interval,
            "bytes_plain": plain["transferred_bytes"],
            "bytes_coalesced": coalesced["transferred_bytes"],
            "entries_plain": plain["transferred_entries"],
            "entries_coalesced_away": coalesced["coalesced_entries"],
            "bytes_saved_ratio": 1.0 - (
                coalesced["transferred_bytes"]
                / plain["transferred_bytes"]) if plain["transferred_bytes"]
            else 0.0,
            "images_match": plain["mismatched_blocks"] == 0
            and coalesced["mismatched_blocks"] == 0,
        },
        "reduction": {
            "interval_ms": ablation_interval,
            "bytes_logical": reduced["transferred_bytes"],
            "bytes_wire": reduced["wire_bytes"],
            "bytes_plain_wire": verbatim["wire_bytes"],
            "bytes_saved_ratio": 1.0 - (
                reduced["wire_bytes"] / verbatim["wire_bytes"])
            if verbatim["wire_bytes"] else 0.0,
            "images_match": verbatim["mismatched_blocks"] == 0
            and reduced["mismatched_blocks"] == 0,
        },
        "registry": registry_facts,
    }
    table.note("foreground throughput stays flat (async ack path); data "
               "loss at disaster grows with the transfer interval")
    table.note("hotspot rows: 2,000 round-robin overwrites of 16 blocks; "
               "peak_journal_entries column holds entries shipped; "
               "coalesce_overwrites collapses superseded overwrites "
               "before they cross the wire")
    table.note("duplicate rows: the same hotspot with 1 KiB payloads "
               "cycling 16 distinct contents; transferred_kb is wire "
               "bytes — fingerprint dedup + compression ship repeats "
               "as references")
    return table, facts


# ---------------------------------------------------------------------------
# E8 — consistency-group size scaling (§III-A1)
# ---------------------------------------------------------------------------


def run_e8_cg_scale(volume_counts: Sequence[int] = (2, 4, 8, 16),
                    duration: float = 0.5, write_interval: float = 0.002,
                    seed: int = 800) -> Tuple[Table, Facts]:
    """One shared journal vs independent journals as group size grows."""
    table = Table(
        title="E8: consistency-group size scaling",
        columns=("layout", "volumes", "writes", "write_p99_ms",
                 "mean_lag_entries", "catchup_ms"))
    facts: Facts = {"cg_p99": [], "independent_p99": [],
                    "cg_parallel_lag": [], "cg_serial_lag": []}
    layouts = (("consistency-group", 1),
               ("cg-parallel-restore", 8),
               ("independent", 1))
    for layout, restore_concurrency in layouts:
        for count in volume_counts:
            p99_ms, lag, catchup_ms, writes = _run_cg_scale_cell(
                layout, count, duration, write_interval,
                seed + count, restore_concurrency)
            table.add_row(layout, count, writes, p99_ms, lag, catchup_ms)
            if layout == "consistency-group":
                facts["cg_p99"].append(p99_ms)
                facts["cg_serial_lag"].append(lag)
            elif layout == "cg-parallel-restore":
                facts["cg_parallel_lag"].append(lag)
            else:
                facts["independent_p99"].append(p99_ms)
    table.note("shared journal: one global order; independent journals: "
               "per-volume order only (E2 shows the consequence)")
    table.note("cg-parallel-restore: the shared journal applied with "
               "8-way non-conflicting parallelism — consistency at "
               "window boundaries, restore throughput of the "
               "independent layout")
    return table, facts


def _run_cg_scale_cell(layout: str, count: int, duration: float,
                       write_interval: float, seed: int,
                       restore_concurrency: int = 1):
    from repro.simulation.network import NetworkLink
    from repro.storage.adc import AdcConfig
    from repro.storage.array import ArrayConfig, StorageArray
    sim = Simulator(seed=seed)
    adc = AdcConfig(transfer_interval=0.002, transfer_batch=4096,
                    restore_interval=0.001, restore_batch=4096,
                    interval_jitter=0.3,
                    restore_concurrency=restore_concurrency)
    config = ArrayConfig(adc=adc)
    main = StorageArray(sim, serial="MAIN", config=config)
    backup = StorageArray(sim, serial="BKUP", config=config)
    main_pool = main.create_pool(10_000_000)
    backup_pool = backup.create_pool(10_000_000)
    link = NetworkLink(sim, latency=0.0025, name=f"e8-{layout}-{count}")
    group_ids = []
    if layout in ("consistency-group", "cg-parallel-restore"):
        main_journal = main.create_journal(main_pool.pool_id)
        backup_journal = backup.create_journal(backup_pool.pool_id)
        main.create_journal_group("cg", main_journal.journal_id, backup,
                                  backup_journal.journal_id, link)
        group_ids = ["cg"] * count
    else:
        for index in range(count):
            main_journal = main.create_journal(main_pool.pool_id)
            backup_journal = backup.create_journal(backup_pool.pool_id)
            main.create_journal_group(
                f"jg-{index}", main_journal.journal_id, backup,
                backup_journal.journal_id, link)
            group_ids.append(f"jg-{index}")
    pvols = []
    for index in range(count):
        pvol = main.create_volume(main_pool.pool_id, 4096)
        svol = backup.create_volume(backup_pool.pool_id, 4096)
        main.create_async_pair(f"pair-{index}", group_ids[index],
                               pvol.volume_id, backup, svol.volume_id)
        pvols.append(pvol)
    deadline = sim.now + duration

    def writer(sim, pvol, index):
        block = 0
        stream = f"e8.{layout}.{index}"
        while sim.now < deadline:
            yield from main.host_write(pvol.volume_id, block % 4096,
                                       b"x" * 128)
            block += 1
            yield sim.timeout(sim.rng.jitter(stream, write_interval,
                                             0.5))

    for index, pvol in enumerate(pvols):
        sim.spawn(writer(sim, pvol, index), name=f"e8-writer-{index}")
    sim.run(until=deadline)
    writes = main.host_writes.value
    p99_ms = main.write_latency.summary().p99 * 1e3
    groups = {main.journal_groups[g] for g in group_ids}
    lags = [g.lag_entries.mean() for g in groups if g.lag_entries.points]
    mean_lag = sum(lags) / len(lags) if lags else 0.0
    catchup_start = sim.now
    while any(g.entry_lag for g in groups):
        sim.run(until=sim.now + 0.01)
    catchup_ms = (sim.now - catchup_start) * 1e3
    return p99_ms, mean_lag, catchup_ms, writes


# ---------------------------------------------------------------------------
# D0 — the full demonstration (§IV, Figs 2-6)
# ---------------------------------------------------------------------------


def run_d0_demo(seed: int = 2025) -> Tuple[Table, Facts]:
    """The scripted three-step demonstration, summarised as a table."""
    from repro.scenarios import run_demo
    from repro.scenarios.builders import SystemConfig
    from repro.scenarios.business import BusinessConfig
    from repro.storage.adc import AdcConfig
    from repro.storage.array import ArrayConfig
    adc = AdcConfig(transfer_interval=0.002, transfer_batch=2048,
                    restore_interval=0.001, restore_batch=2048,
                    interval_jitter=0.25)
    environment = run_demo(
        seed=seed,
        system_config=SystemConfig(link_latency=0.0025,
                                   array=ArrayConfig(adc=adc),
                                   command_latency=0.010),
        business_config=BusinessConfig(wal_blocks=40_000),
        analytics_delay=0.3)
    result = environment.result
    table = Table(
        title="D0: the three-step demonstration (Figs 2-6)",
        columns=("step", "observable", "value"))
    table.add_row("backup configuration", "backup PVs before tag",
                  len(result.backup_pvs_before))
    table.add_row("backup configuration", "backup PVs after tag",
                  len(result.backup_pvs_after))
    table.add_row("backup configuration", "namespace state",
                  result.namespace_state)
    table.add_row("backup configuration", "config latency (ms)",
                  result.configuration_seconds * 1e3)
    table.add_row("snapshot development", "snapshot cut consistent",
                  result.snapshot_cut.consistent)
    table.add_row("data analytics", "orders in report",
                  result.analytics.order_count)
    table.add_row("data analytics", "revenue in report",
                  result.analytics.total_revenue)
    table.add_row("zero downtime", "orders during demo",
                  result.orders_during_demo)
    table.add_row("zero downtime", "orders after analytics",
                  result.orders_after_analytics)
    facts: Facts = {
        "pvs_before": len(result.backup_pvs_before),
        "pvs_after": len(result.backup_pvs_after),
        "namespace_state": result.namespace_state,
        "snapshot_consistent": result.snapshot_cut.consistent,
        "analytics_orders": result.analytics.order_count,
        "orders_after_analytics": result.orders_after_analytics,
    }
    return table, facts
