"""P0 — hot-path microbenchmarks (the ``repro perf`` suite).

Unlike E1–E8 (which assert *simulated* behaviour), this suite measures
**wall-clock** cost of the hot paths the replication pipeline lives on:

* ``journal_append`` / ``journal_drain`` — raw :class:`JournalVolume`
  throughput in entries per wall second (the transfer loop's peek/trim
  access pattern);
* ``kernel_events`` — discrete-event kernel scheduling throughput
  (timeout events processed per wall second);
* ``restore_drain`` — end-to-end replication drain rate: a pre-filled
  main journal shipped and applied to secondary volumes, in entries per
  wall second (the C5 insight: the backup-side apply loop must keep up
  with the primary's ack rate or lag grows without bound).  Measured
  with the dependency-aware lane applier on (``AdcConfig.apply_lanes``);
* ``snapshot_under_restore`` — the same drain while quiesced snapshot
  groups churn on the secondary volumes and their memoized images are
  read repeatedly: restore throughput and analytics snapshots at once,
  which is the paper's actual operating point;
* ``host_write_e2e`` — end-to-end batched host-write ingest rate at the
  main site (install + journal append + history ack per write), in
  writes per wall second — the paper's "no impact on business
  processing" claim lives or dies on this path;
* ``e1_cell`` — wall seconds for one E1 scenario cell (full business
  stack), the macro guard that micro wins actually reach the workload;
* ``transfer_drain`` / ``initial_copy`` — **simulated-time** drain
  rates of the wire path on a latency+bandwidth-bound link: how fast
  the pipelined transfer window empties a pre-filled main journal, and
  how fast the delta-negotiated SDC bulk copy re-copies a 10%-dirty
  volume.  Simulated rates are fully deterministic (same value every
  run on every machine), so the regression gate is exact for them; they
  move when the *wire protocol* changes, not when the host gets slower;
* ``transfer_drain_reduced`` / ``wire_bytes_per_entry`` — the wire
  data-reduction engine on a duplicate-heavy payload profile over a
  thin link: the reduced drain rate, and the post-reduction bytes each
  drained entry costs (asserting the >=3x saving with a bit-identical
  secondary image).  Also simulated-time, so exact.

``run_perf`` returns the usual ``(table, facts)`` pair; the facts dict
carries a ``metrics`` sub-dict with explicit ``higher_is_better``
directions so :func:`compare_perf` can gate CI on regressions against a
committed ``BENCH_PERF.json`` baseline.

The suite is regression-oriented: absolute numbers are machine-
dependent, so CI compares *ratios* against the baseline recorded on the
same code revision, with a generous tolerance (default 30%).
"""

from __future__ import annotations

import contextlib
import gc
import json
import pathlib
import time
from typing import Dict, List, Optional, Tuple

from repro.bench.tables import Table

Facts = Dict[str, object]

#: benchmark sizes: full mode for local runs, quick mode for CI smoke
_SIZES = {
    "full": dict(journal_entries=300_000, kernel_events=300_000,
                 restore_entries=12_000, host_writes=200_000,
                 e1_duration=0.5, transfer_entries=40_000,
                 copy_blocks=4_096, reduced_entries=30_000,
                 wire_entries=20_000, snap_restore_entries=8_000),
    "quick": dict(journal_entries=100_000, kernel_events=100_000,
                  restore_entries=4_000, host_writes=60_000,
                  e1_duration=0.25, transfer_entries=8_000,
                  copy_blocks=1_024, reduced_entries=6_000,
                  wire_entries=4_000, snap_restore_entries=3_000),
}


def _disable_tracing(sim) -> None:
    """Exercise the tracer fast path when the running code has one."""
    sim.telemetry.tracer.enabled = False


@contextlib.contextmanager
def _no_gc():
    """Suppress cyclic GC inside a timed region (standard microbench
    hygiene: collection pauses otherwise dominate run-to-run noise)."""
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


# ---------------------------------------------------------------------------
# individual microbenchmarks
# ---------------------------------------------------------------------------


def bench_journal_append(entries: int) -> float:
    """Append throughput of one journal volume (entries per wall s)."""
    from repro.storage.journal import JournalVolume
    journal = JournalVolume(1, entries + 1, name="bench-append")
    payload = b"\x5a" * 128
    append = journal.append
    with _no_gc():
        started = time.perf_counter()
        for index in range(entries):
            append(7, index & 1023, payload, index + 1, 0.0)
        elapsed = time.perf_counter() - started
    return entries / elapsed


def bench_journal_drain(entries: int, batch: int = 512) -> float:
    """Transfer-style drain: peek a batch, trim through its last
    sequence, repeat until empty (entries per wall s)."""
    from repro.storage.journal import JournalVolume
    journal = JournalVolume(2, entries + 1, name="bench-drain")
    payload = b"\xa5" * 128
    for index in range(entries):
        journal.append(7, index & 1023, payload, index + 1, 0.0)
    drained = 0
    with _no_gc():
        started = time.perf_counter()
        while len(journal):
            window = journal.peek_batch(batch)
            journal.pop_through(window[-1].sequence)
            drained += len(window)
        elapsed = time.perf_counter() - started
    assert drained == entries
    return entries / elapsed


def bench_kernel_events(events: int, processes: int = 4) -> float:
    """Kernel scheduling throughput: timeout events per wall second."""
    from repro.simulation.kernel import Simulator
    sim = Simulator(seed=1)
    _disable_tracing(sim)
    per_process = events // processes

    def ticker(sim):
        for _ in range(per_process):
            yield sim.timeout(0.0001)

    for index in range(processes):
        sim.spawn(ticker(sim), name=f"bench-ticker-{index}")
    with _no_gc():
        started = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - started
    return (per_process * processes) / elapsed


def bench_restore_drain(entries: int, volumes: int = 2,
                        restore_concurrency: int = 8,
                        apply_lanes: int = 8) -> float:
    """End-to-end drain rate of a pre-filled main journal.

    Host writes fill the journal while the background loops are
    stopped; timing starts when the loops start and stops when the
    pipeline has fully applied everything to the secondary volumes.
    Runs with the dependency-aware lane applier on (``apply_lanes``);
    pass ``apply_lanes=1`` to measure the serial applier.
    """
    from repro.simulation.kernel import Simulator
    from repro.simulation.network import NetworkLink
    from repro.storage.adc import AdcConfig
    from repro.storage.array import ArrayConfig, StorageArray

    sim = Simulator(seed=3)
    _disable_tracing(sim)
    adc = AdcConfig(transfer_interval=0.0005, transfer_batch=4096,
                    restore_interval=0.0005, restore_batch=4096,
                    interval_jitter=0.0,
                    restore_concurrency=restore_concurrency,
                    apply_lanes=apply_lanes)
    config = ArrayConfig(adc=adc)
    main = StorageArray(sim, serial="PERF-MAIN", config=config)
    backup = StorageArray(sim, serial="PERF-BKUP", config=config)
    main_pool = main.create_pool(10_000_000)
    backup_pool = backup.create_pool(10_000_000)
    link = NetworkLink(sim, latency=0.001, name="perf-link")
    main_journal = main.create_journal(main_pool.pool_id, entries + 10)
    backup_journal = backup.create_journal(backup_pool.pool_id,
                                           entries + 10)
    main.create_journal_group("perf", main_journal.journal_id, backup,
                              backup_journal.journal_id, link)
    group = main.journal_groups["perf"]
    group.stop()
    pvols = []
    for index in range(volumes):
        pvol = main.create_volume(main_pool.pool_id, 4096)
        svol = backup.create_volume(backup_pool.pool_id, 4096)
        main.create_async_pair(f"perf-{index}", "perf", pvol.volume_id,
                               backup, svol.volume_id)
        pvols.append(pvol)

    payload = b"\x3c" * 128

    def writer(sim):
        for index in range(entries):
            pvol = pvols[index % volumes]
            yield from main.host_write(pvol.volume_id, index % 1024,
                                       payload)

    sim.run_until_complete(sim.spawn(writer(sim), name="perf-writer"))
    assert len(group.main_journal) == entries
    group.restart()
    with _no_gc():
        started = time.perf_counter()
        while group.entry_lag:
            sim.run(until=sim.now + 0.05)
        elapsed = time.perf_counter() - started
    return entries / elapsed


def bench_snapshot_under_restore(entries: int, volumes: int = 2,
                                 apply_lanes: int = 8,
                                 image_reads: int = 4) -> float:
    """Drain rate while analytics snapshots churn on the backup site.

    The paper's no-impact claim needs *both* at once: the restore
    applier keeps draining the journal while quiesced snapshot groups
    are created on the secondary volumes, their images read repeatedly
    (``image_blocks``/``frozen_version_map`` — the memoized COW path),
    and the groups rotated out.  Reported as drained entries per wall
    second; exercises the lane applier's consistency-cut barrier, the
    snapshot quiesce handshake, and the COW install fast path together.
    """
    from repro.simulation.kernel import Simulator
    from repro.simulation.network import NetworkLink
    from repro.storage.adc import AdcConfig
    from repro.storage.array import ArrayConfig, StorageArray

    sim = Simulator(seed=3)
    _disable_tracing(sim)
    adc = AdcConfig(transfer_interval=0.0005, transfer_batch=4096,
                    restore_interval=0.0005, restore_batch=4096,
                    interval_jitter=0.0, restore_concurrency=8,
                    apply_lanes=apply_lanes)
    config = ArrayConfig(adc=adc)
    main = StorageArray(sim, serial="PERF-MAIN", config=config)
    backup = StorageArray(sim, serial="PERF-BKUP", config=config)
    main_pool = main.create_pool(10_000_000)
    backup_pool = backup.create_pool(10_000_000)
    link = NetworkLink(sim, latency=0.001, name="perf-link")
    main_journal = main.create_journal(main_pool.pool_id, entries + 10)
    backup_journal = backup.create_journal(backup_pool.pool_id,
                                           entries + 10)
    main.create_journal_group("perf", main_journal.journal_id, backup,
                              backup_journal.journal_id, link)
    group = main.journal_groups["perf"]
    group.stop()
    pvols, svol_ids = [], []
    for index in range(volumes):
        pvol = main.create_volume(main_pool.pool_id, 4096)
        svol = backup.create_volume(backup_pool.pool_id, 4096)
        main.create_async_pair(f"perf-{index}", "perf", pvol.volume_id,
                               backup, svol.volume_id)
        pvols.append(pvol)
        svol_ids.append(svol.volume_id)

    payload = b"\x3c" * 128

    def writer(sim):
        for index in range(entries):
            pvol = pvols[index % volumes]
            yield from main.host_write(pvol.volume_id, index % 1024,
                                       payload)

    sim.run_until_complete(sim.spawn(writer(sim), name="perf-writer"))
    group.restart()

    def snapshotter(sim):
        generation = 0
        while group.entry_lag:
            generation += 1
            group_id = f"perf-sg-{generation}"
            snap_group = yield from backup.create_snapshot_group(
                group_id, svol_ids)
            for _ in range(image_reads):
                for snapshot in snap_group.snapshots:
                    # memoized materializations: O(blocks) once, O(1)
                    # on every repeated analytics read
                    snapshot.image_blocks()
                    snapshot.frozen_version_map()
            backup.delete_snapshot_group(group_id)
            yield sim.timeout(0.002)

    with _no_gc():
        started = time.perf_counter()
        snap_proc = sim.spawn(snapshotter(sim), name="perf-snapshotter")
        while group.entry_lag:
            sim.run(until=sim.now + 0.05)
        sim.run_until_complete(snap_proc)
        elapsed = time.perf_counter() - started
    return entries / elapsed


def bench_host_write_e2e(writes: int, volumes: int = 2,
                         batch: int = 64) -> float:
    """End-to-end batched host-write ingest rate (writes per wall s).

    The full main-site pipeline a business write rides: validation,
    block install, journal append and history ack, issued through
    ``host_write_many`` in ``batch``-sized batches with the background
    transfer/restore loops stopped, so the measurement isolates ingest.
    """
    from repro.simulation.kernel import Simulator
    from repro.simulation.network import NetworkLink
    from repro.storage.adc import AdcConfig
    from repro.storage.array import ArrayConfig, StorageArray

    sim = Simulator(seed=5)
    _disable_tracing(sim)
    config = ArrayConfig(adc=AdcConfig(interval_jitter=0.0))
    main = StorageArray(sim, serial="PERF-INGT", config=config)
    backup = StorageArray(sim, serial="PERF-INGB", config=config)
    main_pool = main.create_pool(10_000_000)
    backup_pool = backup.create_pool(10_000_000)
    link = NetworkLink(sim, latency=0.001, name="perf-ingest-link")
    main_journal = main.create_journal(main_pool.pool_id, writes + 10)
    backup_journal = backup.create_journal(backup_pool.pool_id,
                                           writes + 10)
    main.create_journal_group("perf-ingest", main_journal.journal_id,
                              backup, backup_journal.journal_id, link)
    group = main.journal_groups["perf-ingest"]
    group.stop()
    pvols = []
    for index in range(volumes):
        pvol = main.create_volume(main_pool.pool_id, 4096)
        svol = backup.create_volume(backup_pool.pool_id, 4096)
        main.create_async_pair(f"perf-ingest-{index}", "perf-ingest",
                               pvol.volume_id, backup, svol.volume_id)
        pvols.append(pvol)

    payload = b"\x7e" * 128

    def writer(sim):
        for first in range(0, writes, batch):
            count = min(batch, writes - first)
            yield from main.host_write_many(
                [(pvols[(first + offset) % volumes].volume_id,
                  (first + offset) % 1024, payload)
                 for offset in range(count)])

    process = sim.spawn(writer(sim), name="perf-ingest-writer")
    with _no_gc():
        started = time.perf_counter()
        sim.run_until_complete(process)
        elapsed = time.perf_counter() - started
    assert len(group.main_journal) == writes
    assert len(main.history) == writes
    return writes / elapsed


def _transfer_drain_run(entries: int, window: int = 8,
                        bandwidth: float = 200e6,
                        payload_fn=None, reduction=None,
                        settle: bool = False) -> Dict[str, object]:
    """Drain a pre-filled main journal over a bandwidth-bound link.

    The shared world of the wire-path benchmarks: ``payload_fn(i)``
    shapes the write stream (default the historical constant 128-byte
    payload), ``reduction`` optionally enables the wire data-reduction
    engine, and ``settle=True`` additionally waits for the restore side
    so the secondary image can be compared.  Returns the drain rate in
    entries per simulated second, the wire bytes the link actually
    carried during the drain, and (when settled) the secondary image.
    """
    from repro.simulation.kernel import Simulator
    from repro.simulation.network import NetworkLink
    from repro.storage.adc import AdcConfig
    from repro.storage.array import ArrayConfig, StorageArray

    sim = Simulator(seed=11)
    _disable_tracing(sim)
    params = dict(transfer_interval=0.0005, transfer_batch=512,
                  transfer_window=window, adaptive_batch=True,
                  transfer_batch_min=256, transfer_batch_max=4096,
                  transfer_batch_step=256,
                  restore_interval=0.0005, restore_batch=4096,
                  restore_concurrency=8, interval_jitter=0.0)
    if reduction is not None:
        params["reduction"] = reduction
    config = ArrayConfig(adc=AdcConfig(**params))
    main = StorageArray(sim, serial="PERF-XFRM", config=config)
    backup = StorageArray(sim, serial="PERF-XFRB", config=config)
    main_pool = main.create_pool(10_000_000)
    backup_pool = backup.create_pool(10_000_000)
    link = NetworkLink(sim, latency=0.010,
                       bandwidth_bytes_per_s=bandwidth, name="perf-wan")
    main_journal = main.create_journal(main_pool.pool_id, entries + 10)
    backup_journal = backup.create_journal(backup_pool.pool_id,
                                           entries + 10)
    main.create_journal_group("perf-xfr", main_journal.journal_id,
                              backup, backup_journal.journal_id, link)
    group = main.journal_groups["perf-xfr"]
    group.stop()
    pvol = main.create_volume(main_pool.pool_id, 4096)
    svol = backup.create_volume(backup_pool.pool_id, 4096)
    main.create_async_pair("perf-xfr-0", "perf-xfr", pvol.volume_id,
                           backup, svol.volume_id)
    if payload_fn is None:
        constant = b"\x42" * 128
        payload_fn = lambda index: constant  # noqa: E731

    def writer(sim):
        for first in range(0, entries, 256):
            count = min(256, entries - first)
            yield from main.host_write_many(
                [(pvol.volume_id, (first + offset) % 1024,
                  payload_fn(first + offset))
                 for offset in range(count)])

    sim.run_until_complete(sim.spawn(writer(sim), name="perf-xfr-writer"))
    assert len(group.main_journal) == entries
    bytes_before = link.bytes_transferred
    group.restart()
    started = sim.now
    # the main journal is trimmed only after the backup site ingested a
    # batch, so "main journal empty" means every entry crossed the wire
    while len(group.main_journal):
        sim.run(until=sim.now + 0.001)
    elapsed = sim.now - started
    wire_bytes = link.bytes_transferred - bytes_before
    image = None
    if settle:
        while group.entry_lag:
            sim.run(until=sim.now + 0.001)
        image = {block: (value.payload, value.version)
                 for block, value in svol.block_map().items()}
    return {"rate": entries / elapsed, "wire_bytes": wire_bytes,
            "image": image}


#: the duplicate-heavy seeded workload profile of the reduction
#: benchmarks: 2 KiB pages cycling a pool of 32 distinct contents —
#: rewritten hot pages, the shape fingerprint dedup exists for
def _duplicate_profile():
    from repro.apps.workload import PayloadProfile
    return PayloadProfile(kind="duplicate", size_bytes=2048, seed=29,
                          unique_payloads=32)


def bench_transfer_drain(entries: int, window: int = 8) -> float:
    """Pipelined wire-path drain rate in entries per **simulated** s.

    A pre-filled main journal drains over a 10 ms / 200 MB/s link with
    ``window`` batches in flight and adaptive batch sizing on.  The
    clock is simulated time, so the value is deterministic: it moves
    when the transfer protocol changes (batching, pipelining, window
    management), never when the host machine does.  ``window=1``
    reproduces the old stop-and-wait behaviour for comparison.
    """
    return _transfer_drain_run(entries, window=window)["rate"]


def bench_transfer_drain_reduced(entries: int) -> float:
    """Reduced wire-path drain rate in entries per **simulated** s.

    The duplicate-heavy profile drained over a deliberately thin
    20 MB/s link with the wire data-reduction engine on: almost every
    payload ships as a fingerprint reference, so the drain runs at a
    small multiple of the link's verbatim capacity.  Deterministic
    (simulated time); regressions here mean the reduction protocol
    stopped taking bytes off the wire.
    """
    from repro.storage.reduction import ReductionConfig
    profile = _duplicate_profile()
    return _transfer_drain_run(
        entries, bandwidth=20e6, payload_fn=profile.payload,
        reduction=ReductionConfig(enabled=True))["rate"]


def bench_wire_bytes_per_entry(entries: int) -> float:
    """Post-reduction wire bytes per drained entry (lower is better).

    Runs the duplicate-heavy drain twice — reduction off, then on —
    over the same thin link and asserts the hypothesis property of the
    reduction engine: the reduced run must move at least 3x fewer wire
    bytes while converging the secondary to a bit-identical image.
    Returns the reduced run's bytes-per-entry.
    """
    from repro.storage.reduction import ReductionConfig
    profile = _duplicate_profile()
    plain = _transfer_drain_run(entries, bandwidth=20e6,
                                payload_fn=profile.payload, settle=True)
    reduced = _transfer_drain_run(entries, bandwidth=20e6,
                                  payload_fn=profile.payload,
                                  reduction=ReductionConfig(enabled=True),
                                  settle=True)
    assert reduced["image"] == plain["image"], \
        "reduction changed the converged secondary image"
    assert reduced["wire_bytes"] * 3 <= plain["wire_bytes"], \
        (reduced["wire_bytes"], plain["wire_bytes"])
    return reduced["wire_bytes"] / entries


def bench_initial_copy(blocks: int) -> float:
    """Delta-negotiated bulk re-copy rate in blocks per **simulated** s.

    A fully copied synchronous pair gets 10% of its blocks rewritten at
    the primary, then ``initial_copy`` runs again: the per-block
    ``(version, crc32)`` negotiation must skip the 90% the secondary
    already holds and ship the stale 10% in batched payload transfers.
    Simulated time, so deterministic; also asserts the re-copy moved at
    least 5x fewer wire bytes than a full copy would.
    """
    from repro.simulation.kernel import Simulator
    from repro.simulation.network import NetworkLink
    from repro.storage.array import ArrayConfig, StorageArray

    sim = Simulator(seed=13)
    _disable_tracing(sim)
    main = StorageArray(sim, serial="PERF-SDCM", config=ArrayConfig())
    backup = StorageArray(sim, serial="PERF-SDCB", config=ArrayConfig())
    main_pool = main.create_pool(10_000_000)
    backup_pool = backup.create_pool(10_000_000)
    link = NetworkLink(sim, latency=0.005,
                       bandwidth_bytes_per_s=500e6, name="perf-sdc-wan")
    pvol = main.create_volume(main_pool.pool_id, blocks)
    svol = backup.create_volume(backup_pool.pool_id, blocks)
    for block in range(blocks):
        pvol.install_block(block, b"\x6b" * 128)
    mirror = main.create_sync_mirror("perf-sdc", link)
    pair = main.create_sync_pair("perf-sdc-0", "perf-sdc",
                                 pvol.volume_id, backup, svol.volume_id)
    while not pair.initial_copy_done:
        sim.run(until=sim.now + 0.05)
    for block in range(0, blocks, 10):
        pvol.install_block(block, b"\x7c" * 128)
    bytes_before = link.bytes_transferred
    started = sim.now
    sim.run_until_complete(
        sim.spawn(mirror.initial_copy("perf-sdc-0"),
                  name="perf-sdc-recopy"))
    elapsed = sim.now - started
    delta_bytes = link.bytes_transferred - bytes_before
    full_bytes = blocks * mirror.config.block_size_bytes
    assert delta_bytes * 5 <= full_bytes, (delta_bytes, full_bytes)
    return blocks / elapsed


def bench_e1_cell(duration: float) -> float:
    """Wall seconds for one E1 scenario cell (lower is better)."""
    from repro.apps import WorkloadConfig, run_order_workload
    from repro.bench.setups import MODE_ADC_CG, build_business_system

    started = time.perf_counter()
    experiment = build_business_system(seed=100, mode=MODE_ADC_CG,
                                       link_latency=0.005)
    run_order_workload(
        experiment.sim, experiment.business.app,
        WorkloadConfig(client_count=4, duration=duration))
    return time.perf_counter() - started


# ---------------------------------------------------------------------------
# the suite
# ---------------------------------------------------------------------------


#: suite order: (name, size key, unit, higher_is_better).  One row per
#: microbenchmark; ``_run_one_bench`` resolves the callable, so the
#: spec stays picklable for the ``--jobs`` fan-out.
_SUITE = (
    ("journal_append", "journal_entries", "entries/s", True),
    ("journal_drain", "journal_entries", "entries/s", True),
    ("kernel_events", "kernel_events", "events/s", True),
    ("restore_drain", "restore_entries", "entries/s", True),
    ("snapshot_under_restore", "snap_restore_entries", "entries/s", True),
    ("host_write_e2e", "host_writes", "writes/s", True),
    ("e1_cell", "e1_duration", "seconds", False),
    ("transfer_drain", "transfer_entries", "entries/sim-s", True),
    ("transfer_drain_reduced", "reduced_entries", "entries/sim-s", True),
    ("wire_bytes_per_entry", "wire_entries", "bytes/entry", False),
    ("initial_copy", "copy_blocks", "blocks/sim-s", True),
)

_BENCH_FNS = {
    "journal_append": bench_journal_append,
    "journal_drain": bench_journal_drain,
    "kernel_events": bench_kernel_events,
    "restore_drain": bench_restore_drain,
    "snapshot_under_restore": bench_snapshot_under_restore,
    "host_write_e2e": bench_host_write_e2e,
    "e1_cell": bench_e1_cell,
    "transfer_drain": bench_transfer_drain,
    "transfer_drain_reduced": bench_transfer_drain_reduced,
    "wire_bytes_per_entry": bench_wire_bytes_per_entry,
    "initial_copy": bench_initial_copy,
}


def _run_one_bench(cell: Tuple[str, str, int]) -> Dict[str, object]:
    """One named microbenchmark, best-of-N (a ParallelRunner cell).

    Best-of-N: each repeat rebuilds its world from scratch, and the
    best run is the one least disturbed by allocator/page noise — the
    standard estimator for short timed regions.
    """
    name, mode, repeats = cell
    size_key, unit, higher_is_better = next(
        (spec[1], spec[2], spec[3]) for spec in _SUITE if spec[0] == name)
    measure = _BENCH_FNS[name]
    size = _SIZES[mode][size_key]
    values = [measure(size) for _ in range(repeats)]
    best = max(values) if higher_is_better else min(values)
    return {"value": best, "unit": unit,
            "higher_is_better": higher_is_better}


def run_perf(quick: bool = False, jobs: int = 1) -> Tuple[Table, Facts]:
    """Run every microbenchmark; returns ``(table, facts)``.

    ``facts["metrics"]`` maps benchmark name to ``{"value", "unit",
    "higher_is_better"}`` — the schema :func:`compare_perf` checks.

    ``jobs`` shards the benchmarks across worker processes
    (deterministic merge in suite order).  The table *structure* is
    identical for any job count, but concurrent benchmarks contend for
    the same cores, so the wall-clock *values* read lower than a
    serial run — use ``jobs>1`` for quick comparative sweeps, never to
    record a baseline.
    """
    from repro.bench.parallel import ParallelRunner

    mode = "quick" if quick else "full"
    cells = [(spec[0], mode, 3) for spec in _SUITE]
    results = ParallelRunner(jobs).map(_run_one_bench, cells)
    metrics: Dict[str, Dict[str, object]] = {
        cell[0]: result for cell, result in zip(cells, results)}

    table = Table(
        title=f"P0: hot-path microbenchmarks ({mode} mode)",
        columns=("benchmark", "value", "unit", "direction"))
    for name in sorted(metrics):
        metric = metrics[name]
        table.add_row(name, float(metric["value"]), metric["unit"],
                      "higher" if metric["higher_is_better"] else "lower")
    table.note("wall-clock measurements; compare ratios against a "
               "baseline from the same machine class, not absolutes")
    table.note("transfer_drain, transfer_drain_reduced, "
               "wire_bytes_per_entry and initial_copy are simulated-time "
               "metrics: deterministic and machine-independent")
    facts: Facts = {"mode": mode, "metrics": metrics}
    return table, facts


# ---------------------------------------------------------------------------
# baseline comparison (the CI regression gate)
# ---------------------------------------------------------------------------


def compare_perf(facts: Facts, baseline: Facts,
                 max_regression: float = 0.30) -> List[str]:
    """Regression messages for metrics worse than baseline by more than
    ``max_regression`` (fraction); empty list means the gate passes.

    Metrics present on only one side are skipped (the suite may grow),
    so a new benchmark never fails the gate retroactively.  Comparing
    across suite modes is rejected: quick and full runs amortise fixed
    pipeline costs over different workload sizes, so their absolute
    rates are not comparable (e.g. restore_drain reads ~45% lower in
    quick mode on identical code).
    """
    if not 0 < max_regression < 1:
        raise ValueError(
            f"max_regression must be in (0, 1): {max_regression}")
    mode, base_mode = facts.get("mode"), baseline.get("mode")
    if mode and base_mode and mode != base_mode:
        raise ValueError(
            f"cannot compare a {mode!r}-mode run against a "
            f"{base_mode!r}-mode baseline; rerun with matching sizes")
    problems: List[str] = []
    current = facts.get("metrics", {})
    reference = baseline.get("metrics", {})
    for name in sorted(set(current) & set(reference)):
        value = float(current[name]["value"])
        base = float(reference[name]["value"])
        if base <= 0 or value <= 0:
            continue
        if current[name].get("higher_is_better", True):
            ratio = value / base
            if ratio < 1.0 - max_regression:
                problems.append(
                    f"{name}: {value:,.0f} is {1 - ratio:.0%} below "
                    f"baseline {base:,.0f} "
                    f"(allowed {max_regression:.0%})")
        else:
            ratio = value / base
            if ratio > 1.0 + max_regression:
                problems.append(
                    f"{name}: {value:.3f}s is {ratio - 1:.0%} above "
                    f"baseline {base:.3f}s "
                    f"(allowed {max_regression:.0%})")
    return problems


def perf_delta_lines(facts: Facts, baseline: Facts) -> List[str]:
    """Per-benchmark delta vs baseline, one formatted line each.

    Printed by ``repro perf --check`` so a regression (or a win) names
    the offending benchmark even when the gate passes.  Metrics present
    on only one side are reported as such rather than skipped silently.
    """
    current = facts.get("metrics", {})
    reference = baseline.get("metrics", {})
    lines: List[str] = []
    for name in sorted(set(current) | set(reference)):
        if name not in reference:
            lines.append(f"{name:16} (new — no baseline entry)")
            continue
        if name not in current:
            lines.append(f"{name:16} (baseline only — not measured)")
            continue
        value = float(current[name]["value"])
        base = float(reference[name]["value"])
        unit = current[name].get("unit", "")
        if base <= 0 or value <= 0:
            lines.append(f"{name:16} (not comparable)")
            continue
        higher = current[name].get("higher_is_better", True)
        # delta > 0 always means "better", whichever the direction
        delta = value / base - 1.0 if higher else base / value - 1.0
        lines.append(
            f"{name:16} {value:>14,.1f} vs {base:>14,.1f} {unit:10} "
            f"{delta:+7.1%}")
    return lines


def write_perf_json(path: pathlib.Path, table: Table,
                    facts: Facts) -> pathlib.Path:
    """Write the suite's ``BENCH_PERF.json`` (same shape the E-series
    benchmarks emit via the benchmarks/ conftest)."""
    payload = {
        "experiment": "run_perf",
        "title": table.title,
        "columns": list(table.columns),
        "rows": [list(row) for row in table.rows],
        "notes": list(table.notes),
        "facts": facts,
    }
    path = pathlib.Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_perf_baseline(path: pathlib.Path) -> Facts:
    """The facts dict of a previously written ``BENCH_PERF.json``."""
    payload = json.loads(pathlib.Path(path).read_text())
    return payload["facts"]
