"""EXPERIMENTS.md table generation.

``python -m repro.bench.report`` runs every experiment at the benchmark
parameters and prints the markdown tables EXPERIMENTS.md embeds, so the
recorded results can be regenerated with one command.
"""

from __future__ import annotations

import sys
import time

from repro.bench.experiments import (run_d0_demo, run_e1_slowdown,
                                     run_e2_collapse, run_e3_operator,
                                     run_e4_snapshot, run_e5_analytics,
                                     run_e6_downtime, run_e7_journal,
                                     run_e8_cg_scale)

RUNNERS = (
    ("E1", run_e1_slowdown, dict(rtt_ms_values=(1.0, 5.0, 10.0, 25.0),
                                 duration=1.0, clients=4)),
    ("E2", run_e2_collapse, dict(seeds=tuple(range(1000, 1012)),
                                 load_time=0.35, clients=6)),
    ("E3", run_e3_operator, dict(volume_counts=(2, 4, 8, 16))),
    ("E4", run_e4_snapshot, dict(seeds=tuple(range(400, 408)),
                                 load_time=0.25)),
    ("E5", run_e5_analytics, dict(window=1.0, repeats=3)),
    ("E6", run_e6_downtime, dict(seeds=tuple(range(1000, 1006)),
                                 load_time=0.3)),
    ("E7", run_e7_journal, dict(intervals_ms=(1.0, 5.0, 20.0, 50.0),
                                seeds=(700, 701, 702), load_time=0.3)),
    ("E8", run_e8_cg_scale, dict(volume_counts=(2, 4, 8, 16),
                                 duration=0.5)),
    ("D0", run_d0_demo, dict(seed=2025)),
)


def main(markdown: bool = True) -> None:
    """Run every experiment and print its table."""
    for name, runner, kwargs in RUNNERS:
        started = time.time()
        table, _facts = runner(**kwargs)
        wall = time.time() - started
        print(f"<!-- {name}: regenerated in {wall:.1f}s wall -->"
              if markdown else f"[{name}] {wall:.1f}s")
        print(table.render_markdown() if markdown else table.render())
        print()


if __name__ == "__main__":
    main(markdown="--text" not in sys.argv)
