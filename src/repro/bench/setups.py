"""Experiment setups: one protected business process per backup mode.

The benchmarks compare four configurations of the same business process:

* ``none``    — no backup at all (the latency floor);
* ``sdc``     — synchronous data copy (the §V baseline that slows the
  business down);
* ``adc-cg``  — asynchronous data copy inside one consistency group
  (the paper's system);
* ``adc-nocg`` — asynchronous data copy with independent per-volume
  journals (the §I collapse-prone configuration).

ADC modes are configured exactly as the paper does — by tagging the
namespace and letting the namespace operator do the work.  SDC has no
operator path (the paper's plugin only automates ADC), so
:func:`configure_sdc_protection` performs the manual array
configuration an administrator would, including registering the
secondary PVs at the backup site so failover discovery works the same
way in every mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.csi.replication_plugin import SECONDARY_PV_LABEL
from repro.errors import ReproError
from repro.operator import (TAG_CONSISTENT, TAG_INDEPENDENT, TAG_KEY,
                            install_namespace_operator)
from repro.platform.resources import PersistentVolume
from repro.scenarios.builders import (SystemConfig, TwoSiteSystem,
                                      build_system)
from repro.scenarios.business import (BusinessConfig, BusinessProcess,
                                      deploy_business_process)
from repro.simulation.kernel import Simulator
from repro.storage.adc import AdcConfig
from repro.storage.array import ArrayConfig
from repro.storage.replication import PairState

MODE_NONE = "none"
MODE_SDC = "sdc"
MODE_ADC_CG = "adc-cg"
MODE_ADC_NOCG = "adc-nocg"

ALL_MODES = (MODE_NONE, MODE_SDC, MODE_ADC_CG, MODE_ADC_NOCG)


@dataclass
class ExperimentSystem:
    """One ready-to-measure system: topology + protected business."""

    sim: Simulator
    system: TwoSiteSystem
    business: BusinessProcess
    mode: str


def experiment_config(link_latency: float = 0.0025,
                      adc_overrides: Optional[dict] = None,
                      command_latency: float = 0.010) -> SystemConfig:
    """System config used by the experiments (tight, low-jitter ADC
    unless overridden)."""
    adc_params = dict(transfer_interval=0.002, transfer_batch=2048,
                      restore_interval=0.001, restore_batch=2048,
                      interval_jitter=0.25)
    adc_params.update(adc_overrides or {})
    return SystemConfig(link_latency=link_latency,
                        array=ArrayConfig(adc=AdcConfig(**adc_params)),
                        command_latency=command_latency)


def build_business_system(seed: int, mode: str,
                          link_latency: float = 0.0025,
                          adc_overrides: Optional[dict] = None,
                          wal_blocks: int = 40_000,
                          settle: float = 4.0) -> ExperimentSystem:
    """Build the two-site system and a business protected per ``mode``."""
    if mode not in ALL_MODES:
        raise ReproError(f"unknown experiment mode {mode!r}")
    sim = Simulator(seed=seed)
    system = build_system(sim, experiment_config(
        link_latency=link_latency, adc_overrides=adc_overrides))
    if mode in (MODE_ADC_CG, MODE_ADC_NOCG):
        install_namespace_operator(system.main.cluster)
    business = deploy_business_process(
        system, BusinessConfig(wal_blocks=wal_blocks))
    if mode in (MODE_ADC_CG, MODE_ADC_NOCG):
        tag = TAG_CONSISTENT if mode == MODE_ADC_CG else TAG_INDEPENDENT
        system.main.console.tag_namespace(business.namespace, TAG_KEY,
                                          tag)
        sim.run(until=sim.now + settle)
        _require_paired(system, business, mode)
    elif mode == MODE_SDC:
        configure_sdc_protection(system, business)
        sim.run(until=sim.now + settle)
        _require_sdc_paired(system)
    return ExperimentSystem(sim=sim, system=system, business=business,
                            mode=mode)


def _require_paired(system: TwoSiteSystem, business: BusinessProcess,
                    mode: str) -> None:
    from repro.csi.crds import ConsistencyGroupReplication, STATE_PAIRED
    cr = system.main.api.try_get(
        ConsistencyGroupReplication, f"nso-{business.namespace}",
        business.namespace)
    if cr is None or cr.status.state != STATE_PAIRED:
        state = cr.status.state if cr else "absent"
        raise ReproError(
            f"{mode}: replication never reached Paired (state={state}); "
            "increase the settle time")


SDC_MIRROR_ID = "sdc-business"


def configure_sdc_protection(system: TwoSiteSystem,
                             business: BusinessProcess) -> None:
    """Manually configure synchronous mirroring of the business volumes.

    Performs the per-volume array commands an administrator would and
    registers labelled secondary PVs at the backup cluster, so the same
    :class:`~repro.recovery.failover.FailoverManager` path works for the
    SDC baseline.
    """
    main = system.main
    backup = system.backup
    main.array.create_sync_mirror(SDC_MIRROR_ID, system.replication_link)
    for pvc_name, pvol_id in sorted(business.volume_ids.items()):
        pvol = main.array.get_volume(pvol_id)
        svol = backup.array.create_volume(
            backup.pool_id, pvol.capacity_blocks,
            name=f"sdc-{pvc_name}-svol")
        main.array.create_sync_pair(
            f"sdc/{pvc_name}", SDC_MIRROR_ID, pvol_id, backup.array,
            svol.volume_id)
        pv = PersistentVolume()
        pv.meta.name = f"pv-{business.namespace}-{pvc_name}-replica"
        pv.meta.labels = {
            SECONDARY_PV_LABEL: f"{business.namespace}.sdc",
            "replication.hitachi.com/pvc": pvc_name,
        }
        pv.spec.capacity_blocks = pvol.capacity_blocks
        pv.spec.storage_class = "sdc-manual"
        pv.spec.csi.driver = backup.driver.driver_name
        pv.spec.csi.volume_handle = backup.array.volume_handle(
            svol.volume_id)
        pv.spec.csi.array_serial = backup.array.serial
        backup.api.create(pv)


def _require_sdc_paired(system: TwoSiteSystem) -> None:
    mirror = system.main.array.sync_mirrors[SDC_MIRROR_ID]
    not_paired = [pair_id for pair_id, pair in mirror.pairs.items()
                  if pair.state is not PairState.PAIR]
    if not_paired:
        raise ReproError(
            f"sdc: pairs never reached PAIR: {not_paired}")


def business_journal_groups(experiment: ExperimentSystem):
    """The journal groups protecting the business (ADC modes)."""
    return [group for group_id, group in
            sorted(experiment.system.main.array.journal_groups.items())
            if group_id.startswith("jg-")]
