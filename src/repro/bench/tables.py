"""Result tables for the experiment harness.

Each benchmark prints one :class:`Table` whose rows are the series the
paper's claims predict; EXPERIMENTS.md embeds the same rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence


@dataclass
class Table:
    """A fixed-column result table with aligned text rendering."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        """Append one row; must match the column count."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for "
                f"{len(self.columns)} columns")
        self.rows.append(values)

    def note(self, text: str) -> None:
        """Attach a footnote shown under the table."""
        self.notes.append(text)

    def column(self, name: str) -> List[object]:
        """All values of one column."""
        index = list(self.columns).index(name)
        return [row[index] for row in self.rows]

    def _cell(self, value: object) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000:
                return f"{value:,.0f}"
            if abs(value) >= 10:
                return f"{value:.1f}"
            return f"{value:.3f}"
        return str(value)

    def render(self) -> str:
        """Aligned plain-text rendering."""
        cells = [[self._cell(v) for v in row] for row in self.rows]
        widths = [max([len(str(c))] + [len(row[i]) for row in cells])
                  for i, c in enumerate(self.columns)]
        lines = [f"== {self.title} =="]
        header = "  ".join(str(c).ljust(w)
                           for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(v.ljust(w)
                                   for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """GitHub-flavoured markdown rendering (for EXPERIMENTS.md)."""
        lines = [f"**{self.title}**", ""]
        lines.append("| " + " | ".join(map(str, self.columns)) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(self._cell(v) for v in row)
                         + " |")
        for note in self.notes:
            lines.append(f"\n*{note}*")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
