"""Experiment harness shared by ``benchmarks/`` and EXPERIMENTS.md.

One runner per experiment (see DESIGN.md §4): ``run_e1_slowdown`` …
``run_e8_cg_scale`` and ``run_d0_demo``, plus the :class:`Table`
renderer and the per-mode system setups.
"""

from repro.bench.experiments import (run_d0_demo, run_e1_slowdown,
                                     run_e2_collapse, run_e3_operator,
                                     run_e4_snapshot, run_e5_analytics,
                                     run_e6_downtime, run_e7_journal,
                                     run_e8_cg_scale)
from repro.bench.parallel import ParallelRunner, default_jobs, resolve_jobs
from repro.bench.perf import (compare_perf, load_perf_baseline,
                              perf_delta_lines, run_perf, write_perf_json)
from repro.bench.setups import (ALL_MODES, MODE_ADC_CG, MODE_ADC_NOCG,
                                MODE_NONE, MODE_SDC, ExperimentSystem,
                                build_business_system,
                                configure_sdc_protection,
                                experiment_config)
from repro.bench.tables import Table

__all__ = [
    "ALL_MODES",
    "ExperimentSystem",
    "MODE_ADC_CG",
    "MODE_ADC_NOCG",
    "MODE_NONE",
    "MODE_SDC",
    "ParallelRunner",
    "Table",
    "build_business_system",
    "compare_perf",
    "configure_sdc_protection",
    "default_jobs",
    "experiment_config",
    "load_perf_baseline",
    "perf_delta_lines",
    "resolve_jobs",
    "run_d0_demo",
    "run_e1_slowdown",
    "run_e2_collapse",
    "run_e3_operator",
    "run_e4_snapshot",
    "run_e5_analytics",
    "run_e6_downtime",
    "run_e7_journal",
    "run_e8_cg_scale",
    "run_perf",
    "write_perf_json",
]
