"""Deterministic multiprocessing fan-out for cell-shaped work.

Experiments (E1's mode × RTT grid, E7's interval × seed grid), the perf
suite's independent microbenchmarks and chaos-campaign seeds all share
one shape: a list of *cells* that are pairwise independent — each cell
builds its own :class:`~repro.simulation.kernel.Simulator` from its own
seed and never touches another cell's state.  :class:`ParallelRunner`
shards such a cell list across ``multiprocessing`` workers and merges
the results **in input order** (by cell key, never by completion
order), so the merged tables and facts are identical to a serial run:

* ``jobs=1`` (the default) does not import multiprocessing at all —
  the cells run inline, bit-identical to the pre-fan-out code;
* ``jobs>1`` forks workers (fork keeps the already-imported modules;
  spawn is the fallback where fork is unavailable).  Cell workers must
  be **top-level functions** taking one picklable argument — the usual
  ``multiprocessing`` contract.

Determinism holds because every cell derives all randomness from the
seed inside its argument tuple; the only cross-cell state in the
simulator stack is the debug id counters (``Event.event_id``,
``Process.process_id``), which never feed behaviour, digests or
tables.
"""

from __future__ import annotations

import os
from typing import Callable, List, Sequence, TypeVar

Cell = TypeVar("Cell")
Result = TypeVar("Result")


def default_jobs() -> int:
    """Worker count for ``--jobs 0`` (one per available CPU)."""
    return os.cpu_count() or 1


def resolve_jobs(jobs: int) -> int:
    """Normalise a ``--jobs`` value: 0 means one worker per CPU."""
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return default_jobs() if jobs == 0 else jobs


class ParallelRunner:
    """Maps a top-level worker function over independent cells.

    Parameters
    ----------
    jobs:
        Maximum concurrent workers.  ``1`` runs the cells inline in
        the calling process (no multiprocessing import, bit-identical
        behaviour); ``0`` means one worker per CPU.
    """

    def __init__(self, jobs: int = 1) -> None:
        self.jobs = resolve_jobs(jobs)

    def map(self, worker: Callable[[Cell], Result],
            cells: Sequence[Cell]) -> List[Result]:
        """``[worker(cell) for cell in cells]``, possibly in parallel.

        Results always come back in ``cells`` order regardless of
        which worker finished first — the deterministic-merge
        guarantee every caller relies on.
        """
        cells = list(cells)
        if self.jobs <= 1 or len(cells) <= 1:
            return [worker(cell) for cell in cells]
        import multiprocessing

        method = ("fork" if "fork" in
                  multiprocessing.get_all_start_methods() else "spawn")
        context = multiprocessing.get_context(method)
        processes = min(self.jobs, len(cells))
        with context.Pool(processes=processes) as pool:
            # Pool.map preserves input order by construction
            return pool.map(worker, cells)
