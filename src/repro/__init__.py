"""repro — reproduction of the ICDE 2025 demonstration paper
"Data Backup System with No Impact on Business Processing Utilizing
Storage and Container Technologies" (S. Watanabe, Hitachi).

The package provides, on fully simulated substrates:

* ``repro.simulation`` — deterministic discrete-event kernel;
* ``repro.storage`` — enterprise storage array (volumes, journals,
  async/sync replication, consistency groups, snapshots);
* ``repro.platform`` — Kubernetes-style container platform;
* ``repro.csi`` — CSI driver + vendor storage/replication plugins;
* ``repro.operator`` — the paper's namespace operator;
* ``repro.apps`` — MiniDB (WAL + 2PC) and the e-commerce/analytics apps;
* ``repro.recovery`` — failover, consistency checking, RPO/RTO;
* ``repro.scenarios`` — two-site system builder and the scripted demo;
* ``repro.bench`` — experiment harness shared by the benchmarks.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-claim-to-experiment mapping.
"""

__version__ = "1.0.0"

# Convenience re-exports of the most common entry points; subsystem
# packages remain the canonical import locations.
from repro.simulation import Simulator  # noqa: E402
from repro.scenarios import (  # noqa: E402
    BusinessConfig, SystemConfig, build_system,
    deploy_business_process, run_demo)
from repro.operator import (  # noqa: E402
    TAG_CONSISTENT, TAG_INDEPENDENT, TAG_KEY, TAG_SUSPEND,
    install_namespace_operator)
from repro.recovery import fail_and_recover  # noqa: E402

__all__ = [
    "BusinessConfig",
    "Simulator",
    "SystemConfig",
    "TAG_CONSISTENT",
    "TAG_INDEPENDENT",
    "TAG_KEY",
    "TAG_SUSPEND",
    "__version__",
    "build_system",
    "deploy_business_process",
    "fail_and_recover",
    "install_namespace_operator",
    "run_demo",
]
