"""Platform events: the operator's observable audit trail.

Kubernetes operators surface progress as Event objects attached to the
resources they manage; the demo console shows them to the user.  The
namespace operator and the replication plugin record events on state
transitions, so the "screen" of the demonstration can narrate what the
automation is doing (Figs 3-4's storyline) without the user reading
controller logs.

Events deduplicate the Kubernetes way: re-recording the same
(involved object, reason) increments a count instead of creating a new
object.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import ClassVar, List

from repro.errors import InvalidObjectError
from repro.platform.apiserver import ApiServer
from repro.platform.objects import ApiObject, ObjectKey


@dataclass
class PlatformEvent(ApiObject):
    """One recorded event (kind name ``Event`` on the API surface)."""

    KIND: ClassVar[str] = "Event"
    NAMESPACED: ClassVar[bool] = True

    #: "Kind/namespace/name" of the object the event is about
    involved: str = ""
    reason: str = ""
    message: str = ""
    #: the controller that recorded it
    source: str = ""
    count: int = 1
    first_seen: float = 0.0
    last_seen: float = 0.0

    def validate(self) -> None:
        super().validate()
        if not self.reason:
            raise InvalidObjectError("events need a reason")
        if not self.involved:
            raise InvalidObjectError("events need an involved object")

    def __str__(self) -> str:
        suffix = f" (x{self.count})" if self.count > 1 else ""
        return (f"[{self.last_seen:10.6f}] {self.reason}: "
                f"{self.message}{suffix}  ({self.involved})")


def _event_name(involved: str, reason: str) -> str:
    digest = zlib.crc32(f"{involved}:{reason}".encode())
    return f"evt-{digest:08x}"


def record_event(api: ApiServer, namespace: str, involved: ObjectKey,
                 reason: str, message: str, source: str) -> PlatformEvent:
    """Record (or de-duplicate into) an event about ``involved``."""
    involved_ref = str(involved)
    name = _event_name(involved_ref, reason)
    existing = api.try_get(PlatformEvent, name, namespace)
    if existing is not None:
        existing.count += 1
        existing.last_seen = api.sim.now
        existing.message = message
        return api.update(existing)
    event = PlatformEvent()
    event.meta.name = name
    event.meta.namespace = namespace
    event.involved = involved_ref
    event.reason = reason
    event.message = message
    event.source = source
    event.first_seen = api.sim.now
    event.last_seen = api.sim.now
    return api.create(event)


def events_for(api: ApiServer, namespace: str,
               involved: ObjectKey) -> List[PlatformEvent]:
    """Events about one object, oldest-first by last occurrence."""
    involved_ref = str(involved)
    matches = [event for event in api.list(PlatformEvent,
                                           namespace=namespace)
               if event.involved == involved_ref]
    matches.sort(key=lambda event: event.last_seen)
    return matches
