"""Built-in resource kinds of the simulated container platform.

These mirror the Kubernetes objects the paper's demonstration touches:
namespaces (the unit the business process lives in and the unit the
operator tags), persistent volume claims and persistent volumes (the
storage correspondence the operator unravels), storage classes (the CSI
provisioning contract), and pods (the application workloads inside the
namespace).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Dict, List

from repro.errors import InvalidObjectError
from repro.platform.objects import ApiObject


# ---------------------------------------------------------------------------
# Namespace
# ---------------------------------------------------------------------------


@dataclass
class Namespace(ApiObject):
    """A namespace partitions the application environment (§II).

    The paper's user starts a backup by *tagging* the namespace; tags are
    ordinary labels here (the demonstration's
    ``ConsistentCopyToCloud`` value goes on the
    ``backup.hitachi.com/consistency-copy`` label key).
    """

    KIND: ClassVar[str] = "Namespace"
    NAMESPACED: ClassVar[bool] = False

    phase: str = "Active"


# ---------------------------------------------------------------------------
# Storage classes, claims, volumes
# ---------------------------------------------------------------------------


@dataclass
class StorageClass(ApiObject):
    """Provisioning contract between PVCs and a CSI driver."""

    KIND: ClassVar[str] = "StorageClass"
    NAMESPACED: ClassVar[bool] = False

    provisioner: str = ""
    #: driver-specific parameters, e.g. {"poolId": "1"}
    parameters: Dict[str, str] = field(default_factory=dict)

    def validate(self) -> None:
        super().validate()
        if not self.provisioner:
            raise InvalidObjectError(
                f"StorageClass {self.meta.name!r} needs a provisioner")


@dataclass
class PvcSpec:
    """Desired state of a claim."""

    storage_class: str = ""
    capacity_blocks: int = 0
    #: set by the binder once a PV is selected
    volume_name: str = ""


@dataclass
class PvcStatus:
    """Observed state of a claim."""

    phase: str = "Pending"  # Pending -> Bound


@dataclass
class PersistentVolumeClaim(ApiObject):
    """A claim for storage by an application in a namespace."""

    KIND: ClassVar[str] = "PersistentVolumeClaim"
    NAMESPACED: ClassVar[bool] = True

    spec: PvcSpec = field(default_factory=PvcSpec)
    status: PvcStatus = field(default_factory=PvcStatus)

    def validate(self) -> None:
        super().validate()
        if self.spec.capacity_blocks < 1:
            raise InvalidObjectError(
                f"PVC {self.meta.name!r} needs capacity_blocks >= 1")
        if not self.spec.storage_class:
            raise InvalidObjectError(
                f"PVC {self.meta.name!r} needs a storage class")

    @property
    def bound(self) -> bool:
        """True once the claim is bound to a PV."""
        return self.status.phase == "Bound" and bool(self.spec.volume_name)


@dataclass
class CsiVolumeSource:
    """CSI attachment info recorded on a PV."""

    driver: str = ""
    volume_handle: str = ""
    #: serial of the array the handle belongs to
    array_serial: str = ""


@dataclass
class PvSpec:
    """Desired state of a persistent volume."""

    capacity_blocks: int = 0
    storage_class: str = ""
    csi: CsiVolumeSource = field(default_factory=CsiVolumeSource)
    #: "namespace/name" of the bound claim ("" while available)
    claim_ref: str = ""


@dataclass
class PvStatus:
    """Observed state of a persistent volume."""

    phase: str = "Available"  # Available -> Bound -> Released


@dataclass
class PersistentVolume(ApiObject):
    """A provisioned storage volume registered with the cluster.

    The Fig 3 → Fig 4 transition of the paper — "PVs appear in the
    backup site after tagging" — is the creation of these objects on the
    backup cluster by the replication plugin.
    """

    KIND: ClassVar[str] = "PersistentVolume"
    NAMESPACED: ClassVar[bool] = False

    spec: PvSpec = field(default_factory=PvSpec)
    status: PvStatus = field(default_factory=PvStatus)

    def validate(self) -> None:
        super().validate()
        if self.spec.capacity_blocks < 1:
            raise InvalidObjectError(
                f"PV {self.meta.name!r} needs capacity_blocks >= 1")


# ---------------------------------------------------------------------------
# Pods
# ---------------------------------------------------------------------------


@dataclass
class PodSpec:
    """Desired state of a pod."""

    image: str = ""
    #: names of PVCs (same namespace) the pod mounts
    pvc_names: List[str] = field(default_factory=list)


@dataclass
class PodStatus:
    """Observed state of a pod."""

    phase: str = "Pending"  # Pending -> Running


@dataclass
class Pod(ApiObject):
    """An application workload inside a namespace."""

    KIND: ClassVar[str] = "Pod"
    NAMESPACED: ClassVar[bool] = True

    spec: PodSpec = field(default_factory=PodSpec)
    status: PodStatus = field(default_factory=PodStatus)

    def validate(self) -> None:
        super().validate()
        if not self.spec.image:
            raise InvalidObjectError(
                f"Pod {self.meta.name!r} needs an image")


# ---------------------------------------------------------------------------
# Volume snapshots (the CSI snapshot API, §II)
# ---------------------------------------------------------------------------


@dataclass
class VolumeSnapshotSpec:
    """Desired state: snapshot one bound PVC."""

    pvc_name: str = ""


@dataclass
class VolumeSnapshotStatus:
    """Observed state of a volume snapshot."""

    ready: bool = False
    #: array-side snapshot handle once cut
    snapshot_handle: str = ""
    error: str = ""


@dataclass
class VolumeSnapshot(ApiObject):
    """A point-in-time copy of one PVC, cut through CSI."""

    KIND: ClassVar[str] = "VolumeSnapshot"
    NAMESPACED: ClassVar[bool] = True

    spec: VolumeSnapshotSpec = field(default_factory=VolumeSnapshotSpec)
    status: VolumeSnapshotStatus = field(
        default_factory=VolumeSnapshotStatus)

    def validate(self) -> None:
        super().validate()
        if not self.spec.pvc_name:
            raise InvalidObjectError(
                f"VolumeSnapshot {self.meta.name!r} needs spec.pvc_name")


@dataclass
class VolumeGroupSnapshotSpec:
    """Desired state: snapshot every PVC matching a label selector,
    atomically (the Kubernetes 1.27 *alpha* VolumeGroupSnapshot API)."""

    selector: Dict[str, str] = field(default_factory=dict)


@dataclass
class VolumeGroupSnapshotStatus:
    """Observed state of a group snapshot."""

    ready: bool = False
    #: array-side snapshot-group handle once cut
    group_handle: str = ""
    #: per-PVC snapshot handles
    snapshot_handles: Dict[str, str] = field(default_factory=dict)
    error: str = ""


@dataclass
class VolumeGroupSnapshot(ApiObject):
    """Alpha group-snapshot API (§II).

    The paper notes the vendor plugin does not yet support this alpha
    CSI feature, so the demonstration operates the array directly for
    snapshot groups.  The API object exists here for fidelity, and an
    optional forward-looking controller
    (:class:`repro.csi.storage_plugin.GroupSnapshotReconciler`) can be
    enabled to show the gap closing — disabled by default to match the
    paper.
    """

    KIND: ClassVar[str] = "VolumeGroupSnapshot"
    NAMESPACED: ClassVar[bool] = True

    spec: VolumeGroupSnapshotSpec = field(
        default_factory=VolumeGroupSnapshotSpec)
    status: VolumeGroupSnapshotStatus = field(
        default_factory=VolumeGroupSnapshotStatus)

    def validate(self) -> None:
        super().validate()
        if not self.spec.selector:
            raise InvalidObjectError(
                f"VolumeGroupSnapshot {self.meta.name!r} needs a selector")


def claim_ref(namespace: str, name: str) -> str:
    """Canonical "namespace/name" claim reference used on PVs."""
    return f"{namespace}/{name}"
