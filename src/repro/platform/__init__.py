"""Simulated container platform (the paper's OpenShift clusters).

Public surface:

* :class:`Cluster` — one site's platform (API server + controllers +
  console);
* :class:`ApiServer`, :class:`WatchEvent`, :class:`EventType` — the
  object store;
* :class:`Controller`, :class:`ControllerManager`, :class:`Reconciler`,
  :class:`Requeue`, :class:`BackoffPolicy` — the controller runtime;
* resource kinds: :class:`Namespace`, :class:`Pod`,
  :class:`PersistentVolumeClaim`, :class:`PersistentVolume`,
  :class:`StorageClass`, :class:`VolumeSnapshot`,
  :class:`VolumeGroupSnapshot`;
* :class:`Console`, :class:`ConsoleOperation` — the demo's operation
  surface;
* :class:`ObjectMeta`, :class:`ObjectKey`, :class:`Condition` — object
  model.
"""

from repro.platform.apiserver import (WATCH_CLOSED, ApiFaultInjector,
                                      ApiServer, EventType, WatchClosed,
                                      WatchEvent, WatchStream)
from repro.platform.cluster import Cluster
from repro.platform.console import Console, ConsoleOperation
from repro.platform.controller import (DEADLINE_EXCEEDED, BackoffPolicy,
                                       Controller, ControllerManager,
                                       Reconciler, Requeue)
from repro.platform.events import (PlatformEvent, events_for,
                                   record_event)
from repro.platform.gc import (GC_FINALIZER, NamespaceGcReconciler,
                               install_namespace_gc)
from repro.platform.objects import (ApiObject, Condition, ObjectKey,
                                    ObjectMeta, get_condition,
                                    matches_labels, set_condition)
from repro.platform.resources import (CsiVolumeSource, Namespace,
                                      PersistentVolume,
                                      PersistentVolumeClaim, Pod, PodSpec,
                                      PvcSpec, PvSpec, StorageClass,
                                      VolumeGroupSnapshot, VolumeSnapshot,
                                      VolumeSnapshotSpec, claim_ref)
from repro.platform.scheduler import PodSchedulerReconciler

__all__ = [
    "ApiFaultInjector",
    "ApiObject",
    "ApiServer",
    "BackoffPolicy",
    "Cluster",
    "Condition",
    "Console",
    "ConsoleOperation",
    "Controller",
    "ControllerManager",
    "DEADLINE_EXCEEDED",
    "CsiVolumeSource",
    "EventType",
    "GC_FINALIZER",
    "Namespace",
    "NamespaceGcReconciler",
    "ObjectKey",
    "ObjectMeta",
    "PersistentVolume",
    "PersistentVolumeClaim",
    "PlatformEvent",
    "Pod",
    "PodSchedulerReconciler",
    "PodSpec",
    "PvSpec",
    "PvcSpec",
    "Reconciler",
    "Requeue",
    "StorageClass",
    "VolumeGroupSnapshot",
    "VolumeSnapshot",
    "VolumeSnapshotSpec",
    "WATCH_CLOSED",
    "WatchClosed",
    "WatchEvent",
    "WatchStream",
    "claim_ref",
    "events_for",
    "get_condition",
    "install_namespace_gc",
    "record_event",
    "matches_labels",
    "set_condition",
]
