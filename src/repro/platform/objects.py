"""API object model of the simulated container platform.

Objects follow the Kubernetes conventions the namespace operator relies
on: every object has ``metadata`` (name, namespace, labels, resource
version, finalizers, deletion timestamp), a kind string, and free-form
``spec``/``status`` sections modelled as dataclass fields on concrete
resource classes.

The API server stores deep copies, so objects held by controllers are
snapshots — mutating them has no effect until ``update()`` is called,
and stale updates fail with a :class:`~repro.errors.ConflictError`,
exactly the optimistic-concurrency discipline real operators live with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Dict, List, Optional

from repro.errors import InvalidObjectError


@dataclass
class ObjectMeta:
    """Standard object metadata."""

    name: str = ""
    namespace: str = ""
    uid: int = 0
    labels: Dict[str, str] = field(default_factory=dict)
    annotations: Dict[str, str] = field(default_factory=dict)
    resource_version: int = 0
    creation_time: float = 0.0
    deletion_time: Optional[float] = None
    finalizers: List[str] = field(default_factory=list)

    def validate(self, namespaced: bool) -> None:
        """Reject malformed metadata before admission."""
        if not self.name:
            raise InvalidObjectError("metadata.name is required")
        if namespaced and not self.namespace:
            raise InvalidObjectError(
                f"object {self.name!r} requires metadata.namespace")
        if not namespaced and self.namespace:
            raise InvalidObjectError(
                f"cluster-scoped object {self.name!r} must not set "
                "metadata.namespace")

    @property
    def deleting(self) -> bool:
        """True once a delete has been requested (finalizers pending)."""
        return self.deletion_time is not None


@dataclass
class ApiObject:
    """Base class of every resource kind.

    Subclasses set the ``KIND`` and ``NAMESPACED`` class attributes and
    add their spec/status fields.
    """

    KIND: ClassVar[str] = ""
    NAMESPACED: ClassVar[bool] = True

    meta: ObjectMeta = field(default_factory=ObjectMeta)

    @property
    def kind(self) -> str:
        """The object's kind string."""
        return type(self).KIND

    @property
    def key(self) -> "ObjectKey":
        """The (kind, namespace, name) identity of this object."""
        return ObjectKey(self.kind, self.meta.namespace, self.meta.name)

    def validate(self) -> None:
        """Admission validation; subclasses may extend."""
        if not type(self).KIND:
            raise InvalidObjectError(
                f"{type(self).__name__} does not define KIND")
        self.meta.validate(type(self).NAMESPACED)


@dataclass(frozen=True)
class ObjectKey:
    """Identity of an object within one API server."""

    kind: str
    namespace: str
    name: str

    def __str__(self) -> str:
        if self.namespace:
            return f"{self.kind}/{self.namespace}/{self.name}"
        return f"{self.kind}/{self.name}"


@dataclass
class Condition:
    """A typed status condition, as used by operators to report state."""

    type: str
    status: bool
    reason: str = ""
    message: str = ""
    last_transition: float = 0.0


def set_condition(conditions: List[Condition], condition: Condition) -> None:
    """Insert or replace the condition with the same type in place."""
    for index, existing in enumerate(conditions):
        if existing.type == condition.type:
            if existing.status == condition.status and \
                    existing.reason == condition.reason:
                condition.last_transition = existing.last_transition
            conditions[index] = condition
            return
    conditions.append(condition)


def get_condition(conditions: List[Condition],
                  type_: str) -> Optional[Condition]:
    """The condition with the given type, or None."""
    for condition in conditions:
        if condition.type == type_:
            return condition
    return None


def matches_labels(obj: ApiObject, selector: Dict[str, str]) -> bool:
    """Equality-based label selector matching."""
    labels = obj.meta.labels
    return all(labels.get(key) == value for key, value in selector.items())
