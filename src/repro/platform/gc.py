"""Namespace garbage collection: cascade deletion of namespace contents.

Kubernetes deletes a namespace's objects when the namespace goes away;
the simulated platform reproduces that with a controller so that
deleting a demo namespace tears down its pods, claims, snapshots and
custom resources — which in turn lets their finalizer-owning controllers
(the replication plugin) unwind the storage configuration.

The namespace itself carries a GC finalizer: it disappears only after
every contained object is gone, mirroring the real "Terminating"
namespace phase.
"""

from __future__ import annotations

from typing import ClassVar, Generator, List, Sequence, Type

from repro.platform.apiserver import ApiServer, WatchEvent
from repro.platform.controller import Reconciler, ReconcileResult, Requeue
from repro.platform.objects import ApiObject, ObjectKey
from repro.platform.resources import (Namespace, PersistentVolumeClaim,
                                      Pod, VolumeGroupSnapshot,
                                      VolumeSnapshot)

#: finalizer the GC owns on namespaces
GC_FINALIZER = "platform/namespace-gc"

#: namespaced kinds swept by the GC, in deletion order
DEFAULT_SWEPT_KINDS: Sequence[Type[ApiObject]] = (
    Pod, VolumeSnapshot, VolumeGroupSnapshot, PersistentVolumeClaim)


class NamespaceGcReconciler(Reconciler):
    """Implements Terminating-namespace semantics."""

    kind: ClassVar[Type[Namespace]] = Namespace

    def __init__(self,
                 swept_kinds: Sequence[Type[ApiObject]] =
                 DEFAULT_SWEPT_KINDS,
                 extra_swept_kinds: Sequence[Type[ApiObject]] = ()
                 ) -> None:
        """``extra_swept_kinds`` adds custom resources (e.g. the
        replication CRs) to the sweep; deleted after the defaults."""
        self.swept_kinds = tuple(swept_kinds) + tuple(extra_swept_kinds)
        # watch the swept kinds so content deletion re-wakes the GC
        self.extra_kinds = self.swept_kinds

    def reconcile(self, api: ApiServer, key: ObjectKey,
                  ) -> Generator[object, object, ReconcileResult]:
        namespace = api.try_get(Namespace, key.name)
        if namespace is None:
            return None
        if not namespace.meta.deleting:
            if GC_FINALIZER not in namespace.meta.finalizers:
                namespace.meta.finalizers.append(GC_FINALIZER)
                api.update(namespace)
            return None
        remaining = 0
        for kind in self.swept_kinds:
            for obj in api.list(kind, namespace=key.name):
                remaining += 1
                if not obj.meta.deleting:
                    api.delete(kind, obj.meta.name, key.name)
        if namespace.phase != "Terminating":
            namespace.phase = "Terminating"
            api.update(namespace)
            return Requeue(after=0.010)
        if remaining:
            return Requeue(after=0.020)
        api.remove_finalizer(Namespace, key.name, "", GC_FINALIZER)
        return None
        yield  # pragma: no cover - generator marker

    def map_event(self, api: ApiServer,
                  event: WatchEvent) -> List[ObjectKey]:
        """Content changes wake the owning (terminating) namespace."""
        return [ObjectKey(Namespace.KIND, "", event.object.meta.namespace)]


def install_namespace_gc(cluster,
                         extra_swept_kinds: Sequence[Type[ApiObject]]
                         = ()) -> None:
    """Install the namespace GC on a cluster."""
    reconciler = NamespaceGcReconciler(
        extra_swept_kinds=extra_swept_kinds)
    cluster.install(reconciler, name=f"{cluster.name}.namespace-gc")
