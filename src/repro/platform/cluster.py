"""Cluster assembly: API server + controller manager + console.

A :class:`Cluster` is one container platform (the paper runs two:
OpenShift at the main site and at the backup site).  It wires the API
server, the controller manager, the console facade and a registry of CSI
drivers that site-local controllers resolve storage operations through.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.errors import PlatformError
from repro.platform.apiserver import ApiServer
from repro.platform.console import Console
from repro.platform.controller import (BackoffPolicy, Controller,
                                       ControllerManager, Reconciler)
from repro.platform.resources import Namespace
from repro.platform.scheduler import PodSchedulerReconciler
from repro.simulation.kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.csi.driver import CsiDriver


class Cluster:
    """One container platform instance (a site's OpenShift)."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.api = ApiServer(sim, cluster_name=name)
        self.manager = ControllerManager(sim, self.api)
        self.console = Console(self)
        self._csi_drivers: Dict[str, "CsiDriver"] = {}
        self._started = False
        # every cluster ships the pod scheduler
        self.manager.register(PodSchedulerReconciler(),
                              name=f"{name}.pod-scheduler")

    # -- CSI driver registry -------------------------------------------------

    def register_csi_driver(self, driver: "CsiDriver") -> None:
        """Install a CSI driver (idempotent by driver name)."""
        existing = self._csi_drivers.get(driver.driver_name)
        if existing is not None and existing is not driver:
            raise PlatformError(
                f"cluster {self.name}: CSI driver {driver.driver_name!r} "
                "already registered")
        self._csi_drivers[driver.driver_name] = driver

    def csi_driver(self, driver_name: str) -> "CsiDriver":
        """Resolve a registered CSI driver by name."""
        driver = self._csi_drivers.get(driver_name)
        if driver is None:
            raise PlatformError(
                f"cluster {self.name}: no CSI driver {driver_name!r}")
        return driver

    def has_csi_driver(self, driver_name: str) -> bool:
        """True when the driver is installed on this cluster."""
        return driver_name in self._csi_drivers

    # -- controller lifecycle ----------------------------------------------

    def install(self, reconciler: Reconciler, name: str = "",
                backoff: Optional[BackoffPolicy] = None,
                deadline: Optional[float] = None) -> Controller:
        """Register a controller; starts immediately if the cluster is up."""
        controller = self.manager.register(
            reconciler, name=name or f"{self.name}.{type(reconciler).__name__}",
            backoff=backoff, deadline=deadline)
        if self._started:
            controller.start()
        return controller

    def start(self) -> None:
        """Start every installed controller (idempotent)."""
        if self._started:
            return
        self._started = True
        self.manager.start_all()

    def stop(self) -> None:
        """Stop every controller (site shutdown)."""
        self._started = False
        self.manager.stop_all()

    # -- conveniences ------------------------------------------------------

    def create_namespace(self, name: str,
                         labels: Optional[Dict[str, str]] = None,
                         ) -> Namespace:
        """Create a namespace (programmatic; console tagging is separate)."""
        namespace = Namespace()
        namespace.meta.name = name
        namespace.meta.labels = dict(labels or {})
        return self.api.create(namespace)

    def __repr__(self) -> str:
        state = "started" if self._started else "stopped"
        return f"<Cluster {self.name!r} {state}>"
