"""Controller runtime: work queues and reconcile loops.

The namespace operator and the storage plugins are built on this runtime,
which reproduces the controller-runtime discipline of real operators:

* watches feed object *keys* into a deduplicating work queue;
* a worker process takes one key at a time and calls the reconciler;
* a reconciler is **level-triggered**: it reads the current state from
  the API server and drives the world toward it, never relying on the
  event payload;
* failures are retried with exponential backoff; a reconciler can also
  request an explicit requeue after a delay.

Reconcilers are written as process generators so their actions (array
commands, remote calls) take simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Set, Type

from repro.errors import Interrupted, UnavailableError
from repro.platform.apiserver import (WATCH_CLOSED, ApiServer, WatchEvent,
                                      WatchStream)
from repro.platform.objects import ApiObject, ObjectKey
from repro.simulation.kernel import Simulator
from repro.simulation.process import Process
from repro.simulation.resources import Store
from repro.simulation.rng import RngRegistry

#: interrupt cause used by the per-reconcile deadline watchdog, so the
#: worker can tell a timed-out reconcile apart from a controller crash
DEADLINE_EXCEEDED = "reconcile-deadline-exceeded"


@dataclass(frozen=True)
class Requeue:
    """Reconcile result asking to be called again after ``after`` seconds."""

    after: float

    def __post_init__(self) -> None:
        if self.after < 0:
            raise ValueError(f"requeue delay must be >= 0: {self.after}")


#: Reconcile generators return ``None`` (done) or a :class:`Requeue`.
ReconcileResult = Optional[Requeue]


class Reconciler:
    """Base class for reconcilers; override :meth:`reconcile`."""

    #: primary kind whose keys this reconciler receives
    kind: Type[ApiObject]
    #: additional kinds whose events requeue mapped keys
    extra_kinds: Sequence[Type[ApiObject]] = ()

    def reconcile(self, api: ApiServer, key: ObjectKey,
                  ) -> Generator[object, object, ReconcileResult]:
        """Drive the world toward the object's desired state.

        Process generator.  Raising marks the key for backoff retry.
        """
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for typing

    def map_event(self, api: ApiServer,
                  event: WatchEvent) -> List[ObjectKey]:
        """Map an event of an ``extra_kinds`` object to primary keys.

        Default: no mapping (secondary events ignored).
        """
        return []


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential retry backoff for failed reconciles.

    ``jitter`` desynchronises retry storms: when many keys fail at the
    same instant (an API-server outage heals, a controller restarts),
    pure exponential backoff retries them all in lock-step.  With
    ``jitter > 0`` each delay is perturbed by up to +/- that fraction of
    itself, drawn from a named seeded RNG stream — so the spread is
    deterministic per seed.  ``budget`` caps retries per key: once a key
    fails more than ``budget`` times in a row it is dropped until the
    next watch event re-triggers it (``None`` = retry forever).
    """

    initial: float = 0.005
    factor: float = 2.0
    maximum: float = 1.0
    jitter: float = 0.0
    budget: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1]: {self.jitter}")
        if self.budget is not None and self.budget < 1:
            raise ValueError(f"budget must be >= 1: {self.budget}")

    def delay(self, failures: int, rng: Optional[RngRegistry] = None,
              stream: str = "controller.backoff") -> float:
        """Backoff before retry number ``failures`` (1-based).

        Pass the simulator's RNG registry (and a per-controller stream
        name) to apply the seeded jitter; without one the delay is the
        pure exponential value, preserving historical behaviour.
        """
        if failures < 1:
            raise ValueError("failures must be >= 1")
        base = min(self.initial * self.factor ** (failures - 1),
                   self.maximum)
        if self.jitter and rng is not None:
            return rng.jitter(stream, base, self.jitter)
        return base

    def exhausted(self, failures: int) -> bool:
        """True when the retry budget does not allow retry ``failures``."""
        return self.budget is not None and failures > self.budget


class Controller:
    """One reconciler wired to watches and a worker process."""

    def __init__(self, sim: Simulator, api: ApiServer,
                 reconciler: Reconciler, name: str = "",
                 backoff: Optional[BackoffPolicy] = None,
                 deadline: Optional[float] = None) -> None:
        self.sim = sim
        self.api = api
        self.reconciler = reconciler
        self.name = name or type(reconciler).__name__
        self.backoff = backoff or BackoffPolicy()
        #: wall-clock bound per reconcile invocation (None = unbounded);
        #: an over-deadline reconcile is interrupted and retried with
        #: backoff, so one wedged key cannot stall the whole queue
        self.deadline = deadline
        self._queue: Store = Store(sim, name=f"{self.name}.queue")
        self._pending: Set[ObjectKey] = set()
        self._failures: Dict[ObjectKey, int] = {}
        self._running = False
        self._procs: List[Process] = []
        self._streams: List[WatchStream] = []
        self._active_child: Optional[Process] = None
        #: reconcile invocations, for operator-efficiency experiments
        self.reconcile_count = 0
        self.error_count = 0
        self.restart_count = 0
        registry = sim.telemetry.registry
        self._reconciles_metric = registry.counter(
            "repro_reconcile_total",
            help="Reconcile invocations per controller",
            controller=self.name)
        self._errors_metric = registry.counter(
            "repro_reconcile_errors_total",
            help="Reconcile invocations that raised", controller=self.name)
        self._retries_metric = registry.counter(
            "repro_reconcile_retries_total",
            help="Failed reconciles requeued with backoff",
            controller=self.name)
        self._timeouts_metric = registry.counter(
            "repro_reconcile_timeouts_total",
            help="Reconciles interrupted at the per-reconcile deadline",
            controller=self.name)
        self._restarts_metric = registry.counter(
            "repro_controller_restarts_total",
            help="Controller restarts after a crash",
            controller=self.name)
        self._resyncs_metric = registry.counter(
            "repro_watch_resyncs_total",
            help="Watch streams re-opened after a severed watch",
            controller=self.name)
        self._exhausted_metric = registry.counter(
            "repro_reconcile_budget_exhausted_total",
            help="Keys dropped after exceeding the retry budget",
            controller=self.name)

    # -- queue -----------------------------------------------------------

    def enqueue(self, key: ObjectKey) -> None:
        """Add a key to the work queue (coalesced while pending)."""
        if key in self._pending:
            return
        self._pending.add(key)
        self._queue.put(key)

    def enqueue_after(self, key: ObjectKey, delay: float) -> None:
        """Enqueue a key after ``delay`` seconds."""
        self.sim.call_after(delay, lambda: self.enqueue(key))

    @property
    def queue_depth(self) -> int:
        """Keys waiting to be reconciled."""
        return len(self._queue)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Open watches and spawn the pump and worker processes."""
        if self._running:
            return
        self._running = True
        self._procs = []
        self._streams = []
        specs = [(self.reconciler.kind, True, f"{self.name}.watch",
                  f"{self.name}.pump")]
        for extra in self.reconciler.extra_kinds:
            specs.append((extra, False, f"{self.name}.watch-extra",
                          f"{self.name}.pump-extra"))
        for cls, primary, watch_name, pump_name in specs:
            # open the watch synchronously when the API server is up;
            # during an outage the pump opens it itself with retries
            try:
                stream: Optional[WatchStream] = self.api.watch(
                    cls, name=watch_name)
                self._streams.append(stream)
            except UnavailableError:
                stream = None
            self._procs.append(
                self.sim.spawn(self._pump(cls, primary, watch_name, stream),
                               name=pump_name))
        self._procs.append(
            self.sim.spawn(self._worker(), name=f"{self.name}.worker"))

    def stop(self) -> None:
        """Stop pumping and working at the next step."""
        self._running = False

    def crash(self, cause: str = "controller-crash") -> None:
        """Kill the pump and worker processes right now (chaos hook).

        In-flight reconciles are interrupted mid-step; queued keys and
        per-key failure counts are abandoned.  Recovery is level-
        triggered: :meth:`restart` re-lists the world through fresh
        watches, so every live object is requeued regardless of what the
        dead incarnation had in its queue.
        """
        if not self._running:
            return
        self._running = False
        self.sim.telemetry.recorder.record(
            "controller", "crash", controller=self.name, cause=cause)
        if self._active_child is not None and self._active_child.alive:
            self._active_child.interrupt(cause)
        self._active_child = None
        for proc in self._procs:
            if proc.alive:
                proc.interrupt(cause)
        self._procs = []
        for stream in self._streams:
            stream.close()
        self._streams = []

    def restart(self) -> None:
        """Restart after :meth:`crash` with a fresh queue and watches.

        The watch replay (list+watch) re-delivers every live object as
        ``ADDED``, which requeues all keys — the level-triggered
        recovery contract.
        """
        if self._running:
            return
        self.restart_count += 1
        self._restarts_metric.increment()
        self.sim.telemetry.recorder.record(
            "controller", "restart", controller=self.name,
            restarts=self.restart_count)
        self._queue = Store(self.sim, name=f"{self.name}.queue")
        self._pending.clear()
        self._failures.clear()
        self.start()

    # -- processes -----------------------------------------------------------

    def _open_watch(self, cls: Type[ApiObject], watch_name: str,
                    ) -> Generator[object, object, WatchStream]:
        """Open (or re-open) a watch, retrying through API outages."""
        attempts = 0
        while True:
            try:
                stream = self.api.watch(cls, name=watch_name)
            except UnavailableError:
                attempts += 1
                yield self.sim.timeout(self.backoff.delay(
                    min(attempts, 8), rng=self.sim.rng,
                    stream=f"{self.name}.watch-retry"))
                continue
            self._streams.append(stream)
            return stream

    def _pump(self, cls: Type[ApiObject], primary_kind: bool,
              watch_name: str, stream: Optional[WatchStream],
              ) -> Generator[object, object, None]:
        if stream is None:
            stream = yield from self._open_watch(cls, watch_name)
        while self._running:
            event = yield stream.next_event()
            if not self._running:
                return
            if event is WATCH_CLOSED:
                # severed watch: drop the dead stream and re-list the
                # world through a fresh one (its replay requeues every
                # live key, so nothing the dead stream lost matters)
                self._resyncs_metric.increment()
                self.sim.telemetry.recorder.record(
                    "controller", "watch_resync", controller=self.name,
                    kind=cls.KIND)
                if stream in self._streams:
                    self._streams.remove(stream)
                stream = yield from self._open_watch(cls, watch_name)
                continue
            if primary_kind:
                self.enqueue(event.key)
            else:
                for key in self.reconciler.map_event(self.api, event):
                    self.enqueue(key)

    def _reconcile_with_deadline(self, key: ObjectKey,
                                 ) -> Generator[object, object,
                                                ReconcileResult]:
        """Run one reconcile in a child process with a watchdog."""
        child = self.sim.spawn(
            self.reconciler.reconcile(self.api, key),
            name=f"{self.name}.reconcile")
        self._active_child = child
        handle = self.sim.call_after(
            self.deadline,
            lambda: child.interrupt(DEADLINE_EXCEEDED)
            if child.alive else None)
        try:
            result = yield child
        finally:
            handle.cancel()
            self._active_child = None
        return result

    def _worker(self) -> Generator[object, object, None]:
        while self._running:
            key: ObjectKey = yield self._queue.get()
            self._pending.discard(key)
            if not self._running:
                return
            self.reconcile_count += 1
            self._reconciles_metric.increment()
            try:
                if self.deadline is None:
                    result = yield from self.reconciler.reconcile(
                        self.api, key)
                else:
                    result = yield from self._reconcile_with_deadline(key)
            except Interrupted as exc:
                if exc.cause is not DEADLINE_EXCEEDED:
                    raise  # a controller crash, not a timed-out reconcile
                self._timeouts_metric.increment()
                self.sim.telemetry.recorder.record(
                    "controller", "reconcile_timeout",
                    controller=self.name, key=str(key))
                self._retry(key)
                continue
            except Exception:  # noqa: BLE001 - controller must survive
                self.error_count += 1
                self._errors_metric.increment()
                self._retry(key)
                continue
            self._failures.pop(key, None)
            if isinstance(result, Requeue):
                self.enqueue_after(key, result.after)

    def _retry(self, key: ObjectKey) -> None:
        """Failure bookkeeping: backoff requeue within the retry budget."""
        failures = self._failures.get(key, 0) + 1
        self._failures[key] = failures
        if self.backoff.exhausted(failures):
            # dropped until the next watch event re-triggers the key
            self._exhausted_metric.increment()
            self.sim.telemetry.recorder.record(
                "controller", "retry_budget_exhausted",
                controller=self.name, key=str(key), failures=failures)
            self._failures.pop(key, None)
            return
        self._retries_metric.increment()
        self.enqueue_after(key, self.backoff.delay(
            failures, rng=self.sim.rng, stream=f"{self.name}.backoff"))


class ControllerManager:
    """Bundles the controllers of one cluster."""

    def __init__(self, sim: Simulator, api: ApiServer) -> None:
        self.sim = sim
        self.api = api
        self.controllers: List[Controller] = []

    def register(self, reconciler: Reconciler, name: str = "",
                 backoff: Optional[BackoffPolicy] = None,
                 deadline: Optional[float] = None) -> Controller:
        """Create and remember a controller for ``reconciler``."""
        controller = Controller(self.sim, self.api, reconciler, name=name,
                                backoff=backoff, deadline=deadline)
        self.controllers.append(controller)
        return controller

    def start_all(self) -> None:
        """Start every registered controller."""
        for controller in self.controllers:
            controller.start()

    def stop_all(self) -> None:
        """Stop every registered controller."""
        for controller in self.controllers:
            controller.stop()

    def crash_all(self, cause: str = "controller-crash") -> None:
        """Crash every registered controller (chaos hook)."""
        for controller in self.controllers:
            controller.crash(cause)

    def restart_all(self) -> None:
        """Restart every crashed controller."""
        for controller in self.controllers:
            controller.restart()

    def by_name(self, name: str) -> Controller:
        """Find a controller by its name."""
        for controller in self.controllers:
            if controller.name == name:
                return controller
        raise KeyError(f"no controller named {name!r}")
