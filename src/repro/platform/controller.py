"""Controller runtime: work queues and reconcile loops.

The namespace operator and the storage plugins are built on this runtime,
which reproduces the controller-runtime discipline of real operators:

* watches feed object *keys* into a deduplicating work queue;
* a worker process takes one key at a time and calls the reconciler;
* a reconciler is **level-triggered**: it reads the current state from
  the API server and drives the world toward it, never relying on the
  event payload;
* failures are retried with exponential backoff; a reconciler can also
  request an explicit requeue after a delay.

Reconcilers are written as process generators so their actions (array
commands, remote calls) take simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Set, Type

from repro.platform.apiserver import ApiServer, WatchEvent
from repro.platform.objects import ApiObject, ObjectKey
from repro.simulation.kernel import Simulator
from repro.simulation.resources import Store


@dataclass(frozen=True)
class Requeue:
    """Reconcile result asking to be called again after ``after`` seconds."""

    after: float

    def __post_init__(self) -> None:
        if self.after < 0:
            raise ValueError(f"requeue delay must be >= 0: {self.after}")


#: Reconcile generators return ``None`` (done) or a :class:`Requeue`.
ReconcileResult = Optional[Requeue]


class Reconciler:
    """Base class for reconcilers; override :meth:`reconcile`."""

    #: primary kind whose keys this reconciler receives
    kind: Type[ApiObject]
    #: additional kinds whose events requeue mapped keys
    extra_kinds: Sequence[Type[ApiObject]] = ()

    def reconcile(self, api: ApiServer, key: ObjectKey,
                  ) -> Generator[object, object, ReconcileResult]:
        """Drive the world toward the object's desired state.

        Process generator.  Raising marks the key for backoff retry.
        """
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for typing

    def map_event(self, api: ApiServer,
                  event: WatchEvent) -> List[ObjectKey]:
        """Map an event of an ``extra_kinds`` object to primary keys.

        Default: no mapping (secondary events ignored).
        """
        return []


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential retry backoff for failed reconciles."""

    initial: float = 0.005
    factor: float = 2.0
    maximum: float = 1.0

    def delay(self, failures: int) -> float:
        """Backoff before retry number ``failures`` (1-based)."""
        if failures < 1:
            raise ValueError("failures must be >= 1")
        return min(self.initial * self.factor ** (failures - 1),
                   self.maximum)


class Controller:
    """One reconciler wired to watches and a worker process."""

    def __init__(self, sim: Simulator, api: ApiServer,
                 reconciler: Reconciler, name: str = "",
                 backoff: Optional[BackoffPolicy] = None) -> None:
        self.sim = sim
        self.api = api
        self.reconciler = reconciler
        self.name = name or type(reconciler).__name__
        self.backoff = backoff or BackoffPolicy()
        self._queue: Store = Store(sim, name=f"{self.name}.queue")
        self._pending: Set[ObjectKey] = set()
        self._failures: Dict[ObjectKey, int] = {}
        self._running = False
        #: reconcile invocations, for operator-efficiency experiments
        self.reconcile_count = 0
        self.error_count = 0
        registry = sim.telemetry.registry
        self._reconciles_metric = registry.counter(
            "repro_reconcile_total",
            help="Reconcile invocations per controller",
            controller=self.name)
        self._errors_metric = registry.counter(
            "repro_reconcile_errors_total",
            help="Reconcile invocations that raised", controller=self.name)

    # -- queue -----------------------------------------------------------

    def enqueue(self, key: ObjectKey) -> None:
        """Add a key to the work queue (coalesced while pending)."""
        if key in self._pending:
            return
        self._pending.add(key)
        self._queue.put(key)

    def enqueue_after(self, key: ObjectKey, delay: float) -> None:
        """Enqueue a key after ``delay`` seconds."""
        self.sim.call_after(delay, lambda: self.enqueue(key))

    @property
    def queue_depth(self) -> int:
        """Keys waiting to be reconciled."""
        return len(self._queue)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Open watches and spawn the pump and worker processes."""
        if self._running:
            return
        self._running = True
        primary = self.api.watch(self.reconciler.kind,
                                 name=f"{self.name}.watch")
        self.sim.spawn(self._pump(primary, primary_kind=True),
                       name=f"{self.name}.pump")
        for extra in self.reconciler.extra_kinds:
            stream = self.api.watch(extra, name=f"{self.name}.watch-extra")
            self.sim.spawn(self._pump(stream, primary_kind=False),
                           name=f"{self.name}.pump-extra")
        self.sim.spawn(self._worker(), name=f"{self.name}.worker")

    def stop(self) -> None:
        """Stop pumping and working at the next step."""
        self._running = False

    # -- processes -----------------------------------------------------------

    def _pump(self, stream, primary_kind: bool,
              ) -> Generator[object, object, None]:
        while self._running:
            event: WatchEvent = yield stream.next_event()
            if not self._running:
                return
            if primary_kind:
                self.enqueue(event.key)
            else:
                for key in self.reconciler.map_event(self.api, event):
                    self.enqueue(key)

    def _worker(self) -> Generator[object, object, None]:
        while self._running:
            key: ObjectKey = yield self._queue.get()
            self._pending.discard(key)
            if not self._running:
                return
            self.reconcile_count += 1
            self._reconciles_metric.increment()
            try:
                result = yield from self.reconciler.reconcile(self.api, key)
            except Exception:  # noqa: BLE001 - controller must survive
                self.error_count += 1
                self._errors_metric.increment()
                failures = self._failures.get(key, 0) + 1
                self._failures[key] = failures
                self.enqueue_after(key, self.backoff.delay(failures))
                continue
            self._failures.pop(key, None)
            if isinstance(result, Requeue):
                self.enqueue_after(key, result.after)


class ControllerManager:
    """Bundles the controllers of one cluster."""

    def __init__(self, sim: Simulator, api: ApiServer) -> None:
        self.sim = sim
        self.api = api
        self.controllers: List[Controller] = []

    def register(self, reconciler: Reconciler, name: str = "",
                 backoff: Optional[BackoffPolicy] = None) -> Controller:
        """Create and remember a controller for ``reconciler``."""
        controller = Controller(self.sim, self.api, reconciler, name=name,
                                backoff=backoff)
        self.controllers.append(controller)
        return controller

    def start_all(self) -> None:
        """Start every registered controller."""
        for controller in self.controllers:
            controller.start()

    def stop_all(self) -> None:
        """Stop every registered controller."""
        for controller in self.controllers:
            controller.stop()

    def by_name(self, name: str) -> Controller:
        """Find a controller by its name."""
        for controller in self.controllers:
            if controller.name == name:
                return controller
        raise KeyError(f"no controller named {name!r}")
