"""In-memory API server with optimistic concurrency and watches.

The server is the hub of the simulated container platform: controllers
and the namespace operator communicate exclusively through it, exactly as
on a real cluster.  Semantics reproduced:

* **CRUD with resource versions** — ``update`` fails with
  :class:`~repro.errors.ConflictError` unless the caller presents the
  current resource version; every mutation bumps a server-wide version
  counter.
* **Watches** — a watch is an unbounded event queue fed by every
  mutation of a kind; delivery is asynchronous through the simulator, so
  controllers observe changes with realistic scheduling, not by magic
  shared state.
* **Finalizers** — ``delete`` on an object with finalizers only marks
  the deletion timestamp; the object disappears (and ``DELETED`` fires)
  when the last finalizer is removed.

Objects are deep-copied on the way in and out; holding a returned object
never aliases server state.
"""

from __future__ import annotations

import copy
import enum
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Type, TypeVar

from repro.errors import (AlreadyExistsError, ConflictError,
                          NotFoundError)
from repro.platform.objects import ApiObject, ObjectKey, matches_labels
from repro.simulation.kernel import Simulator
from repro.simulation.resources import Store

T = TypeVar("T", bound=ApiObject)


class EventType(enum.Enum):
    """Watch event types."""

    ADDED = "ADDED"
    MODIFIED = "MODIFIED"
    DELETED = "DELETED"


@dataclass(frozen=True)
class WatchEvent:
    """One delivered watch event: the type and an object snapshot."""

    type: EventType
    object: ApiObject

    @property
    def key(self) -> ObjectKey:
        """Identity of the object the event concerns."""
        return self.object.key


class WatchStream:
    """A consumer handle over one kind's event feed."""

    def __init__(self, sim: Simulator, kind: str, name: str = "") -> None:
        self.kind = kind
        self._queue = Store(sim, name=name or f"watch-{kind}")
        self.closed = False

    def next_event(self):
        """Event (simulation waitable) yielding the next WatchEvent."""
        return self._queue.get()

    def try_next(self):
        """Non-blocking: ``(ok, event)``."""
        return self._queue.try_get()

    def _deliver(self, event: WatchEvent) -> None:
        if not self.closed:
            self._queue.put(event)

    def close(self) -> None:
        """Stop receiving events (pending ones remain readable)."""
        self.closed = True

    def __len__(self) -> int:
        return len(self._queue)


class ApiServer:
    """The cluster's object store and watch hub."""

    def __init__(self, sim: Simulator, cluster_name: str = "cluster") -> None:
        self.sim = sim
        self.cluster_name = cluster_name
        self._objects: Dict[str, Dict[ObjectKey, ApiObject]] = {}
        self._watches: Dict[str, List[WatchStream]] = {}
        self._uid_counter = itertools.count(1)
        self._rv_counter = itertools.count(1)
        #: total mutations served, for operator-efficiency experiments
        self.mutation_count = 0

    # -- CRUD ---------------------------------------------------------------

    def create(self, obj: T) -> T:
        """Admit a new object; returns the stored snapshot."""
        obj.validate()
        kind_store = self._objects.setdefault(obj.kind, {})
        key = obj.key
        if key in kind_store:
            raise AlreadyExistsError(f"{key} already exists")
        stored = copy.deepcopy(obj)
        stored.meta.uid = next(self._uid_counter)
        stored.meta.resource_version = next(self._rv_counter)
        stored.meta.creation_time = self.sim.now
        stored.meta.deletion_time = None
        kind_store[key] = stored
        self.mutation_count += 1
        self._broadcast(EventType.ADDED, stored)
        return copy.deepcopy(stored)

    def get(self, cls: Type[T], name: str, namespace: str = "") -> T:
        """Fetch one object by identity; raises NotFoundError."""
        key = ObjectKey(cls.KIND, namespace, name)
        stored = self._objects.get(cls.KIND, {}).get(key)
        if stored is None:
            raise NotFoundError(f"{key} not found")
        return copy.deepcopy(stored)  # type: ignore[return-value]

    def try_get(self, cls: Type[T], name: str,
                namespace: str = "") -> Optional[T]:
        """Fetch one object or None (no exception)."""
        try:
            return self.get(cls, name, namespace)
        except NotFoundError:
            return None

    def list(self, cls: Type[T], namespace: Optional[str] = None,
             label_selector: Optional[Dict[str, str]] = None) -> List[T]:
        """List objects of a kind, optionally filtered by namespace and
        an equality label selector; name-sorted for determinism."""
        results = []
        for stored in self._objects.get(cls.KIND, {}).values():
            if namespace is not None and stored.meta.namespace != namespace:
                continue
            if label_selector and not matches_labels(stored, label_selector):
                continue
            results.append(copy.deepcopy(stored))
        results.sort(key=lambda o: (o.meta.namespace, o.meta.name))
        return results  # type: ignore[return-value]

    def update(self, obj: T) -> T:
        """Replace an object; requires the current resource version."""
        obj.validate()
        stored = self._require(obj.key)
        if obj.meta.resource_version != stored.meta.resource_version:
            raise ConflictError(
                f"{obj.key}: stale resourceVersion "
                f"{obj.meta.resource_version} "
                f"(current {stored.meta.resource_version})")
        updated = copy.deepcopy(obj)
        updated.meta.uid = stored.meta.uid
        updated.meta.creation_time = stored.meta.creation_time
        updated.meta.deletion_time = stored.meta.deletion_time
        updated.meta.resource_version = next(self._rv_counter)
        self._objects[obj.kind][obj.key] = updated
        self.mutation_count += 1
        self._broadcast(EventType.MODIFIED, updated)
        self._maybe_finalize(updated)
        return copy.deepcopy(updated)

    def delete(self, cls: Type[T], name: str, namespace: str = "") -> None:
        """Request deletion.

        Objects without finalizers disappear immediately (``DELETED``);
        objects with finalizers get a deletion timestamp and a
        ``MODIFIED`` event so their controllers can clean up.
        """
        key = ObjectKey(cls.KIND, namespace, name)
        stored = self._require(key)
        if stored.meta.finalizers:
            if stored.meta.deletion_time is None:
                stored.meta.deletion_time = self.sim.now
                stored.meta.resource_version = next(self._rv_counter)
                self.mutation_count += 1
                self._broadcast(EventType.MODIFIED, stored)
            return
        del self._objects[key.kind][key]
        self.mutation_count += 1
        self._broadcast(EventType.DELETED, stored)

    def remove_finalizer(self, cls: Type[T], name: str, namespace: str,
                         finalizer: str) -> None:
        """Remove one finalizer; completes deletion when it was the last."""
        key = ObjectKey(cls.KIND, namespace, name)
        stored = self._require(key)
        if finalizer not in stored.meta.finalizers:
            return
        stored.meta.finalizers.remove(finalizer)
        stored.meta.resource_version = next(self._rv_counter)
        self.mutation_count += 1
        self._broadcast(EventType.MODIFIED, stored)
        self._maybe_finalize(stored)

    # -- watches ---------------------------------------------------------

    def watch(self, cls: Type[T], name: str = "") -> WatchStream:
        """Open a watch on a kind; past objects are replayed as ADDED so
        late-starting controllers converge (list+watch semantics)."""
        stream = WatchStream(self.sim, cls.KIND, name=name)
        self._watches.setdefault(cls.KIND, []).append(stream)
        for stored in self._objects.get(cls.KIND, {}).values():
            stream._deliver(WatchEvent(EventType.ADDED,
                                       copy.deepcopy(stored)))
        return stream

    # -- internals ------------------------------------------------------

    def _require(self, key: ObjectKey) -> ApiObject:
        stored = self._objects.get(key.kind, {}).get(key)
        if stored is None:
            raise NotFoundError(f"{key} not found")
        return stored

    def _maybe_finalize(self, stored: ApiObject) -> None:
        if stored.meta.deletion_time is not None and \
                not stored.meta.finalizers:
            key = stored.key
            if key in self._objects.get(key.kind, {}):
                del self._objects[key.kind][key]
                self.mutation_count += 1
                self._broadcast(EventType.DELETED, stored)

    def _broadcast(self, event_type: EventType, stored: ApiObject) -> None:
        for stream in self._watches.get(stored.kind, []):
            stream._deliver(WatchEvent(event_type, copy.deepcopy(stored)))

    def object_count(self, cls: Type[T]) -> int:
        """Number of stored objects of a kind."""
        return len(self._objects.get(cls.KIND, {}))

    def __repr__(self) -> str:
        total = sum(len(v) for v in self._objects.values())
        return f"<ApiServer {self.cluster_name!r} objects={total}>"
