"""In-memory API server with optimistic concurrency and watches.

The server is the hub of the simulated container platform: controllers
and the namespace operator communicate exclusively through it, exactly as
on a real cluster.  Semantics reproduced:

* **CRUD with resource versions** — ``update`` fails with
  :class:`~repro.errors.ConflictError` unless the caller presents the
  current resource version; every mutation bumps a server-wide version
  counter.
* **Watches** — a watch is an unbounded event queue fed by every
  mutation of a kind; delivery is asynchronous through the simulator, so
  controllers observe changes with realistic scheduling, not by magic
  shared state.
* **Finalizers** — ``delete`` on an object with finalizers only marks
  the deletion timestamp; the object disappears (and ``DELETED`` fires)
  when the last finalizer is removed.

Objects are deep-copied on the way in and out; holding a returned object
never aliases server state.
"""

from __future__ import annotations

import copy
import enum
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Type, TypeVar

from repro.errors import (AlreadyExistsError, ConflictError,
                          NotFoundError, UnavailableError)
from repro.platform.objects import ApiObject, ObjectKey, matches_labels
from repro.simulation.kernel import Simulator
from repro.simulation.resources import Store

T = TypeVar("T", bound=ApiObject)


class ApiFaultInjector:
    """Deterministic fault injection at the API-server admission point.

    Control-plane chaos faults install one on :attr:`ApiServer.chaos`;
    every request then passes through :meth:`admit` *before touching any
    state*, so an injected failure is always fail-closed — the request
    never half-applies.  Three knobs:

    * ``outage`` — every call raises :class:`UnavailableError` (a hard
      API-server outage window);
    * ``flake_probability`` — each call independently raises
      :class:`UnavailableError` with this probability (seed-
      deterministic, drawn from the named RNG stream);
    * ``conflict_probability`` — each *mutating* call independently
      raises :class:`ConflictError`, modelling a stale-cache write
      racing another actor.
    """

    #: verbs that mutate server state (conflict injection targets these)
    MUTATING = frozenset({"create", "update", "delete",
                          "remove_finalizer"})

    def __init__(self, sim: Simulator, stream: str = "chaos.api") -> None:
        self.sim = sim
        self.stream = stream
        self.outage = False
        self.flake_probability = 0.0
        self.conflict_probability = 0.0
        #: total faults injected (timeline bookkeeping for campaigns)
        self.injected = 0

    def clear(self) -> None:
        """Heal: stop injecting anything (the injector stays installed)."""
        self.outage = False
        self.flake_probability = 0.0
        self.conflict_probability = 0.0

    def admit(self, verb: str, detail: str = "") -> None:
        """Raise the injected failure for this request, if any."""
        error: Optional[Exception] = None
        kind = ""
        if self.outage:
            error = UnavailableError(
                f"api server unavailable ({verb} {detail})")
            kind = "outage"
        elif self.flake_probability and self.sim.rng.uniform(
                self.stream, 0.0, 1.0) < self.flake_probability:
            error = UnavailableError(
                f"api server flaked ({verb} {detail})")
            kind = "flake"
        elif self.conflict_probability and verb in self.MUTATING and \
                self.sim.rng.uniform(self.stream, 0.0, 1.0) < \
                self.conflict_probability:
            error = ConflictError(
                f"injected write conflict ({verb} {detail})")
            kind = "conflict"
        if error is None:
            return
        self.injected += 1
        self.sim.telemetry.registry.counter(
            "repro_api_faults_injected_total",
            help="API-server faults injected by chaos campaigns",
            verb=verb, kind=kind).increment()
        raise error


class EventType(enum.Enum):
    """Watch event types."""

    ADDED = "ADDED"
    MODIFIED = "MODIFIED"
    DELETED = "DELETED"


@dataclass(frozen=True)
class WatchEvent:
    """One delivered watch event: the type and an object snapshot."""

    type: EventType
    object: ApiObject

    @property
    def key(self) -> ObjectKey:
        """Identity of the object the event concerns."""
        return self.object.key


class WatchClosed:
    """Sentinel delivered to a severed stream's readers.

    A consumer receiving it must treat the stream as dead and re-list
    (open a fresh watch, whose replay delivers every live object as
    ``ADDED``)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<WATCH_CLOSED>"


#: the one sentinel instance every closed stream delivers
WATCH_CLOSED = WatchClosed()


class WatchStream:
    """A consumer handle over one kind's event feed."""

    def __init__(self, sim: Simulator, kind: str, name: str = "",
                 server: Optional["ApiServer"] = None) -> None:
        self.kind = kind
        self._queue = Store(sim, name=name or f"watch-{kind}")
        self._server = server
        self.closed = False

    def next_event(self):
        """Event (simulation waitable) yielding the next WatchEvent.

        After :meth:`close`, pending events drain first and then every
        read yields :data:`WATCH_CLOSED`."""
        if self.closed and not len(self._queue):
            # the sentinel was already consumed (or handed straight to a
            # blocked reader); keep reporting closure instead of
            # wedging late readers forever
            event = self._queue.sim.event(name=f"watch-{self.kind}.closed")
            event.succeed(WATCH_CLOSED)
            return event
        return self._queue.get()

    def try_next(self):
        """Non-blocking: ``(ok, event)``."""
        return self._queue.try_get()

    def _deliver(self, event: WatchEvent) -> None:
        if not self.closed:
            self._queue.put(event)

    def close(self) -> None:
        """Sever the stream (idempotent).

        Ordering contract (the close-during-delivery rule): an event
        already handed to a blocked reader at the closing instant is
        still delivered — closing never claws it back — and every event
        queued before the close remains readable, strictly *before* the
        :data:`WATCH_CLOSED` sentinel.  Nothing is lost and nothing is
        delivered twice; the sentinel is appended exactly once, and the
        stream is detached from the server so no further events arrive.
        """
        if self.closed:
            return
        self.closed = True
        if self._server is not None:
            self._server._detach(self)
        # the sentinel goes through the same FIFO as real events, so a
        # reader blocked mid-delivery finishes its event first and every
        # queued event is read before the closure is observed
        self._queue.put(WATCH_CLOSED)

    def __len__(self) -> int:
        return len(self._queue)


class ApiServer:
    """The cluster's object store and watch hub."""

    def __init__(self, sim: Simulator, cluster_name: str = "cluster") -> None:
        self.sim = sim
        self.cluster_name = cluster_name
        self._objects: Dict[str, Dict[ObjectKey, ApiObject]] = {}
        self._watches: Dict[str, List[WatchStream]] = {}
        self._uid_counter = itertools.count(1)
        self._rv_counter = itertools.count(1)
        #: total mutations served, for operator-efficiency experiments
        self.mutation_count = 0
        #: chaos hook: when set, every request passes admission first
        self.chaos: Optional[ApiFaultInjector] = None

    def _admit(self, verb: str, detail: str = "") -> None:
        if self.chaos is not None:
            self.chaos.admit(verb, detail)

    # -- CRUD ---------------------------------------------------------------

    def create(self, obj: T) -> T:
        """Admit a new object; returns the stored snapshot."""
        self._admit("create", str(obj.key))
        obj.validate()
        kind_store = self._objects.setdefault(obj.kind, {})
        key = obj.key
        if key in kind_store:
            raise AlreadyExistsError(f"{key} already exists")
        stored = copy.deepcopy(obj)
        stored.meta.uid = next(self._uid_counter)
        stored.meta.resource_version = next(self._rv_counter)
        stored.meta.creation_time = self.sim.now
        stored.meta.deletion_time = None
        kind_store[key] = stored
        self.mutation_count += 1
        self._broadcast(EventType.ADDED, stored)
        return copy.deepcopy(stored)

    def get(self, cls: Type[T], name: str, namespace: str = "") -> T:
        """Fetch one object by identity; raises NotFoundError."""
        self._admit("get", f"{cls.KIND}/{namespace}/{name}")
        key = ObjectKey(cls.KIND, namespace, name)
        stored = self._objects.get(cls.KIND, {}).get(key)
        if stored is None:
            raise NotFoundError(f"{key} not found")
        return copy.deepcopy(stored)  # type: ignore[return-value]

    def try_get(self, cls: Type[T], name: str,
                namespace: str = "") -> Optional[T]:
        """Fetch one object or None (no exception)."""
        try:
            return self.get(cls, name, namespace)
        except NotFoundError:
            return None

    def list(self, cls: Type[T], namespace: Optional[str] = None,
             label_selector: Optional[Dict[str, str]] = None) -> List[T]:
        """List objects of a kind, optionally filtered by namespace and
        an equality label selector; name-sorted for determinism."""
        self._admit("list", cls.KIND)
        results = []
        for stored in self._objects.get(cls.KIND, {}).values():
            if namespace is not None and stored.meta.namespace != namespace:
                continue
            if label_selector and not matches_labels(stored, label_selector):
                continue
            results.append(copy.deepcopy(stored))
        results.sort(key=lambda o: (o.meta.namespace, o.meta.name))
        return results  # type: ignore[return-value]

    def update(self, obj: T) -> T:
        """Replace an object; requires the current resource version."""
        self._admit("update", str(obj.key))
        obj.validate()
        stored = self._require(obj.key)
        if obj.meta.resource_version != stored.meta.resource_version:
            raise ConflictError(
                f"{obj.key}: stale resourceVersion "
                f"{obj.meta.resource_version} "
                f"(current {stored.meta.resource_version})")
        updated = copy.deepcopy(obj)
        updated.meta.uid = stored.meta.uid
        updated.meta.creation_time = stored.meta.creation_time
        updated.meta.deletion_time = stored.meta.deletion_time
        updated.meta.resource_version = next(self._rv_counter)
        self._objects[obj.kind][obj.key] = updated
        self.mutation_count += 1
        self._broadcast(EventType.MODIFIED, updated)
        self._maybe_finalize(updated)
        return copy.deepcopy(updated)

    def delete(self, cls: Type[T], name: str, namespace: str = "") -> None:
        """Request deletion.

        Objects without finalizers disappear immediately (``DELETED``);
        objects with finalizers get a deletion timestamp and a
        ``MODIFIED`` event so their controllers can clean up.
        """
        self._admit("delete", f"{cls.KIND}/{namespace}/{name}")
        key = ObjectKey(cls.KIND, namespace, name)
        stored = self._require(key)
        if stored.meta.finalizers:
            if stored.meta.deletion_time is None:
                stored.meta.deletion_time = self.sim.now
                stored.meta.resource_version = next(self._rv_counter)
                self.mutation_count += 1
                self._broadcast(EventType.MODIFIED, stored)
            return
        del self._objects[key.kind][key]
        self.mutation_count += 1
        self._broadcast(EventType.DELETED, stored)

    def remove_finalizer(self, cls: Type[T], name: str, namespace: str,
                         finalizer: str) -> None:
        """Remove one finalizer; completes deletion when it was the last."""
        self._admit("remove_finalizer", f"{cls.KIND}/{namespace}/{name}")
        key = ObjectKey(cls.KIND, namespace, name)
        stored = self._require(key)
        if finalizer not in stored.meta.finalizers:
            return
        stored.meta.finalizers.remove(finalizer)
        stored.meta.resource_version = next(self._rv_counter)
        self.mutation_count += 1
        self._broadcast(EventType.MODIFIED, stored)
        self._maybe_finalize(stored)

    # -- watches ---------------------------------------------------------

    def watch(self, cls: Type[T], name: str = "") -> WatchStream:
        """Open a watch on a kind; past objects are replayed as ADDED so
        late-starting controllers converge (list+watch semantics)."""
        self._admit("watch", cls.KIND)
        stream = WatchStream(self.sim, cls.KIND, name=name, server=self)
        self._watches.setdefault(cls.KIND, []).append(stream)
        for stored in self._objects.get(cls.KIND, {}).values():
            stream._deliver(WatchEvent(EventType.ADDED,
                                       copy.deepcopy(stored)))
        return stream

    def drop_watches(self, kind: Optional[str] = None) -> int:
        """Chaos hook: sever every open watch stream (of one kind, or
        all).  Consumers observe :data:`WATCH_CLOSED` after their queued
        events drain and must re-list.  Returns how many were severed."""
        kinds = [kind] if kind is not None else list(self._watches)
        dropped = 0
        for k in kinds:
            for stream in list(self._watches.get(k, [])):
                stream.close()
                dropped += 1
        return dropped

    # -- internals ------------------------------------------------------

    def _detach(self, stream: WatchStream) -> None:
        streams = self._watches.get(stream.kind, [])
        if stream in streams:
            streams.remove(stream)

    def _require(self, key: ObjectKey) -> ApiObject:
        stored = self._objects.get(key.kind, {}).get(key)
        if stored is None:
            raise NotFoundError(f"{key} not found")
        return stored

    def _maybe_finalize(self, stored: ApiObject) -> None:
        if stored.meta.deletion_time is not None and \
                not stored.meta.finalizers:
            key = stored.key
            if key in self._objects.get(key.kind, {}):
                del self._objects[key.kind][key]
                self.mutation_count += 1
                self._broadcast(EventType.DELETED, stored)

    def _broadcast(self, event_type: EventType, stored: ApiObject) -> None:
        for stream in self._watches.get(stored.kind, []):
            stream._deliver(WatchEvent(event_type, copy.deepcopy(stored)))

    def object_count(self, cls: Type[T]) -> int:
        """Number of stored objects of a kind."""
        return len(self._objects.get(cls.KIND, {}))

    def __repr__(self) -> str:
        total = sum(len(v) for v in self._objects.values())
        return f"<ApiServer {self.cluster_name!r} objects={total}>"
