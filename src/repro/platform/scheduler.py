"""A minimal pod scheduler: Pending pods start Running once their PVCs
are bound.

The demonstration does not need real scheduling; it needs pods to hold
PVC references (so the namespace operator can see which claims a business
process uses) and to become Running only when their storage exists —
enough to script the use case of §II faithfully.
"""

from __future__ import annotations

from typing import ClassVar, Generator, List, Type

from repro.errors import NotFoundError
from repro.platform.apiserver import ApiServer, WatchEvent
from repro.platform.controller import Reconciler, ReconcileResult, Requeue
from repro.platform.objects import ObjectKey
from repro.platform.resources import PersistentVolumeClaim, Pod


class PodSchedulerReconciler(Reconciler):
    """Moves pods from Pending to Running when their claims are bound."""

    kind: ClassVar[Type[Pod]] = Pod
    extra_kinds = (PersistentVolumeClaim,)

    def __init__(self, start_delay: float = 0.010) -> None:
        if start_delay < 0:
            raise ValueError(f"start_delay must be >= 0: {start_delay}")
        self.start_delay = start_delay

    def reconcile(self, api: ApiServer, key: ObjectKey,
                  ) -> Generator[object, object, ReconcileResult]:
        try:
            pod = api.get(Pod, key.name, key.namespace)
        except NotFoundError:
            return None
        if pod.status.phase == "Running" or pod.meta.deleting:
            return None
        for pvc_name in pod.spec.pvc_names:
            pvc = api.try_get(PersistentVolumeClaim, pvc_name,
                              key.namespace)
            if pvc is None or not pvc.bound:
                return Requeue(after=0.050)
        if self.start_delay > 0:
            yield api.sim.timeout(self.start_delay)
        current = api.try_get(Pod, key.name, key.namespace)
        if current is None or current.status.phase == "Running":
            return None
        current.status.phase = "Running"
        api.update(current)
        return None

    def map_event(self, api: ApiServer,
                  event: WatchEvent) -> List[ObjectKey]:
        """A PVC change wakes every pod in its namespace (cheap and safe)."""
        pods = api.list(Pod, namespace=event.object.meta.namespace)
        return [pod.key for pod in pods]
