"""The web-console facade (Figs 2-5 of the paper).

The demonstration is operated entirely from the OpenShift web consoles;
this class is the programmatic equivalent.  Every method corresponds to
one *user-visible operation* (a click/form submission), and each call is
recorded in an operation log — the measurement experiment E3 uses to
compare manual storage administration against the namespace operator's
one-tag automation.

Operations the paper performs on the console:

* tag a namespace (Fig 3) — starts the backup configuration;
* list PVs / PVCs (Figs 3-4) — observe mirrored volumes appearing;
* create a volume snapshot (Fig 5) — snapshot development;
* direct array commands — the paper's §II notes that *snapshot groups*
  are not yet reachable through CSI (alpha feature), so the user must
  operate the external storage system directly; those operations are
  logged with ``surface="storage-array"`` so the automation gap is
  measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.platform.resources import (Namespace, PersistentVolume,
                                      PersistentVolumeClaim, Pod,
                                      VolumeSnapshot, VolumeSnapshotSpec)

if TYPE_CHECKING:  # pragma: no cover
    from repro.platform.cluster import Cluster
    from repro.storage.array import StorageArray
    from repro.storage.snapshot import SnapshotGroup


@dataclass(frozen=True)
class ConsoleOperation:
    """One user-visible operation performed on a console."""

    time: float
    surface: str  # "console" or "storage-array"
    action: str
    detail: str = ""

    def __str__(self) -> str:
        return f"[{self.time:10.6f}] ({self.surface}) {self.action} {self.detail}"


class Console:
    """Programmatic stand-in for one site's web console."""

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster
        self.operations: List[ConsoleOperation] = []

    # -- logging ---------------------------------------------------------

    def _log(self, action: str, detail: str = "",
             surface: str = "console") -> None:
        self.operations.append(ConsoleOperation(
            time=self.cluster.sim.now, surface=surface, action=action,
            detail=detail))

    def operation_count(self, surface: Optional[str] = None) -> int:
        """Number of logged user operations, optionally per surface."""
        if surface is None:
            return len(self.operations)
        return sum(1 for op in self.operations if op.surface == surface)

    def screen_log(self) -> str:
        """Human-readable rendering of everything the user did."""
        return "\n".join(str(op) for op in self.operations)

    # -- namespace tagging (Fig 3) -------------------------------------------

    def tag_namespace(self, namespace: str, key: str, value: str) -> None:
        """Put a tag (label) on a namespace — one user operation."""
        obj = self.cluster.api.get(Namespace, namespace)
        obj.meta.labels[key] = value
        self.cluster.api.update(obj)
        self._log("tag-namespace", f"{namespace} {key}={value}")

    def untag_namespace(self, namespace: str, key: str) -> None:
        """Remove a tag from a namespace — one user operation."""
        obj = self.cluster.api.get(Namespace, namespace)
        obj.meta.labels.pop(key, None)
        self.cluster.api.update(obj)
        self._log("untag-namespace", f"{namespace} {key}")

    # -- observation (Figs 3-4) --------------------------------------------

    def list_persistent_volumes(self) -> List[PersistentVolume]:
        """The PV list pane (lower halves of the demo screen)."""
        self._log("list-pv")
        return self.cluster.api.list(PersistentVolume)

    def list_claims(self, namespace: str) -> List[PersistentVolumeClaim]:
        """The PVC list pane for one namespace."""
        self._log("list-pvc", namespace)
        return self.cluster.api.list(PersistentVolumeClaim,
                                     namespace=namespace)

    def list_pods(self, namespace: str) -> List[Pod]:
        """The workload pane for one namespace."""
        self._log("list-pod", namespace)
        return self.cluster.api.list(Pod, namespace=namespace)

    def list_events(self, namespace: str):
        """The events pane: what the automation did, newest last."""
        from repro.platform.events import PlatformEvent
        self._log("list-events", namespace)
        events = self.cluster.api.list(PlatformEvent,
                                       namespace=namespace)
        events.sort(key=lambda event: event.last_seen)
        return events

    # -- snapshot development (Fig 5) ------------------------------------

    def create_volume_snapshot(self, namespace: str, name: str,
                               pvc_name: str) -> VolumeSnapshot:
        """Create a VolumeSnapshot through the platform API — one user
        operation; the CSI snapshotter does the array work."""
        snapshot = VolumeSnapshot()
        snapshot.meta.name = name
        snapshot.meta.namespace = namespace
        snapshot.spec = VolumeSnapshotSpec(pvc_name=pvc_name)
        created = self.cluster.api.create(snapshot)
        self._log("create-volume-snapshot", f"{namespace}/{name}")
        return created

    # -- direct storage operation (the CSI alpha gap, §II) --------------------

    def storage_array_snapshot_group(self, array: "StorageArray",
                                     group_id: str,
                                     volume_ids: Sequence[int],
                                     ):
        """Create a snapshot *group* by operating the array directly.

        Returns a process generator the caller runs.  This is the manual
        step the paper says remains because the volume-group-snapshot CSI
        feature is alpha; it is logged on the ``storage-array`` surface.
        """
        self._log("create-snapshot-group",
                  f"{group_id} volumes={list(volume_ids)}",
                  surface="storage-array")
        return array.create_snapshot_group(group_id, volume_ids,
                                           quiesce=True)

    def storage_array_command(self, description: str) -> None:
        """Record one generic manual array operation (E3's manual
        baseline uses this to count per-volume configuration steps)."""
        self._log("array-command", description, surface="storage-array")
