"""Optional scheduling trace for debugging and test assertions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, List

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.kernel import Simulator


@dataclass(frozen=True)
class TraceRecord:
    """One traced kernel action."""

    time: float
    action: str
    detail: dict

    def __str__(self) -> str:
        fields = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.time:10.6f}] {self.action} {fields}"


@dataclass
class TraceLog:
    """Append-only log of kernel actions; enabled via ``Simulator(trace=True)``."""

    sim: "Simulator"
    records: List[TraceRecord] = field(default_factory=list)

    def record(self, action: str, **detail) -> None:
        """Append one record stamped with the current simulation time."""
        self.records.append(TraceRecord(self.sim.now, action, detail))

    def matching(self, action: str) -> Iterator[TraceRecord]:
        """Iterate records with the given action label."""
        return (r for r in self.records if r.action == action)

    def __len__(self) -> int:
        return len(self.records)

    def dump(self) -> str:
        """Human-readable rendering of the whole trace."""
        return "\n".join(str(r) for r in self.records)
