"""Simulation events: the primitive futures of the discrete-event kernel.

An :class:`Event` is a one-shot future living inside a single
:class:`~repro.simulation.kernel.Simulator`.  Processes wait on events by
yielding them; the kernel resumes the process when the event fires.

Three terminal states exist:

* *pending* — created, not yet fired;
* *succeeded* — fired with a value;
* *failed* — fired with an exception (re-raised inside waiting processes).

:class:`Timeout` is an event that the kernel fires after a delay.
:class:`AllOf` / :class:`AnyOf` combine events.
"""

from __future__ import annotations

import itertools
from heapq import heappush
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.errors import ProcessError, SimTimeError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.simulation.kernel import Simulator

_event_ids = itertools.count(1)

PENDING = "pending"
SUCCEEDED = "succeeded"
FAILED = "failed"

#: typed kernel-queue entry kinds — the single source of truth shared
#: with :mod:`repro.simulation.kernel`, which dispatches on them in its
#: run loop.  Hot constructors here push entries directly (no scheduling
#: method call) so the kinds live next to the code that emits them.
KIND_TIMEOUT = 0    # a = Event to succeed, b = success value
KIND_CALLBACK = 1   # a = callable, b = Event passed as its argument
KIND_RESUME = 2     # a = Process, b = fired Event (or None)
KIND_CALL = 3       # a = CallbackHandle from call_at, b unused
KIND_SLEEP = 4      # a = Process, b = sleep token (stale-wakeup guard)


class Event:
    """A one-shot future that simulation processes can wait on.

    Parameters
    ----------
    sim:
        The owning simulator.  Events may only be combined with and waited
        on by processes of the same simulator.
    name:
        Optional debug label shown in ``repr`` and traces.
    """

    __slots__ = ("sim", "name", "event_id", "_state", "_value", "_callbacks")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.event_id = next(_event_ids)
        self._state = PENDING
        self._value: object = None
        # lazily created on the first waiter: most events (timeouts on
        # the scheduling hot path) have exactly zero or one callback,
        # and the empty-list allocation was measurable
        self._callbacks: Optional[list[Callable[[Event], None]]] = None

    # -- state inspection ---------------------------------------------------

    @property
    def pending(self) -> bool:
        """True while the event has not fired."""
        return self._state == PENDING

    @property
    def triggered(self) -> bool:
        """True once the event fired, successfully or not."""
        return self._state != PENDING

    @property
    def ok(self) -> bool:
        """True if the event fired successfully."""
        return self._state == SUCCEEDED

    @property
    def value(self) -> object:
        """The success value or failure exception; raises while pending."""
        if self._state == PENDING:
            raise ProcessError(f"{self!r} has no value yet")
        return self._value

    # -- triggering ---------------------------------------------------------

    def succeed(self, value: object = None) -> "Event":
        """Fire the event successfully, waking every waiter.

        Returns self so callers can write ``return event.succeed(v)``.
        """
        # inlined _trigger: succeed is the kernel's timeout dispatch
        # path, and the callbacks go straight into the now-queue
        if self._state != PENDING:
            raise ProcessError(f"{self!r} already triggered")
        self._state = SUCCEEDED
        self._value = value
        callbacks = self._callbacks
        if callbacks:
            self._callbacks = None
            sim = self.sim
            nowq = sim._nowq
            sequence = sim._sequence
            for callback in callbacks:
                nowq.append((next(sequence), KIND_CALLBACK, callback, self))
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Fire the event with an exception; waiters re-raise it."""
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        self._trigger(FAILED, exc)
        return self

    def _trigger(self, state: str, value: object) -> None:
        if self._state != PENDING:
            raise ProcessError(f"{self!r} already triggered")
        self._state = state
        self._value = value
        callbacks = self._callbacks
        if callbacks:
            self._callbacks = None
            for callback in callbacks:
                self.sim._schedule_callback(self, callback)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)`` to run when the event fires.

        If the event already fired the callback is scheduled immediately
        (still through the event queue, preserving deterministic order).
        """
        if self._state == PENDING:
            callbacks = self._callbacks
            if callbacks is None:
                self._callbacks = [callback]
            else:
                callbacks.append(callback)
        else:
            self.sim._schedule_callback(self, callback)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}#{self.event_id}{label} {self._state}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: object = None,
                 name: str = "") -> None:
        if delay < 0:
            raise SimTimeError(f"negative timeout delay: {delay}")
        # flattened Event.__init__ (no super() dispatch) and a lazily
        # rendered debug label: timeouts dominate event allocation on
        # the scheduling hot path and both costs are measurable
        self.sim = sim
        self.name = name
        self.event_id = next(_event_ids)
        self._state = PENDING
        self._value = None
        self._callbacks = None
        self.delay = delay
        # inlined Simulator._schedule_timeout: push the typed entry
        # directly (zero-delay timeouts take the now-queue, skipping
        # the heap entirely)
        if delay == 0.0:
            sim._nowq.append(
                (next(sim._sequence), KIND_TIMEOUT, self, value))
        else:
            heappush(sim._queue,
                     (sim._now + delay, next(sim._sequence),
                      KIND_TIMEOUT, self, value))

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else f" ({self.delay:g}s)"
        return f"<{type(self).__name__}#{self.event_id}{label} {self._state}>"


class Condition(Event):
    """Base for events that fire when a set of child events satisfies a
    predicate (used by :class:`AllOf` and :class:`AnyOf`)."""

    __slots__ = ("events", "_unfired")

    def __init__(self, sim: "Simulator", events: Iterable[Event],
                 name: str = "") -> None:
        super().__init__(sim, name=name)
        self.events = tuple(events)
        for event in self.events:
            if event.sim is not sim:
                raise ProcessError(
                    f"{event!r} belongs to a different simulator")
        self._unfired = len(self.events)
        if not self.events:
            self.succeed(self._collect())
            return
        for event in self.events:
            event.add_callback(self._child_fired)

    def _collect(self) -> dict[Event, object]:
        return {event: event._value for event in self.events
                if event.triggered and event.ok}

    def _child_fired(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event._value)  # type: ignore[arg-type]
            return
        self._unfired -= 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(Condition):
    """Fires when *every* child event has fired successfully.

    The value is a dict mapping each child event to its value.  Fails as
    soon as any child fails.
    """

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._unfired == 0


class AnyOf(Condition):
    """Fires when *any* child event has fired successfully.

    The value is a dict of the already-fired children (usually one).
    """

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._unfired < len(self.events)


class CallbackHandle:
    """Cancellation token returned by :meth:`Simulator.call_at`.

    The handle sits directly in the kernel's queue as a typed entry;
    cancelling turns that entry into a tombstone the kernel drops
    lazily at pop (and excludes from ``pending_events``/``peek`` via
    the owning simulator's cancelled-entry count).
    """

    __slots__ = ("cancelled", "fn", "_sim")

    def __init__(self, fn: Optional[Callable[[], None]],
                 sim: Optional["Simulator"] = None) -> None:
        self.cancelled = False
        self.fn = fn
        #: owning simulator while the entry is still queued; cleared at
        #: dispatch and at cancel so the cancelled-entry count moves
        #: exactly once per queued handle
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the scheduled callback from running (idempotent)."""
        self.cancelled = True
        self.fn = None
        if self._sim is not None:
            self._sim._cancelled_pending += 1
            self._sim = None


class SleepRequest:
    """Marker yielded to the kernel by :meth:`Simulator.sleep`.

    Not an event: nothing can wait on it, combine it, or observe it.
    The kernel schedules the yielding process's resume directly — no
    :class:`Timeout` object, no callback list, no event id — which is
    why ``yield sim.sleep(d)`` is the fast path for pure pacing waits.
    """

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        self.delay = delay

    def __repr__(self) -> str:
        return f"<SleepRequest {self.delay:g}s>"
