"""Simulation events: the primitive futures of the discrete-event kernel.

An :class:`Event` is a one-shot future living inside a single
:class:`~repro.simulation.kernel.Simulator`.  Processes wait on events by
yielding them; the kernel resumes the process when the event fires.

Three terminal states exist:

* *pending* — created, not yet fired;
* *succeeded* — fired with a value;
* *failed* — fired with an exception (re-raised inside waiting processes).

:class:`Timeout` is an event that the kernel fires after a delay.
:class:`AllOf` / :class:`AnyOf` combine events.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.errors import ProcessError, SimTimeError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.simulation.kernel import Simulator

_event_ids = itertools.count(1)

PENDING = "pending"
SUCCEEDED = "succeeded"
FAILED = "failed"


class Event:
    """A one-shot future that simulation processes can wait on.

    Parameters
    ----------
    sim:
        The owning simulator.  Events may only be combined with and waited
        on by processes of the same simulator.
    name:
        Optional debug label shown in ``repr`` and traces.
    """

    __slots__ = ("sim", "name", "event_id", "_state", "_value", "_callbacks")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.event_id = next(_event_ids)
        self._state = PENDING
        self._value: object = None
        self._callbacks: list[Callable[[Event], None]] = []

    # -- state inspection ---------------------------------------------------

    @property
    def pending(self) -> bool:
        """True while the event has not fired."""
        return self._state == PENDING

    @property
    def triggered(self) -> bool:
        """True once the event fired, successfully or not."""
        return self._state != PENDING

    @property
    def ok(self) -> bool:
        """True if the event fired successfully."""
        return self._state == SUCCEEDED

    @property
    def value(self) -> object:
        """The success value or failure exception; raises while pending."""
        if self._state == PENDING:
            raise ProcessError(f"{self!r} has no value yet")
        return self._value

    # -- triggering ---------------------------------------------------------

    def succeed(self, value: object = None) -> "Event":
        """Fire the event successfully, waking every waiter.

        Returns self so callers can write ``return event.succeed(v)``.
        """
        self._trigger(SUCCEEDED, value)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Fire the event with an exception; waiters re-raise it."""
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        self._trigger(FAILED, exc)
        return self

    def _trigger(self, state: str, value: object) -> None:
        if self._state != PENDING:
            raise ProcessError(f"{self!r} already triggered")
        self._state = state
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self.sim._schedule_callback(self, callback)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)`` to run when the event fires.

        If the event already fired the callback is scheduled immediately
        (still through the event queue, preserving deterministic order).
        """
        if self._state == PENDING:
            self._callbacks.append(callback)
        else:
            self.sim._schedule_callback(self, callback)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}#{self.event_id}{label} {self._state}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: object = None,
                 name: str = "") -> None:
        if delay < 0:
            raise SimTimeError(f"negative timeout delay: {delay}")
        # the default debug label is rendered lazily in __repr__ —
        # timeouts dominate event allocation and the f-string cost is
        # measurable on the kernel hot path
        super().__init__(sim, name=name)
        self.delay = delay
        sim._schedule_timeout(self, delay, value)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else f" ({self.delay:g}s)"
        return f"<{type(self).__name__}#{self.event_id}{label} {self._state}>"


class Condition(Event):
    """Base for events that fire when a set of child events satisfies a
    predicate (used by :class:`AllOf` and :class:`AnyOf`)."""

    __slots__ = ("events", "_unfired")

    def __init__(self, sim: "Simulator", events: Iterable[Event],
                 name: str = "") -> None:
        super().__init__(sim, name=name)
        self.events = tuple(events)
        for event in self.events:
            if event.sim is not sim:
                raise ProcessError(
                    f"{event!r} belongs to a different simulator")
        self._unfired = len(self.events)
        if not self.events:
            self.succeed(self._collect())
            return
        for event in self.events:
            event.add_callback(self._child_fired)

    def _collect(self) -> dict[Event, object]:
        return {event: event._value for event in self.events
                if event.triggered and event.ok}

    def _child_fired(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event._value)  # type: ignore[arg-type]
            return
        self._unfired -= 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(Condition):
    """Fires when *every* child event has fired successfully.

    The value is a dict mapping each child event to its value.  Fails as
    soon as any child fails.
    """

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._unfired == 0


class AnyOf(Condition):
    """Fires when *any* child event has fired successfully.

    The value is a dict of the already-fired children (usually one).
    """

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._unfired < len(self.events)


class CallbackHandle:
    """Cancellation token returned by :meth:`Simulator.call_at`."""

    __slots__ = ("cancelled", "fn")

    def __init__(self, fn: Optional[Callable[[], None]]) -> None:
        self.cancelled = False
        self.fn = fn

    def cancel(self) -> None:
        """Prevent the scheduled callback from running (idempotent)."""
        self.cancelled = True
        self.fn = None
