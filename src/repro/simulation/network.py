"""Inter-site network link model.

The paper's two storage arrays are connected by a replication network
(§IV-A).  The difference between synchronous and asynchronous data copy is
*whether the foreground ack waits on this link*, so the link model is the
axis most experiments sweep.

:class:`NetworkLink` models a unidirectional link with:

* fixed propagation latency,
* optional bandwidth (bytes/second) producing size-dependent serialisation
  delay and FIFO queueing on the sender side,
* optional uniform jitter on the propagation latency,
* fail/partition support (transfers raise :class:`LinkDownError`).

``transfer(payload_bytes)`` is a process-style generator: ``yield from
link.transfer(n)`` completes when the last byte arrives at the far end.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.errors import SimulationError
from repro.simulation.resources import Lock

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.kernel import Simulator


class LinkDownError(SimulationError):
    """A transfer was attempted (or in flight) while the link was down."""


class NetworkLink:
    """A unidirectional network link between two sites.

    Parameters
    ----------
    sim:
        Owning simulator.
    latency:
        One-way propagation delay in seconds.
    bandwidth_bytes_per_s:
        Serialisation bandwidth; ``None`` means infinite (latency only).
    jitter_fraction:
        Uniform +/- fraction applied to the propagation latency per
        transfer (0 disables jitter).
    name:
        Label used for the RNG stream and metrics.
    """

    def __init__(self, sim: "Simulator", latency: float,
                 bandwidth_bytes_per_s: float | None = None,
                 jitter_fraction: float = 0.0,
                 name: str = "link") -> None:
        if latency < 0:
            raise ValueError(f"negative latency: {latency}")
        if bandwidth_bytes_per_s is not None and bandwidth_bytes_per_s <= 0:
            raise ValueError(f"bandwidth must be > 0: {bandwidth_bytes_per_s}")
        if not 0 <= jitter_fraction < 1:
            raise ValueError(f"jitter_fraction must be in [0,1): {jitter_fraction}")
        self.sim = sim
        self.name = name
        self.latency = latency
        self.bandwidth = bandwidth_bytes_per_s
        self.jitter_fraction = jitter_fraction
        self._up = True
        self._serialiser = Lock(sim, name=f"{name}.serialiser")
        #: cumulative bytes moved (for experiment reporting)
        self.bytes_transferred = 0
        #: number of completed transfers
        self.transfer_count = 0

    @property
    def is_up(self) -> bool:
        """True while the link carries traffic."""
        return self._up

    def fail(self) -> None:
        """Cut the link: current and future transfers raise LinkDownError."""
        self._up = False

    def restore(self) -> None:
        """Bring the link back up."""
        self._up = True

    def one_way_delay(self) -> float:
        """Sample the propagation delay for one message (with jitter)."""
        if self.jitter_fraction == 0:
            return self.latency
        return self.sim.rng.jitter(
            f"net.{self.name}", self.latency, self.jitter_fraction)

    def round_trip(self) -> float:
        """Sample a request/response round-trip delay."""
        return self.one_way_delay() * 2

    def transfer(self, payload_bytes: int) -> Generator[object, object, float]:
        """Move ``payload_bytes`` across the link (process generator).

        Returns the total elapsed transfer time.  Serialisation delay is
        FIFO-serialised across concurrent transfers (one wire); the
        propagation leg overlaps with other transfers.
        """
        if payload_bytes < 0:
            raise ValueError(f"negative payload: {payload_bytes}")
        if not self._up:
            raise LinkDownError(f"{self.name} is down")
        start = self.sim.now
        if self.bandwidth is not None and payload_bytes > 0:
            yield self._serialiser.acquire()
            try:
                if not self._up:
                    raise LinkDownError(f"{self.name} went down mid-transfer")
                yield self.sim.timeout(payload_bytes / self.bandwidth)
            finally:
                self._serialiser.release()
        delay = self.one_way_delay()
        if delay > 0:
            yield self.sim.timeout(delay)
        if not self._up:
            raise LinkDownError(f"{self.name} went down mid-transfer")
        self.bytes_transferred += payload_bytes
        self.transfer_count += 1
        return self.sim.now - start

    def __repr__(self) -> str:
        state = "up" if self._up else "DOWN"
        return (f"<NetworkLink {self.name!r} {state} "
                f"latency={self.latency:g}s bw={self.bandwidth}>")


class SitePair:
    """Convenience bundle of the two directed links between two sites."""

    def __init__(self, sim: "Simulator", latency: float,
                 bandwidth_bytes_per_s: float | None = None,
                 jitter_fraction: float = 0.0,
                 name: str = "intersite") -> None:
        self.forward = NetworkLink(
            sim, latency, bandwidth_bytes_per_s, jitter_fraction,
            name=f"{name}.fwd")
        self.backward = NetworkLink(
            sim, latency, bandwidth_bytes_per_s, jitter_fraction,
            name=f"{name}.bwd")

    def fail(self) -> None:
        """Partition the sites in both directions."""
        self.forward.fail()
        self.backward.fail()

    def restore(self) -> None:
        """Heal the partition."""
        self.forward.restore()
        self.backward.restore()

    @property
    def is_up(self) -> bool:
        """True when both directions carry traffic."""
        return self.forward.is_up and self.backward.is_up
