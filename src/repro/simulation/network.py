"""Inter-site network link model.

The paper's two storage arrays are connected by a replication network
(§IV-A).  The difference between synchronous and asynchronous data copy is
*whether the foreground ack waits on this link*, so the link model is the
axis most experiments sweep.

:class:`NetworkLink` models a unidirectional link with:

* fixed propagation latency,
* optional bandwidth (bytes/second) producing size-dependent serialisation
  delay and an explicit shared FIFO serialisation queue on the sender
  side: concurrent transfers (the pipelined ADC window keeps several in
  flight) contend for one wire in arrival order instead of each seeing
  the full pipe — :attr:`NetworkLink.queue_depth` and
  :attr:`NetworkLink.peak_queue_depth` expose the contention,
* optional uniform jitter on the propagation latency — arrival times are
  clamped to be monotone per link, so jitter never reorders transfers
  (the wire is FIFO),
* fail/partition support (transfers raise :class:`LinkDownError`; a
  transfer already in flight is interrupted *promptly* at the failure
  instant, not after its full nominal delay),
* degradation ("brownout") support for fault injection: extra propagation
  latency and a per-transfer loss fraction
  (:meth:`NetworkLink.degrade`); lost transfers raise
  :class:`TransferDroppedError` after their full delay, exactly like a
  dropped packet whose sender times out.

``transfer(payload_bytes)`` is a process-style generator: ``yield from
link.transfer(n)`` completes when the last byte arrives at the far end.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Generator, Optional

from repro.errors import SimulationError
from repro.simulation.events import Event
from repro.simulation.resources import Lock

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.kernel import Simulator


class LinkDownError(SimulationError):
    """A transfer was attempted (or in flight) while the link was down."""


class TransferDroppedError(LinkDownError):
    """A degraded (brownout) link dropped this transfer's payload.

    Subclasses :class:`LinkDownError` so retry loops written for
    partitions handle brownouts identically: the payload never arrived.
    """


class NetworkLink:
    """A unidirectional network link between two sites.

    Parameters
    ----------
    sim:
        Owning simulator.
    latency:
        One-way propagation delay in seconds.
    bandwidth_bytes_per_s:
        Serialisation bandwidth; ``None`` means infinite (latency only).
    jitter_fraction:
        Uniform +/- fraction applied to the propagation latency per
        transfer (0 disables jitter).
    name:
        Label used for the RNG stream and metrics.
    """

    def __init__(self, sim: "Simulator", latency: float,
                 bandwidth_bytes_per_s: float | None = None,
                 jitter_fraction: float = 0.0,
                 name: str = "link") -> None:
        if latency < 0:
            raise ValueError(f"negative latency: {latency}")
        if bandwidth_bytes_per_s is not None and bandwidth_bytes_per_s <= 0:
            raise ValueError(f"bandwidth must be > 0: {bandwidth_bytes_per_s}")
        if not 0 <= jitter_fraction < 1:
            raise ValueError(f"jitter_fraction must be in [0,1): {jitter_fraction}")
        self.sim = sim
        self.name = name
        self.latency = latency
        self.bandwidth = bandwidth_bytes_per_s
        self.jitter_fraction = jitter_fraction
        self._up = True
        self._serialiser = Lock(sim, name=f"{name}.serialiser")
        #: fires when the link fails; in-flight transfers wait on it so a
        #: ``fail()`` interrupts them at the failure instant
        self._down_event: Event = Event(sim, name=f"{name}.down")
        #: arrival time of the most recent delivery; propagation jitter
        #: is clamped so arrivals stay monotone (FIFO wire)
        self._last_arrival = 0.0
        #: degradation (brownout) state, see :meth:`degrade`
        self.extra_latency = 0.0
        self.loss_fraction = 0.0
        #: cumulative bytes moved (for experiment reporting)
        self.bytes_transferred = 0
        #: number of completed transfers
        self.transfer_count = 0
        #: transfers dropped while degraded
        self.transfers_dropped = 0
        #: deepest the serialisation queue ever got (transfers holding
        #: or waiting for the wire at once); 0 on a latency-only link
        self.peak_queue_depth = 0
        # registry mirrors of queue_depth/peak_queue_depth: the current
        # depth samples at a bounded cadence (a busy wire would
        # otherwise record one point per transfer), the peak on every
        # new high-water mark (monotone, so only a handful of points)
        registry = sim.telemetry.registry
        self.queue_depth_gauge = registry.gauge(
            "repro_link_queue_depth",
            help="Transfers holding or queued for the link's FIFO "
                 "serialisation stage", unit="transfers", link=name)
        self.peak_queue_depth_gauge = registry.gauge(
            "repro_link_peak_queue_depth",
            help="High-water mark of the link's serialisation queue",
            unit="transfers", link=name)
        self._queue_sampled_at = float("-inf")

    #: minimum simulated-time spacing between queue-depth samples
    QUEUE_SAMPLE_INTERVAL = 0.01

    def _sample_queue(self, depth: int) -> None:
        now = self.sim.now
        if now - self._queue_sampled_at >= self.QUEUE_SAMPLE_INTERVAL:
            self._queue_sampled_at = now
            self.queue_depth_gauge.sample(now, depth)

    @property
    def queue_depth(self) -> int:
        """Transfers currently holding or queued for the serialisation
        stage of the shared wire (0 on a latency-only link).

        The queue is strictly FIFO: :class:`~repro.simulation.resources.
        Lock` wakes waiters in arrival order, so transfer N+1 never
        starts serialising — and therefore never arrives — before
        transfer N.
        """
        if self.bandwidth is None:
            return 0
        return self._serialiser.queue_length + \
            (1 if self._serialiser.locked else 0)

    @property
    def is_up(self) -> bool:
        """True while the link carries traffic."""
        return self._up

    @property
    def is_degraded(self) -> bool:
        """True while a brownout is in effect."""
        return self.extra_latency > 0 or self.loss_fraction > 0

    def fail(self) -> None:
        """Cut the link: current and future transfers raise LinkDownError.

        Transfers sleeping in their serialisation or propagation leg are
        woken at this instant and observe the failure immediately.
        """
        if not self._up:
            return
        self._up = False
        self._down_event.succeed("link failed")

    def restore(self) -> None:
        """Bring the link back up."""
        if self._up:
            return
        self._up = True
        self._down_event = Event(self.sim, name=f"{self.name}.down")

    def degrade(self, extra_latency: float = 0.0,
                loss_fraction: float = 0.0) -> None:
        """Brown out the link: add propagation latency and/or loss.

        ``loss_fraction`` is the per-transfer drop probability; dropped
        transfers raise :class:`TransferDroppedError` after their full
        delay (the sender only learns of the loss by timeout).
        """
        if extra_latency < 0:
            raise ValueError(f"negative extra latency: {extra_latency}")
        if not 0 <= loss_fraction <= 1:
            raise ValueError(
                f"loss_fraction must be in [0,1]: {loss_fraction}")
        self.extra_latency = extra_latency
        self.loss_fraction = loss_fraction

    def clear_degradation(self) -> None:
        """End a brownout (latency and loss back to nominal)."""
        self.extra_latency = 0.0
        self.loss_fraction = 0.0

    def one_way_delay(self) -> float:
        """Sample the propagation delay for one message (with jitter)."""
        if self.jitter_fraction == 0:
            return self.latency
        return self.sim.rng.jitter(
            f"net.{self.name}", self.latency, self.jitter_fraction)

    def round_trip(self) -> float:
        """Sample a request/response round-trip delay."""
        return self.one_way_delay() * 2

    def _interruptible_wait(self, delay: float, leg: str,
                            ) -> Generator[object, object, None]:
        """Sleep ``delay`` seconds unless the link fails first.

        Raises :class:`LinkDownError` at the failure instant, so a
        mid-flight ``fail()`` is observed promptly on both the
        serialisation and propagation legs.
        """
        if not self._up:
            raise LinkDownError(
                f"{self.name} went down mid-transfer ({leg})")
        timeout = self.sim.timeout(delay)
        yield self.sim.any_of([timeout, self._down_event])
        if not self._up:
            raise LinkDownError(
                f"{self.name} went down mid-transfer ({leg})")

    def transfer(self, payload_bytes: int) -> Generator[object, object, float]:
        """Move ``payload_bytes`` across the link (process generator).

        Returns the total elapsed transfer time.  Serialisation delay is
        FIFO-serialised across concurrent transfers (one wire); the
        propagation leg overlaps with other transfers but arrivals stay
        monotone (jitter never delivers transfer N+1 before transfer N).
        """
        if payload_bytes < 0:
            raise ValueError(f"negative payload: {payload_bytes}")
        if not self._up:
            raise LinkDownError(f"{self.name} is down")
        start = self.sim.now
        if self.bandwidth is not None and payload_bytes > 0:
            depth = self.queue_depth + 1  # this transfer joins the queue
            if depth > self.peak_queue_depth:
                self.peak_queue_depth = depth
                self.peak_queue_depth_gauge.sample(self.sim.now, depth)
            self._sample_queue(depth)
            yield self._serialiser.acquire()
            try:
                yield from self._interruptible_wait(
                    payload_bytes / self.bandwidth, "serialisation")
            finally:
                self._serialiser.release()
                self._sample_queue(self.queue_depth)
        delay = self.one_way_delay() + self.extra_latency
        # FIFO clamp: a short jitter draw may not undercut the arrival
        # time of the previous delivery on this link
        arrival = max(self.sim.now + delay, self._last_arrival)
        wait = arrival - self.sim.now
        # the float round-trip now + (arrival - now) can land one ulp
        # before the previous delivery; nudge until the actual fire
        # instant is monotone, and record that instant as the arrival
        while wait > 0 and self.sim.now + wait < self._last_arrival:
            wait = math.nextafter(wait, math.inf)
        self._last_arrival = self.sim.now + wait
        if wait > 0:
            yield from self._interruptible_wait(wait, "propagation")
        if not self._up:
            raise LinkDownError(f"{self.name} went down mid-transfer")
        if self.loss_fraction > 0 and self.sim.rng.uniform(
                f"net.{self.name}.loss", 0.0, 1.0) < self.loss_fraction:
            self.transfers_dropped += 1
            raise TransferDroppedError(
                f"{self.name} dropped {payload_bytes}B transfer "
                f"(brownout loss {self.loss_fraction:g})")
        self.bytes_transferred += payload_bytes
        self.transfer_count += 1
        return self.sim.now - start

    def __repr__(self) -> str:
        state = "up" if self._up else "DOWN"
        if self._up and self.is_degraded:
            state = "DEGRADED"
        return (f"<NetworkLink {self.name!r} {state} "
                f"latency={self.latency:g}s bw={self.bandwidth}>")


class SitePair:
    """Convenience bundle of the two directed links between two sites."""

    def __init__(self, sim: "Simulator", latency: float,
                 bandwidth_bytes_per_s: float | None = None,
                 jitter_fraction: float = 0.0,
                 name: str = "intersite") -> None:
        self.forward = NetworkLink(
            sim, latency, bandwidth_bytes_per_s, jitter_fraction,
            name=f"{name}.fwd")
        self.backward = NetworkLink(
            sim, latency, bandwidth_bytes_per_s, jitter_fraction,
            name=f"{name}.bwd")

    def fail(self) -> None:
        """Partition the sites in both directions."""
        self.forward.fail()
        self.backward.fail()

    def restore(self) -> None:
        """Heal the partition."""
        self.forward.restore()
        self.backward.restore()

    def degrade(self, extra_latency: float = 0.0,
                loss_fraction: float = 0.0) -> None:
        """Brown out both directions."""
        self.forward.degrade(extra_latency, loss_fraction)
        self.backward.degrade(extra_latency, loss_fraction)

    def clear_degradation(self) -> None:
        """End the brownout in both directions."""
        self.forward.clear_degradation()
        self.backward.clear_degradation()

    @property
    def is_up(self) -> bool:
        """True when both directions carry traffic."""
        return self.forward.is_up and self.backward.is_up
