"""Synchronisation primitives for simulation processes.

* :class:`Lock` — mutual exclusion with FIFO handoff.
* :class:`Semaphore` — counted resource (``Lock`` is a semaphore of 1).
* :class:`Store` — unbounded-or-bounded FIFO channel of items; the core
  building block for request queues (e.g. a storage port's command queue,
  a controller's work queue).
* :class:`Gate` — a reusable open/closed barrier (used to quiesce the
  journal restore pipeline during snapshot-group creation).

All waits are events, so processes use them as ``item = yield
store.get()``.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Generator, Optional

from repro.errors import ProcessError
from repro.simulation.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.kernel import Simulator


class Semaphore:
    """Counted resource with FIFO waiters.

    ``acquire()`` returns an event that fires when a unit is granted;
    ``release()`` hands the unit to the longest waiter if any.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1,
                 name: str = "") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.sim = sim
        self.name = name or f"semaphore@{id(self):x}"
        self.capacity = capacity
        self._available = capacity
        self._waiters: Deque[Event] = deque()

    @property
    def available(self) -> int:
        """Units currently free."""
        return self._available

    @property
    def queue_length(self) -> int:
        """Number of processes waiting for a unit."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """Event that fires when one unit has been granted to the caller."""
        event = self.sim.event(name=f"{self.name}.acquire")
        if self._available > 0:
            self._available -= 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def cancel_acquire(self, event: Event) -> bool:
        """Withdraw a pending acquire (lock-timeout support).

        Returns True when the wait was withdrawn; False when the event
        is not waiting here — including the race where the unit was
        granted at the same instant, in which case the caller owns the
        unit and must release it.
        """
        if event.triggered:
            return False
        try:
            self._waiters.remove(event)
        except ValueError:
            return False
        return True

    def release(self) -> None:
        """Return one unit; wakes the oldest waiter if present."""
        if self._waiters:
            self._waiters.popleft().succeed()
            return
        if self._available >= self.capacity:
            raise ProcessError(f"{self.name}: release without acquire")
        self._available += 1

    def held(self) -> Generator[object, object, None]:
        """Process helper: ``yield from sem.held()`` is acquire;
        the caller must still call ``release()`` (kept explicit because
        generators cannot express ``with`` across yields cleanly)."""
        yield self.acquire()


class Lock(Semaphore):
    """Mutual exclusion: a semaphore with capacity 1."""

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        super().__init__(sim, capacity=1, name=name or f"lock@{id(self):x}")

    @property
    def locked(self) -> bool:
        """True while some process holds the lock."""
        return self._available == 0


class Store:
    """FIFO channel of items with optional capacity bound.

    ``put(item)`` returns an event that fires once the item is accepted
    (immediately if there is room).  ``get()`` returns an event that fires
    with the oldest item once one is available.
    """

    def __init__(self, sim: "Simulator", capacity: Optional[int] = None,
                 name: str = "") -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.sim = sim
        self.name = name or f"store@{id(self):x}"
        self.capacity = capacity
        self._items: Deque[object] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, object]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def queue_length(self) -> int:
        """Number of processes blocked in ``get()``."""
        return len(self._getters)

    def put(self, item: object) -> Event:
        """Offer ``item``; the returned event fires once it is enqueued."""
        event = self.sim.event(name=f"{self.name}.put")
        if self._getters:
            # Hand the item straight to the oldest getter.
            self._getters.popleft().succeed(item)
            event.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def try_put(self, item: object) -> bool:
        """Non-blocking put; returns False when the store is full."""
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.capacity is not None and len(self._items) >= self.capacity:
            return False
        self._items.append(item)
        return True

    def get(self) -> Event:
        """Event that fires with the oldest item."""
        event = self.sim.event(name=f"{self.name}.get")
        if self._items:
            item = self._items.popleft()
            self._admit_putter()
            event.succeed(item)
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> tuple[bool, object]:
        """Non-blocking get; returns ``(ok, item)``."""
        if not self._items:
            return False, None
        item = self._items.popleft()
        self._admit_putter()
        return True, item

    def drain(self) -> list:
        """Remove and return every queued item (non-blocking)."""
        items = list(self._items)
        self._items.clear()
        while self._putters and (self.capacity is None
                                 or len(self._items) < self.capacity):
            self._admit_putter()
        return items

    def _admit_putter(self) -> None:
        if self._putters and (self.capacity is None
                              or len(self._items) < self.capacity):
            event, item = self._putters.popleft()
            self._items.append(item)
            event.succeed()


class Gate:
    """A reusable barrier: processes wait while the gate is closed.

    Unlike an event, a gate can close and reopen repeatedly; ``wait()``
    returns an already-fired event while the gate is open.
    """

    def __init__(self, sim: "Simulator", open_: bool = True,
                 name: str = "") -> None:
        self.sim = sim
        self.name = name or f"gate@{id(self):x}"
        self._open = open_
        self._waiters: list[Event] = []

    @property
    def is_open(self) -> bool:
        """True when waiters pass through immediately."""
        return self._open

    def wait(self) -> Event:
        """Event that fires when the gate is (or becomes) open."""
        event = self.sim.event(name=f"{self.name}.wait")
        if self._open:
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def close(self) -> None:
        """Close the gate; subsequent waiters block. Idempotent."""
        self._open = False

    def open(self) -> None:
        """Open the gate, releasing all current waiters. Idempotent."""
        self._open = True
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed()
