"""Generator-based simulation processes.

A process wraps a Python generator.  The generator yields *waitables*:

* an :class:`~repro.simulation.events.Event` (including ``Timeout``,
  ``AllOf``, ``AnyOf``) — the process resumes when it fires;
* another :class:`Process` — the process resumes when it terminates
  (join semantics) and receives its return value;
* ``None`` — yield control for one scheduler step at the current time.

``return value`` inside the generator sets the process result, delivered
to joiners and readable via :attr:`Process.result` after termination.

Processes can be interrupted: :meth:`interrupt` raises
:class:`~repro.errors.Interrupted` inside the generator at its current
wait point.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Generator, Optional

from repro.errors import Interrupted, ProcessError
from repro.simulation.events import (PENDING, SUCCEEDED, Event,
                                     SleepRequest)

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.kernel import Simulator

_process_ids = itertools.count(1)

ProcessGenerator = Generator[object, object, object]


class Process:
    """A running simulation process.

    Do not instantiate directly; use :meth:`Simulator.spawn`.
    """

    __slots__ = ("sim", "name", "process_id", "_generator", "_terminated",
                 "_waiting_on", "_interrupts", "_sleep_token", "_step_ref")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator,
                 name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise ProcessError(
                f"spawn() needs a generator, got {type(generator).__name__};"
                " did you forget to call the generator function?")
        self.sim = sim
        self.process_id = next(_process_ids)
        self.name = name or f"process-{self.process_id}"
        self._generator = generator
        self._terminated: Event = Event(sim, name=f"{self.name}.terminated")
        self._waiting_on: Optional[Event] = None
        self._interrupts: list[Interrupted] = []
        #: staleness guard for the sim.sleep fast path: a queued sleep
        #: resume only fires while its token is still current; any real
        #: step (e.g. an interrupt pulling us out of the sleep)
        #: invalidates outstanding sleep entries by bumping the token
        self._sleep_token = 0
        #: one reusable bound method — registering a wait callback no
        #: longer allocates a method object per step
        self._step_ref = self._step

    # -- inspection ----------------------------------------------------------

    @property
    def alive(self) -> bool:
        """True until the generator returns or raises."""
        return self._terminated.pending

    @property
    def result(self) -> object:
        """The generator's return value; raises if still alive or failed."""
        value = self._terminated.value
        if not self._terminated.ok:
            raise value  # type: ignore[misc]
        return value

    def join(self) -> Event:
        """Event that fires (with the result) when this process ends.

        Yield the process itself for the same effect; ``join()`` exists for
        combining with :class:`AllOf`/:class:`AnyOf`.
        """
        return self._terminated

    # -- control ---------------------------------------------------------

    def interrupt(self, cause: object = None) -> None:
        """Raise :class:`Interrupted` inside the process at its wait point.

        Interrupting a dead process is an error; interrupting a process
        that has not started yet delivers the interrupt at its first wait.
        """
        if not self.alive:
            raise ProcessError(f"cannot interrupt dead {self!r}")
        self._interrupts.append(Interrupted(cause))
        self.sim._schedule_resume(self, None)

    # -- kernel interface --------------------------------------------------

    def _step(self, fired: Optional[Event]) -> None:
        """Advance the generator by one yield.  Called only by the kernel."""
        if self._terminated._state != PENDING:  # dead (inlined .alive)
            return
        # Ignore stale wakeups: if we are waiting on event X and get a
        # resume for event Y (e.g. an AnyOf child that lost the race after
        # an interrupt re-armed the wait), drop it.
        if fired is not None and fired is not self._waiting_on:
            return
        if fired is None and not self._interrupts and self._waiting_on is not None:
            return
        self._waiting_on = None
        self._sleep_token += 1
        try:
            if self._interrupts:
                interrupt = self._interrupts.pop(0)
                target = self._generator.throw(interrupt)
            elif fired is None:
                target = self._generator.send(None)
            elif fired._state == SUCCEEDED:
                # a delivered event is triggered by construction, so its
                # value/state can be read without the property guards
                target = self._generator.send(fired._value)
            else:
                target = self._generator.throw(fired._value)  # type: ignore[arg-type]
        except StopIteration as stop:
            self._terminated.succeed(stop.value)
            return
        except Interrupted as exc:
            # An un-caught interrupt terminates the process "normally"
            # with the interrupt as its failure.
            self._terminated.fail(exc)
            return
        except Exception as exc:  # noqa: BLE001 - propagate to joiners
            if not self.sim.capture_process_errors:
                raise
            self._terminated.fail(exc)
            return
        # inlined _wait_for fast path: waiting on an event (timeouts
        # dominate) registers the one reusable bound method directly
        if isinstance(target, Event):
            if target.sim is not self.sim:
                self._terminated.fail(ProcessError(
                    f"{self!r} waited on {target!r} from another "
                    "simulator"))
                return
            self._waiting_on = target
            if target._state == PENDING:
                callbacks = target._callbacks
                if callbacks is None:
                    target._callbacks = [self._step_ref]
                else:
                    callbacks.append(self._step_ref)
            else:
                self.sim._schedule_callback(target, self._step_ref)
            return
        self._wait_for(target)

    def _wait_for(self, target: object) -> None:
        """Handle the non-:class:`Event` waitables a process can yield.

        The Event case — the hot path — is inlined in :meth:`_step`.
        """
        if target is None:
            # Bare yield: resume in the same timestep after queued events.
            self.sim._schedule_resume(self, None)
            return
        if type(target) is SleepRequest:
            # sim.sleep fast path: the kernel resumes us directly at
            # now + delay — no Timeout event is ever materialised
            self._sleep_token += 1
            self.sim._schedule_sleep(target.delay, self, self._sleep_token)
            return
        if isinstance(target, Process):
            join = target.join()
            if join.sim is not self.sim:
                self._terminated.fail(ProcessError(
                    f"{self!r} waited on {join!r} from another simulator"))
                return
            self._waiting_on = join
            join.add_callback(self._step_ref)
            return
        self._generator.close()
        self._terminated.fail(ProcessError(
            f"{self!r} yielded {target!r}; processes may only yield "
            "events, processes, or None"))

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return f"<Process#{self.process_id} {self.name!r} {state}>"
