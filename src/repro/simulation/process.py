"""Generator-based simulation processes.

A process wraps a Python generator.  The generator yields *waitables*:

* an :class:`~repro.simulation.events.Event` (including ``Timeout``,
  ``AllOf``, ``AnyOf``) — the process resumes when it fires;
* another :class:`Process` — the process resumes when it terminates
  (join semantics) and receives its return value;
* ``None`` — yield control for one scheduler step at the current time.

``return value`` inside the generator sets the process result, delivered
to joiners and readable via :attr:`Process.result` after termination.

Processes can be interrupted: :meth:`interrupt` raises
:class:`~repro.errors.Interrupted` inside the generator at its current
wait point.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Generator, Optional

from repro.errors import Interrupted, ProcessError
from repro.simulation.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.kernel import Simulator

_process_ids = itertools.count(1)

ProcessGenerator = Generator[object, object, object]


class Process:
    """A running simulation process.

    Do not instantiate directly; use :meth:`Simulator.spawn`.
    """

    __slots__ = ("sim", "name", "process_id", "_generator", "_terminated",
                 "_waiting_on", "_interrupts")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator,
                 name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise ProcessError(
                f"spawn() needs a generator, got {type(generator).__name__};"
                " did you forget to call the generator function?")
        self.sim = sim
        self.process_id = next(_process_ids)
        self.name = name or f"process-{self.process_id}"
        self._generator = generator
        self._terminated: Event = Event(sim, name=f"{self.name}.terminated")
        self._waiting_on: Optional[Event] = None
        self._interrupts: list[Interrupted] = []

    # -- inspection ----------------------------------------------------------

    @property
    def alive(self) -> bool:
        """True until the generator returns or raises."""
        return self._terminated.pending

    @property
    def result(self) -> object:
        """The generator's return value; raises if still alive or failed."""
        value = self._terminated.value
        if not self._terminated.ok:
            raise value  # type: ignore[misc]
        return value

    def join(self) -> Event:
        """Event that fires (with the result) when this process ends.

        Yield the process itself for the same effect; ``join()`` exists for
        combining with :class:`AllOf`/:class:`AnyOf`.
        """
        return self._terminated

    # -- control ---------------------------------------------------------

    def interrupt(self, cause: object = None) -> None:
        """Raise :class:`Interrupted` inside the process at its wait point.

        Interrupting a dead process is an error; interrupting a process
        that has not started yet delivers the interrupt at its first wait.
        """
        if not self.alive:
            raise ProcessError(f"cannot interrupt dead {self!r}")
        self._interrupts.append(Interrupted(cause))
        self.sim._schedule_resume(self, None)

    # -- kernel interface --------------------------------------------------

    def _step(self, fired: Optional[Event]) -> None:
        """Advance the generator by one yield.  Called only by the kernel."""
        if not self.alive:
            return
        # Ignore stale wakeups: if we are waiting on event X and get a
        # resume for event Y (e.g. an AnyOf child that lost the race after
        # an interrupt re-armed the wait), drop it.
        if fired is not None and fired is not self._waiting_on:
            return
        if fired is None and not self._interrupts and self._waiting_on is not None:
            return
        self._waiting_on = None
        try:
            if self._interrupts:
                interrupt = self._interrupts.pop(0)
                target = self._generator.throw(interrupt)
            elif fired is None:
                target = self._generator.send(None)
            elif fired.ok:
                target = self._generator.send(fired.value)
            else:
                target = self._generator.throw(fired.value)  # type: ignore[arg-type]
        except StopIteration as stop:
            self._terminated.succeed(stop.value)
            return
        except Interrupted as exc:
            # An un-caught interrupt terminates the process "normally"
            # with the interrupt as its failure.
            self._terminated.fail(exc)
            return
        except Exception as exc:  # noqa: BLE001 - propagate to joiners
            if not self.sim.capture_process_errors:
                raise
            self._terminated.fail(exc)
            return
        self._wait_for(target)

    def _wait_for(self, target: object) -> None:
        if target is None:
            # Bare yield: resume in the same timestep after queued events.
            self.sim._schedule_resume(self, None)
            return
        if isinstance(target, Process):
            target = target.join()
        if not isinstance(target, Event):
            self._generator.close()
            self._terminated.fail(ProcessError(
                f"{self!r} yielded {target!r}; processes may only yield "
                "events, processes, or None"))
            return
        if target.sim is not self.sim:
            self._terminated.fail(ProcessError(
                f"{self!r} waited on {target!r} from another simulator"))
            return
        self._waiting_on = target
        # the bound method is the resume callback directly — no closure
        # allocation on the hot path (one wait per process step)
        target.add_callback(self._step)

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return f"<Process#{self.process_id} {self.name!r} {state}>"
