"""The discrete-event simulator kernel.

:class:`Simulator` owns the virtual clock and the event queue.  All other
subsystems (storage array, container platform, databases, operators) run
as generator processes inside one simulator, which makes every experiment
deterministic and repeatable for a given seed.

Typical usage::

    sim = Simulator(seed=7)

    def hello(sim):
        yield sim.timeout(1.5)
        return "done at %.1f" % sim.now

    proc = sim.spawn(hello(sim), name="hello")
    sim.run()
    assert sim.now == 1.5 and proc.result == "done at 1.5"
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Iterable, Optional

from repro.errors import DeadlockError, SimTimeError
from repro.simulation.events import (AllOf, AnyOf, CallbackHandle, Event,
                                     Timeout)
from repro.simulation.process import Process, ProcessGenerator
from repro.simulation.rng import RngRegistry
from repro.simulation.trace import TraceLog
from repro.telemetry import Telemetry


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for the named RNG streams (see :class:`RngRegistry`).
        Two simulators with the same seed and the same program produce
        identical histories.
    trace:
        When true, record a :class:`TraceLog` of scheduling activity
        (useful in tests and debugging; off by default for speed).
    """

    def __init__(self, seed: int = 0, trace: bool = False) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self.rng = RngRegistry(seed)
        self.trace = TraceLog(self) if trace else None
        #: per-simulation observability context (metrics + spans); see
        #: :mod:`repro.telemetry`
        self.telemetry = Telemetry(clock=lambda: self._now,
                                   trace_log=self.trace)
        #: When true (default) a process whose generator raises stores the
        #: exception on its termination event instead of crashing ``run``.
        self.capture_process_errors = True
        self._stopped = False

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event construction ----------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create a fresh pending event owned by this simulator."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: object = None,
                name: str = "") -> Timeout:
        """Event that fires ``delay`` seconds from now with ``value``."""
        return Timeout(self, delay, value=value, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all ``events`` fired successfully."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` fired successfully."""
        return AnyOf(self, events)

    # -- processes ---------------------------------------------------------

    def spawn(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a new process from ``generator`` at the current time."""
        process = Process(self, generator, name=name)
        if self.trace is not None:
            self.trace.record("spawn", process=process.name)
        self._schedule_resume(process, None)
        return process

    # -- direct scheduling ---------------------------------------------------

    def call_at(self, when: float, fn: Callable[[], None]) -> CallbackHandle:
        """Run ``fn()`` at absolute simulated time ``when``.

        Returns a handle whose ``cancel()`` prevents execution.
        """
        if when < self._now:
            raise SimTimeError(
                f"cannot schedule at {when:g}, now is {self._now:g}")
        handle = CallbackHandle(fn)

        def runner() -> None:
            if not handle.cancelled and handle.fn is not None:
                handle.fn()

        self._push(when, runner)
        return handle

    def call_after(self, delay: float,
                   fn: Callable[[], None]) -> CallbackHandle:
        """Run ``fn()`` after ``delay`` seconds."""
        if delay < 0:
            raise SimTimeError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, fn)

    # -- run loop --------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the queue drains or ``until`` is reached.

        Returns the simulation time at exit.  With ``until`` set, the
        clock is advanced to exactly ``until`` even if the last event
        fired earlier (so repeated ``run(until=...)`` calls tile time).
        """
        if until is not None and until < self._now:
            raise SimTimeError(
                f"cannot run until {until:g}, now is {self._now:g}")
        self._stopped = False
        while self._queue and not self._stopped:
            when = self._queue[0][0]
            if until is not None and when > until:
                break
            when, _seq, fn = heapq.heappop(self._queue)
            self._now = when
            fn()
        if until is not None and not self._stopped:
            self._now = max(self._now, until)
        return self._now

    def run_until_complete(self, process: Process,
                           timeout: Optional[float] = None) -> object:
        """Run until ``process`` terminates and return its result.

        Raises :class:`DeadlockError` if the event queue drains first,
        or :class:`SimTimeError` if ``timeout`` simulated seconds pass.
        """
        deadline = None if timeout is None else self._now + timeout
        while process.alive:
            if not self._queue:
                raise DeadlockError(
                    f"event queue drained while {process!r} still waiting")
            if deadline is not None and self._queue[0][0] > deadline:
                raise SimTimeError(
                    f"{process!r} did not finish within {timeout:g}s")
            when, _seq, fn = heapq.heappop(self._queue)
            self._now = when
            fn()
        return process.result

    def stop(self) -> None:
        """Make the current ``run()`` call return after this event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of scheduled-but-unprocessed queue entries."""
        return len(self._queue)

    def peek(self) -> Optional[float]:
        """Time of the next scheduled event, or None if the queue is empty."""
        return self._queue[0][0] if self._queue else None

    # -- kernel internals (used by Event/Process) -----------------------------

    def _push(self, when: float, fn: Callable[[], None]) -> None:
        heapq.heappush(self._queue, (when, next(self._sequence), fn))

    def _schedule_timeout(self, event: Event, delay: float,
                          value: object) -> None:
        self._push(self._now + delay, lambda: event.succeed(value))

    def _schedule_callback(self, event: Event,
                           callback: Callable[[Event], None]) -> None:
        self._push(self._now, lambda: callback(event))

    def _schedule_resume(self, process: Process,
                         fired: Optional[Event]) -> None:
        self._push(self._now, lambda: process._step(fired))

    def __repr__(self) -> str:
        return (f"<Simulator now={self._now:g} "
                f"pending={len(self._queue)}>")
