"""The discrete-event simulator kernel.

:class:`Simulator` owns the virtual clock and the event queue.  All other
subsystems (storage array, container platform, databases, operators) run
as generator processes inside one simulator, which makes every experiment
deterministic and repeatable for a given seed.

Typical usage::

    sim = Simulator(seed=7)

    def hello(sim):
        yield sim.timeout(1.5)
        return "done at %.1f" % sim.now

    proc = sim.spawn(hello(sim), name="hello")
    sim.run()
    assert sim.now == 1.5 and proc.result == "done at 1.5"

Scheduling internals (see docs/performance.md, "Kernel scheduling"):
queue entries are typed ``(when, seq, kind, a, b)`` tuples dispatched by
a switch in :meth:`Simulator.run` — no per-event closure allocation —
and zero-delay work (event callbacks, process resumes, ``timeout(0)``)
bypasses the heap through a FIFO *now-queue*.  A single sequence counter
spans both structures, so firing order at any timestamp is exactly the
scheduling order the heap-only kernel produced.
"""

from __future__ import annotations

import itertools
from heapq import heappop, heappush
from collections import deque
from typing import Callable, Iterable, Optional

from repro.errors import DeadlockError, ProcessError, SimTimeError
from repro.simulation.events import (KIND_CALL, KIND_CALLBACK, KIND_RESUME,
                                     KIND_SLEEP, KIND_TIMEOUT, PENDING,
                                     SUCCEEDED, AllOf, AnyOf, CallbackHandle,
                                     Event, SleepRequest, Timeout)
from repro.simulation.process import Process, ProcessGenerator
from repro.simulation.rng import RngRegistry
from repro.simulation.trace import TraceLog
from repro.telemetry import Telemetry

# short aliases for the typed queue-entry kinds (events.py is the
# single source of truth); ``run`` dispatches on these small ints
# instead of calling a per-event closure — closure allocation used to
# dominate the scheduling hot path
_TIMEOUT = KIND_TIMEOUT    # a = Event to succeed, b = success value
_CALLBACK = KIND_CALLBACK  # a = callable, b = Event passed as argument
_RESUME = KIND_RESUME      # a = Process, b = fired Event (or None)
_CALL = KIND_CALL          # a = CallbackHandle from call_at, b unused
_SLEEP = KIND_SLEEP        # a = Process, b = sleep token


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for the named RNG streams (see :class:`RngRegistry`).
        Two simulators with the same seed and the same program produce
        identical histories.
    trace:
        When true, record a :class:`TraceLog` of scheduling activity
        (useful in tests and debugging; off by default for speed).
    """

    def __init__(self, seed: int = 0, trace: bool = False) -> None:
        self._now = 0.0
        #: time-ordered heap of (when, seq, kind, a, b) entries
        self._queue: list = []
        #: FIFO of (seq, kind, a, b) entries due at the current instant
        self._nowq: deque = deque()
        self._sequence = itertools.count()
        #: cancelled call_at handles still sitting in the heap; they are
        #: dropped lazily at pop and excluded from pending_events/peek
        self._cancelled_pending = 0
        self.rng = RngRegistry(seed)
        self.trace = TraceLog(self) if trace else None
        #: per-simulation observability context (metrics + spans); see
        #: :mod:`repro.telemetry`
        self.telemetry = Telemetry(clock=lambda: self._now,
                                   trace_log=self.trace)
        #: When true (default) a process whose generator raises stores the
        #: exception on its termination event instead of crashing ``run``.
        self.capture_process_errors = True
        self._stopped = False

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event construction ----------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create a fresh pending event owned by this simulator."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: object = None,
                name: str = "") -> Timeout:
        """Event that fires ``delay`` seconds from now with ``value``."""
        return Timeout(self, delay, value=value, name=name)

    def sleep(self, delay: float) -> SleepRequest:
        """Plain pause: resume the yielding process after ``delay``.

        The fast-path sibling of ``yield sim.timeout(delay)`` for the
        (overwhelmingly common) wait that nobody else observes: the
        kernel schedules the process resume directly, without
        materialising a :class:`Timeout` event object.  The resume fires
        at exactly the instant — and in exactly the order — the
        equivalent timeout would have.  Use :meth:`timeout` when the
        wait needs a value, a name, or combination via
        ``all_of``/``any_of``; use ``sleep`` for pure pacing.
        """
        if delay < 0:
            raise SimTimeError(f"negative sleep delay: {delay}")
        return SleepRequest(delay)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all ``events`` fired successfully."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` fired successfully."""
        return AnyOf(self, events)

    # -- processes ---------------------------------------------------------

    def spawn(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a new process from ``generator`` at the current time."""
        process = Process(self, generator, name=name)
        if self.trace is not None:
            self.trace.record("spawn", process=process.name)
        self._nowq.append((next(self._sequence), _RESUME, process, None))
        return process

    # -- direct scheduling ---------------------------------------------------

    def call_at(self, when: float, fn: Callable[[], None]) -> CallbackHandle:
        """Run ``fn()`` at absolute simulated time ``when``.

        Returns a handle whose ``cancel()`` prevents execution.
        """
        if when < self._now:
            raise SimTimeError(
                f"cannot schedule at {when:g}, now is {self._now:g}")
        handle = CallbackHandle(fn, self)
        heappush(self._queue,
                       (when, next(self._sequence), _CALL, handle, None))
        return handle

    def call_after(self, delay: float,
                   fn: Callable[[], None]) -> CallbackHandle:
        """Run ``fn()`` after ``delay`` seconds."""
        if delay < 0:
            raise SimTimeError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, fn)

    # -- run loop --------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the queue drains or ``until`` is reached.

        Returns the simulation time at exit.  With ``until`` set, the
        clock is advanced to exactly ``until`` even if the last event
        fired earlier (so repeated ``run(until=...)`` calls tile time).
        """
        if until is not None and until < self._now:
            raise SimTimeError(
                f"cannot run until {until:g}, now is {self._now:g}")
        self._stopped = False
        nowq = self._nowq
        heap = self._queue
        pop = heappop
        popleft = nowq.popleft
        append = nowq.append
        sequence = self._sequence
        # loop-local kind constants: the dispatch below runs once per
        # queue entry and global loads are measurable at that rate
        TIMEOUT, CALLBACK, RESUME, SLEEP, CALL = \
            _TIMEOUT, _CALLBACK, _RESUME, _SLEEP, _CALL
        while not self._stopped:
            if nowq:
                # a heap entry already due at this instant fires first
                # when it carries the older sequence number — exactly
                # the order the heap-only kernel produced
                if heap and heap[0][0] <= self._now \
                        and heap[0][1] < nowq[0][0]:
                    _when, _seq, kind, a, b = pop(heap)
                    if kind == CALL and a.cancelled:
                        self._cancelled_pending -= 1
                        continue
                else:
                    _seq, kind, a, b = popleft()
            elif heap:
                when = heap[0][0]
                if until is not None and when > until:
                    break
                _when, _seq, kind, a, b = pop(heap)
                if kind == CALL and a.cancelled:
                    # lazy tombstone drop: the clock does not advance to
                    # a cancelled callback's instant
                    self._cancelled_pending -= 1
                    continue
                self._now = when
            else:
                break
            if kind == TIMEOUT:
                # inlined Event.succeed (timeouts dominate the queue)
                if a._state != PENDING:
                    raise ProcessError(f"{a!r} already triggered")
                a._state = SUCCEEDED
                a._value = b
                callbacks = a._callbacks
                if callbacks:
                    a._callbacks = None
                    for callback in callbacks:
                        append((next(sequence), CALLBACK, callback, a))
            elif kind == CALLBACK:
                a(b)
            elif kind == RESUME:
                a._step(b)
            elif kind == SLEEP:
                if a._sleep_token == b:
                    a._step(None)
            else:  # CALL
                a._sim = None
                fn = a.fn
                if fn is not None:
                    fn()
        if until is not None and not self._stopped:
            self._now = max(self._now, until)
        return self._now

    def run_until_complete(self, process: Process,
                           timeout: Optional[float] = None) -> object:
        """Run until ``process`` terminates and return its result.

        Raises :class:`DeadlockError` if the event queue drains first,
        or :class:`SimTimeError` if ``timeout`` simulated seconds pass —
        in which case the clock is advanced to the deadline first, so
        repeated calls tile time the same way ``run(until=...)`` does.
        """
        deadline = None if timeout is None else self._now + timeout
        nowq = self._nowq
        heap = self._queue
        pop = heappop
        popleft = nowq.popleft
        append = nowq.append
        sequence = self._sequence
        TIMEOUT, CALLBACK, RESUME, SLEEP, CALL = \
            _TIMEOUT, _CALLBACK, _RESUME, _SLEEP, _CALL
        terminated = process._terminated
        while terminated._state == PENDING:
            # purge cancelled call_at tombstones up front so they can
            # neither mask a real deadlock nor stretch the deadline
            while heap and heap[0][2] == CALL and heap[0][3].cancelled:
                pop(heap)
                self._cancelled_pending -= 1
            if nowq:
                if heap and heap[0][0] <= self._now \
                        and heap[0][1] < nowq[0][0]:
                    _when, _seq, kind, a, b = pop(heap)
                    if kind == CALL and a.cancelled:
                        self._cancelled_pending -= 1
                        continue
                else:
                    _seq, kind, a, b = popleft()
            elif heap:
                when = heap[0][0]
                if deadline is not None and when > deadline:
                    self._now = deadline
                    raise SimTimeError(
                        f"{process!r} did not finish within {timeout:g}s")
                _when, _seq, kind, a, b = pop(heap)
                if kind == CALL and a.cancelled:
                    self._cancelled_pending -= 1
                    continue
                self._now = when
            else:
                raise DeadlockError(
                    f"event queue drained while {process!r} still waiting")
            if kind == TIMEOUT:
                # inlined Event.succeed (timeouts dominate the queue)
                if a._state != PENDING:
                    raise ProcessError(f"{a!r} already triggered")
                a._state = SUCCEEDED
                a._value = b
                callbacks = a._callbacks
                if callbacks:
                    a._callbacks = None
                    for callback in callbacks:
                        append((next(sequence), CALLBACK, callback, a))
            elif kind == CALLBACK:
                a(b)
            elif kind == RESUME:
                a._step(b)
            elif kind == SLEEP:
                if a._sleep_token == b:
                    a._step(None)
            else:  # CALL
                a._sim = None
                fn = a.fn
                if fn is not None:
                    fn()
        return process.result

    def stop(self) -> None:
        """Make the current ``run()`` call return after this event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of scheduled-but-unprocessed queue entries.

        Cancelled :meth:`call_at` handles still sitting in the heap are
        *excluded* — a cancelled callback is not pending work and must
        not mask a drained queue (see ``run_until_complete``'s deadlock
        detection).
        """
        return (len(self._queue) + len(self._nowq)
                - self._cancelled_pending)

    def peek(self) -> Optional[float]:
        """Time of the next live event, or None if the queue is empty.

        Skips (and drops) cancelled ``call_at`` tombstones, so the
        returned instant is one at which something will actually run.
        """
        if self._nowq:
            return self._now
        heap = self._queue
        while heap:
            head = heap[0]
            if head[2] == _CALL and head[3].cancelled:
                heappop(heap)
                self._cancelled_pending -= 1
                continue
            return head[0]
        return None

    # -- kernel internals (used by Event/Process) -----------------------------

    def _schedule_timeout(self, event: Event, delay: float,
                          value: object) -> None:
        if delay == 0.0:
            self._nowq.append(
                (next(self._sequence), _TIMEOUT, event, value))
        else:
            heappush(
                self._queue,
                (self._now + delay, next(self._sequence), _TIMEOUT,
                 event, value))

    def _schedule_callback(self, event: Event,
                           callback: Callable[[Event], None]) -> None:
        self._nowq.append((next(self._sequence), _CALLBACK, callback, event))

    def _schedule_resume(self, process: Process,
                         fired: Optional[Event]) -> None:
        self._nowq.append((next(self._sequence), _RESUME, process, fired))

    def _schedule_sleep(self, delay: float, process: Process,
                        token: int) -> None:
        if delay == 0.0:
            self._nowq.append((next(self._sequence), _SLEEP, process, token))
        else:
            heappush(
                self._queue,
                (self._now + delay, next(self._sequence), _SLEEP,
                 process, token))

    def __repr__(self) -> str:
        return (f"<Simulator now={self._now:g} "
                f"pending={self.pending_events}>")
