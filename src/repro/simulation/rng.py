"""Named, seeded random-number streams.

Determinism rule: every stochastic component draws from its *own named
stream*, derived from the master seed and the stream name.  Adding a new
component therefore never perturbs the draws of existing components, and
two runs with the same seed produce identical histories regardless of
process interleaving.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and ``name``.

    Uses SHA-256 so the mapping is stable across Python versions and
    platforms (``hash()`` is randomized per process and unusable here).
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory and cache of named :class:`random.Random` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = stream
        return stream

    def uniform(self, name: str, low: float, high: float) -> float:
        """Draw uniform(low, high) from the named stream."""
        return self.stream(name).uniform(low, high)

    def expovariate(self, name: str, rate: float) -> float:
        """Draw an exponential inter-arrival time with the given rate."""
        return self.stream(name).expovariate(rate)

    def choice(self, name: str, seq):
        """Draw one element uniformly from ``seq``."""
        return self.stream(name).choice(seq)

    def randint(self, name: str, low: int, high: int) -> int:
        """Draw an integer in [low, high] inclusive."""
        return self.stream(name).randint(low, high)

    def jitter(self, name: str, base: float, fraction: float) -> float:
        """Return ``base`` perturbed by up to +/- ``fraction`` of itself.

        Useful for desynchronising periodic processes (e.g. independent
        journal transfer loops) without changing their mean period.
        """
        if base < 0:
            raise ValueError(f"negative base: {base}")
        if not 0 <= fraction <= 1:
            raise ValueError(f"fraction must be in [0, 1]: {fraction}")
        spread = base * fraction
        return base + self.stream(name).uniform(-spread, spread)
