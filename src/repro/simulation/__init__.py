"""Discrete-event simulation kernel.

Deterministic generator-process simulator that every other subsystem of
the reproduction runs on.  Public surface:

* :class:`Simulator` — clock, event queue, process spawner.
* :class:`Event`, :class:`Timeout`, :class:`AllOf`, :class:`AnyOf` —
  waitables (plus :class:`SleepRequest`, the event-free marker behind
  the ``sim.sleep`` pacing fast path).
* :class:`Process` — spawned generator handle with join/interrupt.
* :class:`Lock`, :class:`Semaphore`, :class:`Store`, :class:`Gate` —
  synchronisation.
* :class:`NetworkLink`, :class:`SitePair` — inter-site links.
"""

from repro.simulation.events import (AllOf, AnyOf, Event, SleepRequest,
                                     Timeout)
from repro.simulation.kernel import Simulator
from repro.simulation.network import LinkDownError, NetworkLink, SitePair
from repro.simulation.process import Process
from repro.simulation.resources import Gate, Lock, Semaphore, Store
from repro.simulation.rng import RngRegistry, derive_seed
from repro.simulation.trace import TraceLog, TraceRecord

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Gate",
    "LinkDownError",
    "Lock",
    "NetworkLink",
    "Process",
    "RngRegistry",
    "Semaphore",
    "Simulator",
    "SitePair",
    "SleepRequest",
    "Store",
    "Timeout",
    "TraceLog",
    "TraceRecord",
    "derive_seed",
]
