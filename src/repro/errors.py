"""Exception hierarchy shared across the reproduction library.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch library failures without catching programming errors.
The hierarchy mirrors the subsystem layout: simulation kernel errors,
storage array errors, container platform errors, database errors, and
recovery errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


# ---------------------------------------------------------------------------
# Simulation kernel
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for discrete-event simulation kernel errors."""


class SimTimeError(SimulationError):
    """An event was scheduled in the past or with a negative delay."""


class ProcessError(SimulationError):
    """A simulation process was used in an illegal state."""


class Interrupted(SimulationError):
    """Raised inside a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


class DeadlockError(SimulationError):
    """``run()`` was asked to advance but no events remain while processes
    are still waiting."""


# ---------------------------------------------------------------------------
# Storage array
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for storage array errors."""


class VolumeError(StorageError):
    """Illegal volume operation (unknown volume, bad block, offline)."""


class CapacityError(StorageError):
    """A pool or journal ran out of capacity."""


class ReplicationError(StorageError):
    """Illegal replication pair or consistency group operation."""


class IntegrityError(StorageError):
    """A payload failed its CRC32 integrity check.

    Raised when a block read observes media corruption; journal-entry
    corruption detected on the replication path is *not* raised — the
    ADC engine quarantines the entry and suspends the pair instead.
    """


class SnapshotError(StorageError):
    """Illegal snapshot or snapshot group operation."""


class ArrayCommandError(StorageError):
    """A storage array command was rejected (bad arguments, bad state)."""


# ---------------------------------------------------------------------------
# Container platform
# ---------------------------------------------------------------------------


class PlatformError(ReproError):
    """Base class for container platform errors."""


class ApiError(PlatformError):
    """Base class for API server request failures."""

    code = 500
    reason = "InternalError"


class NotFoundError(ApiError):
    """The requested object does not exist."""

    code = 404
    reason = "NotFound"


class AlreadyExistsError(ApiError):
    """An object with the same kind/namespace/name already exists."""

    code = 409
    reason = "AlreadyExists"


class ConflictError(ApiError):
    """Optimistic-concurrency conflict: stale resourceVersion."""

    code = 409
    reason = "Conflict"


class InvalidObjectError(ApiError):
    """The submitted object failed validation."""

    code = 422
    reason = "Invalid"


class UnavailableError(ApiError):
    """The API server is (transiently) unavailable.

    Raised by chaos-injected control-plane outages and flakes; clients
    must treat it as retryable — the request may or may not have been
    admitted is *not* a question here, because the server rejects the
    call before touching state (fail-closed)."""

    code = 503
    reason = "Unavailable"


class CsiError(PlatformError):
    """A CSI driver call failed."""


class RpcTimeoutError(CsiError):
    """A CSI management RPC exceeded its deadline.

    The outcome is **ambiguous**: the array may or may not have executed
    the command before the deadline passed.  Callers must retry
    idempotently — re-reading array state before re-driving side
    effects — which is exactly what level-triggered reconcilers do."""


# ---------------------------------------------------------------------------
# MiniDB
# ---------------------------------------------------------------------------


class DatabaseError(ReproError):
    """Base class for MiniDB errors."""


class TransactionError(DatabaseError):
    """Illegal transaction state transition (e.g. write after commit)."""


class RecoveryError(DatabaseError):
    """Database recovery could not produce a consistent state."""


class CorruptPageError(RecoveryError):
    """A page failed its checksum during read or recovery."""


class TwoPhaseCommitError(DatabaseError):
    """A distributed transaction violated the 2PC protocol."""


# ---------------------------------------------------------------------------
# Recovery / failover
# ---------------------------------------------------------------------------


class FailoverError(ReproError):
    """Backup-site promotion failed."""


class RunbookError(ReproError):
    """Illegal runbook state (bad resume, step replay mismatch)."""


class RunbookInterrupted(RunbookError):
    """The orchestrator died at a step boundary (crash-injection hook).

    The runbook's journal already holds the step's checkpoint, so a new
    manager resuming from the same journal continues after the step
    without re-driving it.
    """

    def __init__(self, runbook: str, step: str) -> None:
        super().__init__(
            f"runbook {runbook!r} crashed after step {step!r}")
        self.runbook = runbook
        self.step = step


class CollapsedBackupError(FailoverError):
    """The backup image is collapsed: no consistent recovery exists.

    This is the failure mode of asynchronous data copy without a
    consistency group that the paper's Section I describes.
    """
