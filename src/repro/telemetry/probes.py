"""Periodic probes: continuous sampling of replication health.

An :class:`ArrayProbe` is a simulation process that wakes on a fixed
interval and samples one storage array's replication state into
registry gauges: journal entry-lag and byte-lag, the age of the oldest
unshipped entry, suspension flags, pair copy-state transitions, and
snapshot age.  This is the continuous-observation analogue of the spot
checks the benchmarks used to hand-roll — the paper's "no backup-data
collapse" claim is a statement about these series staying bounded.

Probes are read-only: they never yield inside the sampled structures
and never mutate them, so enabling a probe cannot perturb the
simulation's event order (only add its own wake-ups).

Probes are started explicitly (``repro metrics`` CLI, or
``run_demo(probe_interval=...)``); they run forever, so a bare
``sim.run()`` with a probe attached needs an ``until=`` bound.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.kernel import Simulator
    from repro.storage.array import StorageArray

#: default sampling period (seconds); ~4x the default transfer interval
DEFAULT_INTERVAL = 0.02


class ArrayProbe:
    """Samples one array's replication/snapshot state into the registry."""

    def __init__(self, sim: "Simulator", array: "StorageArray",
                 interval: float = DEFAULT_INTERVAL) -> None:
        if interval <= 0:
            raise ValueError(f"probe interval must be > 0: {interval}")
        self.sim = sim
        self.array = array
        self.interval = interval
        self.registry = sim.telemetry.registry
        self.samples_taken = 0
        self._last_pair_state: Dict[str, str] = {}
        self._process = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ArrayProbe":
        """Spawn the sampling process (idempotent); returns self."""
        if self._process is None:
            self._process = self.sim.spawn(
                self._run(), name=f"probe-{self.array.serial}")
        return self

    def _run(self) -> Generator[object, object, None]:
        while True:
            yield self.sim.timeout(self.interval)
            self.sample_once()

    # -- sampling ------------------------------------------------------------

    def sample_once(self) -> None:
        """Take one sample of everything this probe watches.

        Public so tests (and drained scenarios) can sample at exact
        instants without running the periodic process.
        """
        now = self.sim.now
        for group_id in sorted(self.array.journal_groups):
            group = self.array.journal_groups[group_id]
            # the group object is registered on both arrays; sample it
            # from the main side only so series aren't double-counted
            if not self.array.owns_journal(group.main_journal):
                continue
            self._sample_group(now, group)
        for mirror_id in sorted(self.array.sync_mirrors):
            mirror = self.array.sync_mirrors[mirror_id]
            for pair in mirror.pairs.values():
                self._track_pair_state(mirror_id, pair)
        for group in self.array.list_snapshot_groups():
            self.registry.gauge(
                "repro_snapshot_age_seconds",
                help="Age of each live snapshot group",
                unit="seconds", array=self.array.serial,
                group=group.group_id,
            ).sample(now, now - group.created_at)
        self.samples_taken += 1

    def _sample_group(self, now: float, group) -> None:
        labels = dict(group=group.group_id)
        self.registry.gauge(
            "repro_journal_entry_lag",
            help="Journaled-but-unrestored entries (main+backup journals)",
            unit="entries", **labels,
        ).sample(now, group.entry_lag)
        byte_lag = (group.main_journal.bytes_retained
                    + group.backup_journal.bytes_retained)
        self.registry.gauge(
            "repro_journal_byte_lag_bytes",
            help="Journaled-but-unrestored bytes (main+backup journals)",
            unit="bytes", **labels,
        ).sample(now, byte_lag)
        oldest = group.main_journal.oldest_entry()
        age = now - oldest.created_at if oldest is not None else 0.0
        self.registry.gauge(
            "repro_journal_oldest_entry_age_seconds",
            help="Age of the oldest unshipped main-journal entry",
            unit="seconds", **labels,
        ).sample(now, age)
        self.registry.gauge(
            "repro_journal_suspended",
            help="1 while the group is suspended (PSUS/PSUE), else 0",
            **labels,
        ).sample(now, 1.0 if group.suspended else 0.0)
        for pair in group.pairs.values():
            self._track_pair_state(group.group_id, pair)

    def _track_pair_state(self, engine_id: str, pair) -> None:
        """Count copy-state transitions (COPY→PAIR, PAIR→PSUE, …)."""
        state = pair.state.value
        previous = self._last_pair_state.get(pair.pair_id)
        self._last_pair_state[pair.pair_id] = state
        if previous is None or previous == state:
            return
        self.registry.counter(
            "repro_pair_state_transitions_total",
            help="Pair copy-state transitions observed by the probe",
            engine=engine_id, pair=pair.pair_id,
            transition=f"{previous}->{state}",
        ).increment()

    def __repr__(self) -> str:
        return (f"<ArrayProbe {self.array.serial!r} "
                f"interval={self.interval:g} "
                f"samples={self.samples_taken}>")


def start_probes(sim: "Simulator", arrays,
                 interval: Optional[float] = None) -> list:
    """Start one :class:`ArrayProbe` per array; returns the probes."""
    period = interval if interval is not None else DEFAULT_INTERVAL
    return [ArrayProbe(sim, array, interval=period).start()
            for array in arrays]
