"""Deterministic SLO / alert rule engine.

The paper's headline claim — backup with *no impact on business
processing* — and its recovery objectives (RPO bounded by journal lag)
are statements about time series.  This module watches them
continuously, the way a production DR stack would, as a simulation
process: a :class:`SloEngine` wakes on a fixed interval, evaluates its
:class:`AlertRule` set against live system state, and drives one
firing→resolved state machine per rule with pending delay
(``for_seconds``) and clear hysteresis (``clear_seconds``).

Three rule shapes cover the catalog:

* :class:`LatencyPercentileRule` — a percentile of a latency summary
  over a sliding window against a bound (host-write p99 = the
  no-impact claim);
* :class:`BurnRateRule` — Google-SRE-style multi-window burn rate over
  a sampled value against an objective (journal-lag-seconds = the RPO
  SLO).  All windows must burn above threshold to breach, so the long
  window suppresses blips while the short window clears fast;
* :class:`ConditionRule` — a boolean probe (group suspended,
  transactions parked in doubt).

Everything is deterministic: rules sample live ``value_fn`` callables
at engine wake-ups of the simulated clock (never wall time), so the
same seed produces the same transitions, byte for byte.  Transitions
land in ``repro_alerts_total{rule,state}`` counters, the
``repro_alert_firing{rule}`` gauge, and the flight recorder.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Callable, Deque, Generator, List,
                    Optional, Sequence, Tuple)

from repro.telemetry.metrics import LatencyRecorder, percentile

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.kernel import Simulator
    from repro.storage.adc import JournalGroup
    from repro.storage.array import StorageArray
    from repro.telemetry.recorder import FlightRecorder

#: default evaluation period (seconds); 10x the chaos transfer interval
DEFAULT_INTERVAL = 0.01


@dataclass(frozen=True)
class AlertTransition:
    """One firing or resolved edge of a rule's state machine."""

    time: float
    rule: str
    state: str  # "firing" | "resolved"
    detail: str = ""

    def __str__(self) -> str:
        tail = f": {self.detail}" if self.detail else ""
        return f"[{self.time:9.4f}] {self.rule} {self.state}{tail}"

    def as_dict(self) -> dict:
        return {"time": self.time, "rule": self.rule,
                "state": self.state, "detail": self.detail}


class AlertRule:
    """Base class: a named breach predicate plus state-machine timing.

    ``for_seconds`` is how long the breach must persist before the
    alert fires (pending state); ``clear_seconds`` is how long the rule
    must evaluate healthy before a firing alert resolves (hysteresis —
    a flapping series cannot resolve-and-refire every tick).
    """

    def __init__(self, name: str, description: str = "",
                 severity: str = "page", for_seconds: float = 0.0,
                 clear_seconds: float = 0.0) -> None:
        if for_seconds < 0 or clear_seconds < 0:
            raise ValueError(
                f"rule {name!r}: for/clear durations must be >= 0")
        self.name = name
        self.description = description
        self.severity = severity
        self.for_seconds = for_seconds
        self.clear_seconds = clear_seconds

    def observe(self, now: float) -> Tuple[bool, str]:
        """Sample the watched signal at ``now``.

        Returns ``(breached, detail)``; ``detail`` is a deterministic
        human-readable account of the current value.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class LatencyPercentileRule(AlertRule):
    """A latency-summary percentile over a sliding window vs a bound.

    ``source`` is a :class:`~repro.telemetry.metrics.LatencyRecorder`
    (e.g. the array's host-write summary).  Its samples carry no
    timestamps, so the rule keeps a cursor into the recorder and stamps
    each new sample with the evaluation time — a deterministic
    approximation good to one engine interval.
    """

    def __init__(self, name: str, source: LatencyRecorder, bound: float,
                 fraction: float = 0.99, window: float = 0.25,
                 **kwargs: object) -> None:
        super().__init__(name, **kwargs)  # type: ignore[arg-type]
        if bound <= 0 or window <= 0:
            raise ValueError(
                f"rule {name!r}: bound and window must be > 0")
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(
                f"rule {name!r}: fraction must be in [0, 1]: {fraction}")
        self.source = source
        self.bound = bound
        self.fraction = fraction
        self.window = window
        self._cursor = 0
        self._window_samples: Deque[Tuple[float, float]] = deque()

    def observe(self, now: float) -> Tuple[bool, str]:
        raw = self.source._samples  # cursor access; .samples copies
        while self._cursor < len(raw):
            self._window_samples.append((now, raw[self._cursor]))
            self._cursor += 1
        horizon = now - self.window
        samples = self._window_samples
        while samples and samples[0][0] < horizon:
            samples.popleft()
        if not samples:
            return False, "no samples in window"
        value = percentile([latency for _t, latency in samples],
                           self.fraction)
        breached = value > self.bound
        detail = (f"p{self.fraction * 100:g}={value * 1e3:.3f}ms "
                  f"bound={self.bound * 1e3:g}ms n={len(samples)}")
        return breached, detail


class BurnRateRule(AlertRule):
    """Multi-window burn rate of a sampled value against an objective.

    At each evaluation the rule samples ``value_fn()`` into an internal
    series (sampling live state directly, so the signal cannot go stale
    while the subsystem that normally publishes it is suspended).  For
    each ``(window_seconds, threshold)`` the burn rate is the fraction
    of window samples exceeding ``objective`` divided by
    ``budget_fraction``; the rule breaches only when *every* window
    burns at or above its threshold.
    """

    def __init__(self, name: str, value_fn: Callable[[], float],
                 objective: float,
                 windows: Sequence[Tuple[float, float]] = ((0.06, 1.0),
                                                          (0.24, 1.0)),
                 budget_fraction: float = 0.1,
                 **kwargs: object) -> None:
        super().__init__(name, **kwargs)  # type: ignore[arg-type]
        if objective < 0:
            raise ValueError(f"rule {name!r}: objective must be >= 0")
        if not windows:
            raise ValueError(f"rule {name!r}: need at least one window")
        if not 0.0 < budget_fraction <= 1.0:
            raise ValueError(
                f"rule {name!r}: budget_fraction must be in (0, 1]")
        self.value_fn = value_fn
        self.objective = objective
        self.windows = tuple(windows)
        self.budget_fraction = budget_fraction
        self._horizon = max(window for window, _threshold in self.windows)
        self._samples: Deque[Tuple[float, float]] = deque()

    def observe(self, now: float) -> Tuple[bool, str]:
        value = float(self.value_fn())
        samples = self._samples
        samples.append((now, value))
        cutoff = now - self._horizon
        while samples and samples[0][0] < cutoff:
            samples.popleft()
        breached = True
        parts = [f"value={value:.4g} objective={self.objective:g}"]
        for window, threshold in self.windows:
            start = now - window
            in_window = [v for t, v in samples if t >= start]
            bad = sum(1 for v in in_window if v > self.objective)
            burn = ((bad / len(in_window)) / self.budget_fraction
                    if in_window else 0.0)
            if burn < threshold:
                breached = False
            parts.append(f"burn[{window:g}s]={burn:.2f}/{threshold:g}")
        return breached, " ".join(parts)


class ConditionRule(AlertRule):
    """A boolean probe: breached exactly while ``probe()`` is truthy."""

    def __init__(self, name: str, probe: Callable[[], object],
                 detail_fn: Optional[Callable[[], str]] = None,
                 **kwargs: object) -> None:
        super().__init__(name, **kwargs)  # type: ignore[arg-type]
        self.probe = probe
        self.detail_fn = detail_fn

    def observe(self, now: float) -> Tuple[bool, str]:
        active = bool(self.probe())
        if active and self.detail_fn is not None:
            return True, str(self.detail_fn())
        return active, "active" if active else "clear"


#: state-machine states ("resolved" is a transition, not a state)
_OK, _PENDING, _FIRING = "ok", "pending", "firing"


class _RuleStatus:
    """Engine-internal per-rule state machine."""

    __slots__ = ("rule", "state", "breach_since", "healthy_since",
                 "fired_count", "resolved_count", "last_detail")

    def __init__(self, rule: AlertRule) -> None:
        self.rule = rule
        self.state = _OK
        self.breach_since: Optional[float] = None
        self.healthy_since: Optional[float] = None
        self.fired_count = 0
        self.resolved_count = 0
        self.last_detail = ""


class SloEngine:
    """Evaluates a rule set periodically; collects alert transitions."""

    def __init__(self, sim: "Simulator", rules: Sequence[AlertRule],
                 interval: float = DEFAULT_INTERVAL,
                 recorder: Optional["FlightRecorder"] = None) -> None:
        if interval <= 0:
            raise ValueError(f"engine interval must be > 0: {interval}")
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names: {sorted(names)}")
        self.sim = sim
        self.interval = interval
        self.registry = sim.telemetry.registry
        self.recorder = (recorder if recorder is not None
                         else sim.telemetry.recorder)
        self.transitions: List[AlertTransition] = []
        self.evaluations = 0
        self._statuses = [_RuleStatus(rule) for rule in rules]
        self._running = False
        self._process = None

    @property
    def rules(self) -> List[AlertRule]:
        return [status.rule for status in self._statuses]

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "SloEngine":
        """Spawn the evaluation process (idempotent); returns self."""
        self._running = True
        if self._process is None or not self._process.alive:
            self._process = self.sim.spawn(self._run(), name="slo-engine")
        return self

    def stop(self) -> None:
        """Stop the evaluation process at its next wake-up."""
        self._running = False

    def _run(self) -> Generator[object, object, None]:
        while self._running:
            yield self.sim.timeout(self.interval)
            if not self._running:
                return
            self.evaluate_once()

    # -- evaluation ----------------------------------------------------------

    def evaluate_once(self) -> None:
        """Evaluate every rule once at the current simulated time.

        Public so tests (and drained scenarios) can step the state
        machines at exact instants without the periodic process.
        """
        now = self.sim.now
        self.evaluations += 1
        for status in self._statuses:
            breached, detail = status.rule.observe(now)
            status.last_detail = detail
            if breached:
                self._advance_breached(status, now, detail)
            else:
                self._advance_healthy(status, now, detail)

    def _advance_breached(self, status: _RuleStatus, now: float,
                          detail: str) -> None:
        status.healthy_since = None
        if status.state == _FIRING:
            return
        if status.breach_since is None:
            status.breach_since = now
            status.state = _PENDING
        if now - status.breach_since >= status.rule.for_seconds:
            status.state = _FIRING
            status.fired_count += 1
            self._transition(status, now, "firing", detail)

    def _advance_healthy(self, status: _RuleStatus, now: float,
                         detail: str) -> None:
        status.breach_since = None
        if status.state == _PENDING:
            status.state = _OK
            return
        if status.state != _FIRING:
            return
        if status.healthy_since is None:
            status.healthy_since = now
        if now - status.healthy_since >= status.rule.clear_seconds:
            status.state = _OK
            status.healthy_since = None
            status.resolved_count += 1
            self._transition(status, now, "resolved", detail)

    def _transition(self, status: _RuleStatus, now: float, state: str,
                    detail: str) -> None:
        rule = status.rule
        transition = AlertTransition(time=now, rule=rule.name,
                                     state=state, detail=detail)
        self.transitions.append(transition)
        self.registry.counter(
            "repro_alerts_total",
            help="Alert state-machine transitions by rule and state",
            rule=rule.name, state=state).increment()
        self.registry.gauge(
            "repro_alert_firing",
            help="1 while the rule's alert is firing, else 0",
            rule=rule.name,
        ).sample(now, 1.0 if state == "firing" else 0.0)
        if self.recorder is not None:
            self.recorder.record("alert", rule.name, state=state,
                                 severity=rule.severity, detail=detail)

    # -- queries / rendering -------------------------------------------------

    def state_of(self, rule_name: str) -> str:
        """Current state ("ok" / "pending" / "firing") of one rule."""
        for status in self._statuses:
            if status.rule.name == rule_name:
                return status.state
        raise KeyError(f"unknown rule: {rule_name!r}")

    def firing_rules(self) -> List[str]:
        """Names of the rules currently firing, sorted."""
        return sorted(status.rule.name for status in self._statuses
                      if status.state == _FIRING)

    def render(self) -> str:
        """Human-readable rule table plus the transition log."""
        lines = [f"SLO rules (evaluated every {self.interval:g}s, "
                 f"{self.evaluations} evaluations):"]
        width = max((len(s.rule.name) for s in self._statuses), default=4)
        lines.append(f"  {'rule':{width}} {'state':8} {'fired':>5} "
                     f"{'resolved':>8}  description")
        for status in self._statuses:
            lines.append(
                f"  {status.rule.name:{width}} {status.state:8} "
                f"{status.fired_count:5d} {status.resolved_count:8d}  "
                f"{status.rule.description}")
        if self.transitions:
            lines.append("  transitions:")
            lines.extend(f"    {transition}"
                         for transition in self.transitions)
        else:
            lines.append("  transitions: none")
        return "\n".join(lines)


def standard_rules(array: "StorageArray", group: "JournalGroup",
                   coordinator: Optional[object] = None, *,
                   write_p99_bound: float = 0.005,
                   write_window: float = 0.25,
                   rpo_objective: float = 0.05,
                   rpo_windows: Sequence[Tuple[float, float]] = (
                       (0.06, 1.0), (0.24, 1.0)),
                   suspension_for: float = 0.0,
                   in_doubt_grace: float = 0.05) -> List[AlertRule]:
    """The stock rule set for one protected two-site deployment.

    * ``host-write-p99`` — the paper's no-impact claim: host-write p99
      stays within ``write_p99_bound`` regardless of replication state;
    * ``rpo-journal-lag`` — the RPO SLO: the age of the oldest
      unshipped main-journal entry burns through its error budget;
      sampled live from the journal (not from the transfer-loop gauge,
      which goes quiet during exactly the outages that matter);
    * ``replication-suspended`` — the group sits in PSUS/PSUE;
    * ``in-doubt-transactions`` — 2PC outcomes parked in doubt for
      longer than a grace period (only with a ``coordinator``).
    """
    sim = group.sim

    def journal_lag_age() -> float:
        oldest = group.main_journal.oldest_entry()
        return sim.now - oldest.created_at if oldest is not None else 0.0

    rules: List[AlertRule] = [
        LatencyPercentileRule(
            "host-write-p99", array.write_latency,
            bound=write_p99_bound, window=write_window,
            clear_seconds=0.05, severity="page",
            description=(f"host-write p99 <= {write_p99_bound * 1e3:g}ms "
                         "(the no-impact claim)")),
        BurnRateRule(
            "rpo-journal-lag", journal_lag_age, objective=rpo_objective,
            windows=rpo_windows, budget_fraction=0.1,
            clear_seconds=0.05, severity="page",
            description=(f"oldest unshipped entry <= "
                         f"{rpo_objective * 1e3:g}ms (RPO budget)")),
        ConditionRule(
            "replication-suspended", lambda: group.suspended,
            detail_fn=lambda: group.suspend_reason or "suspended",
            for_seconds=suspension_for, clear_seconds=0.0,
            severity="ticket",
            description="journal group suspended (PSUS/PSUE)"),
    ]
    if coordinator is not None:
        rules.append(ConditionRule(
            "in-doubt-transactions",
            lambda: bool(coordinator.in_doubt),
            detail_fn=lambda: (
                f"{len(coordinator.in_doubt)} transactions in doubt"),
            for_seconds=in_doubt_grace, clear_seconds=0.0,
            severity="ticket",
            description=("2PC outcomes parked in doubt past "
                         f"{in_doubt_grace * 1e3:g}ms")))
    return rules
