"""Causal span tracing for the replication write path.

A :class:`Span` is one timed operation; spans form trees via
``parent_id`` and forests via ``trace_id``.  The canonical trace in
this system follows one host write end-to-end:

    host-write (main array, root)
      └─ journal-append           (entry enters the main journal)
      …entry rides a transfer-batch span (own root, batch-scoped)…
      └─ restore-apply            (backup array applies the entry)

``restore-apply`` is parented to the *originating* ``host-write`` span
— the trace context travels with the
:class:`~repro.storage.journal.JournalEntry` — so recovery-point lag
(RPO), per-stage latency and consistency-group apply order can all be
derived from spans alone.  Entries created by initial copy or resync
are parented to ``initial-copy``/``resync`` spans instead, keeping the
"every restore-apply has a causal parent" invariant total.

The tracer integrates with the kernel
:class:`~repro.simulation.trace.TraceLog` (when the simulator was
built with ``trace=True``) by logging a ``span`` action on every
finish; it never replaces the flat action log.

Span IDs come from a deterministic counter, not randomness or wall
clocks, so traces are reproducible run-to-run like everything else in
the simulation.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple


@dataclass
class Span:
    """One timed, attributed operation in a causal trace."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    start: float
    end: Optional[float] = None
    attrs: Dict[str, object] = field(default_factory=dict)
    status: str = "ok"

    @property
    def duration(self) -> float:
        """Span duration in (simulated) seconds; raises if unfinished."""
        if self.end is None:
            raise ValueError(f"span {self.name!r} [{self.span_id}] "
                             f"has not finished")
        return self.end - self.start

    @property
    def finished(self) -> bool:
        return self.end is not None

    def set(self, **attrs: object) -> "Span":
        """Attach attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def as_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:
        end = f"{self.end:g}" if self.end is not None else "…"
        return (f"<Span {self.name} [{self.span_id}] "
                f"trace={self.trace_id} {self.start:g}→{end}>")


class _NullSpan(Span):
    """The shared no-op span handed out while tracing is disabled.

    Carries ``None`` ids so trace context propagated from it (e.g. into
    a journal entry) stays empty, and swallows attribute updates so the
    singleton never accumulates state.
    """

    def set(self, **attrs: object) -> "Span":
        return self


#: singleton returned by :meth:`Tracer.start` when ``enabled`` is False;
#: :meth:`Tracer.finish` treats it as a no-op, so call sites need no
#: ``if tracing`` guards (though hot loops may add them to skip building
#: the attribute kwargs at all)
NULL_SPAN = _NullSpan(name="tracing-disabled", trace_id=None,  # type: ignore[arg-type]
                      span_id=None, parent_id=None, start=0.0)  # type: ignore[arg-type]


class Tracer:
    """Creates, stores, and queries spans for one simulation.

    Storage is ring-capped (default 250k finished spans) so unbounded
    workloads cannot exhaust memory; the drop count stays visible in
    :attr:`dropped`.  IDs are sequential (``t0001``/``s000001``) —
    deterministic across runs for a given event order.
    """

    def __init__(self, clock: Callable[[], float],
                 max_spans: int = 250_000,
                 on_finish: Optional[Callable[[Span], None]] = None,
                 ) -> None:
        self._clock = clock
        self.max_spans = max_spans
        self.on_finish = on_finish
        #: master switch: when False, :meth:`start` returns the shared
        #: :data:`NULL_SPAN` and :meth:`finish` no-ops — zero span
        #: objects are allocated on the hot path
        self.enabled = True
        self.spans: List[Span] = []
        self._by_id: Dict[str, Span] = {}
        self.dropped = 0
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)

    # -- span lifecycle ------------------------------------------------------

    def start(self, name: str, parent: Optional[Span] = None,
              trace_id: Optional[str] = None,
              parent_id: Optional[str] = None,
              **attrs: object) -> Span:
        """Open a span.

        Causality can be given either as a live ``parent`` span or as
        raw ``trace_id``/``parent_id`` strings (the form that travels
        inside a :class:`~repro.storage.journal.JournalEntry` across
        the site-to-site hop).  With neither, the span roots a new
        trace.
        """
        if not self.enabled:
            return NULL_SPAN
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        elif trace_id is None:
            trace_id = f"t{next(self._trace_ids):04d}"
            parent_id = None
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=f"s{next(self._span_ids):06d}",
            parent_id=parent_id,
            start=self._clock(),
            attrs=dict(attrs),
        )
        self._store(span)
        return span

    def finish(self, span: Span, status: str = "ok",
               **attrs: object) -> Span:
        """Close a span at the current clock; returns it."""
        if span is NULL_SPAN:
            return span
        if span.end is not None:
            raise ValueError(f"span {span.name!r} [{span.span_id}] "
                             f"finished twice")
        span.end = self._clock()
        span.status = status
        span.attrs.update(attrs)
        if self.on_finish is not None:
            self.on_finish(span)
        return span

    def event(self, name: str, parent: Optional[Span] = None,
              trace_id: Optional[str] = None,
              parent_id: Optional[str] = None,
              **attrs: object) -> Span:
        """A zero-duration span (instantaneous event)."""
        span = self.start(name, parent=parent, trace_id=trace_id,
                          parent_id=parent_id, **attrs)
        return self.finish(span)

    def _store(self, span: Span) -> None:
        if len(self.spans) >= self.max_spans:
            evicted = self.spans.pop(0)
            self._by_id.pop(evicted.span_id, None)
            self.dropped += 1
        self.spans.append(span)
        self._by_id[span.span_id] = span

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def by_id(self, span_id: str) -> Optional[Span]:
        """The stored span with this id, or None (may have been evicted)."""
        return self._by_id.get(span_id)

    def named(self, name: str) -> List[Span]:
        """All stored spans with this name, in creation order."""
        return [span for span in self.spans if span.name == name]

    def trace(self, trace_id: str) -> List[Span]:
        """All stored spans of one trace, in creation order."""
        return [span for span in self.spans if span.trace_id == trace_id]

    def children(self, span: Span) -> List[Span]:
        """Direct children of ``span`` among stored spans."""
        return [s for s in self.spans if s.parent_id == span.span_id]

    def roots(self) -> Iterator[Span]:
        """Spans with no parent, in creation order."""
        return (span for span in self.spans if span.parent_id is None)

    def as_dicts(self) -> List[dict]:
        """All stored spans as JSON-serialisable dicts."""
        return [span.as_dict() for span in self.spans]

    def render_json(self) -> str:
        """All stored spans as a JSON array."""
        return json.dumps(self.as_dicts(), indent=2)


@dataclass(frozen=True)
class StageStats:
    """Aggregate duration stats for one span name."""

    name: str
    count: int
    mean: float
    maximum: float


def stage_breakdown(tracer: Tracer) -> List[StageStats]:
    """Per-span-name duration statistics over finished spans.

    Batch spans carrying a ``writes`` attribute (``host-write-batch``,
    batched ``journal-append``) weigh in as that many units: ``count``
    then lines up with ``repro_host_writes_total`` rather than with the
    number of batches, and ``mean`` is the write-weighted mean (the
    latency an average *write* experienced).  ``maximum`` stays the
    longest single span either way.
    """
    grouped: Dict[str, List[Tuple[float, int]]] = {}
    for span in tracer.spans:
        if span.finished:
            writes = span.attrs.get("writes")
            weight = writes if isinstance(writes, int) and writes > 0 \
                else 1
            grouped.setdefault(span.name, []).append(
                (span.duration, weight))
    out = []
    for name in sorted(grouped):
        entries = grouped[name]
        count = sum(weight for _duration, weight in entries)
        weighted = sum(duration * weight
                       for duration, weight in entries)
        out.append(StageStats(
            name=name, count=count, mean=weighted / count,
            maximum=max(duration for duration, _weight in entries)))
    return out


def chrome_trace(tracer: Tracer) -> dict:
    """Finished spans in Chrome/Perfetto trace-event format.

    Load the result (JSON-serialised) in ``chrome://tracing`` or
    https://ui.perfetto.dev.  Each trace renders as one "thread" (tid =
    trace id) of complete ``ph: "X"`` events; timestamps convert from
    simulated seconds to microseconds, the format's native unit.
    """
    events = []
    for span in tracer.spans:
        if not span.finished:
            continue
        args = {str(key): value for key, value in sorted(span.attrs.items())}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append({
            "name": span.name,
            "cat": span.status,
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": span.duration * 1e6,
            "pid": 1,
            "tid": span.trace_id,
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


@dataclass(frozen=True)
class LagReport:
    """Replication lag derived purely from spans (§IV RPO analysis).

    ``worst_lag`` is the maximum over applied writes of
    (restore-apply end − host-write end): how far behind the backup
    image trailed the acked state.  ``unapplied`` counts host writes
    whose data never reached the backup volume (still in a journal, or
    the pair had no restore target) — after a clean drain it is 0 and
    ``worst_lag`` alone bounds the RPO.
    """

    applied: int
    unapplied: int
    worst_lag: float
    mean_lag: float


def replication_lag_report(tracer: Tracer) -> LagReport:
    """Derive replication lag by joining restore-apply to host-write.

    Batched ingest (``host-write-batch`` spans) joins the same way —
    one unit per batch, lagged to the *latest* restore apply of its
    trace, since a batch acks all of its writes at one instant.
    """
    applied_traces: Dict[str, float] = {}
    for span in tracer.named("restore-apply"):
        if span.finished:
            prev = applied_traces.get(span.trace_id)
            if prev is None or span.end > prev:
                applied_traces[span.trace_id] = span.end
    lags: List[float] = []
    unapplied = 0
    for host_write in (tracer.named("host-write")
                       + tracer.named("host-write-batch")):
        if not host_write.finished:
            continue
        applied_at = applied_traces.get(host_write.trace_id)
        if applied_at is None:
            unapplied += 1
        else:
            lags.append(max(0.0, applied_at - host_write.end))
    if not lags:
        return LagReport(applied=0, unapplied=unapplied,
                         worst_lag=0.0, mean_lag=0.0)
    return LagReport(applied=len(lags), unapplied=unapplied,
                     worst_lag=max(lags),
                     mean_lag=sum(lags) / len(lags))
