"""Automated incident postmortems.

:func:`build_incident` joins one simulation's three observability
streams into a single causal account of an incident:

* the **flight recorder** (ordered structured events: fault injected,
  alert fired, suspension, resync, failover steps, ...) supplies the
  timeline;
* the **tracer** supplies per-stage latency statistics over the same
  window (how long resyncs/journal-drains/failovers actually took);
* the **metrics registry** supplies a snapshot of the counters that
  summarise the incident (alerts, suspensions, resyncs, corruptions
  caught, entries shipped).

The result is an :class:`IncidentReport` rendering to markdown (for
humans) and JSON (``sort_keys`` + stable float formatting, so the same
seed yields byte-identical output — postmortems diff cleanly across
code changes, like every other artifact in this repository).

This module deliberately never imports :mod:`repro.chaos`; the chaos
engine imports *it* to auto-emit postmortems on invariant violations.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Dict, List, Optional, Sequence,
                    Tuple)

from repro.telemetry.slo import AlertTransition
from repro.telemetry.spans import stage_breakdown

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.kernel import Simulator

#: counter families worth quoting in a postmortem (prefix match)
DEFAULT_METRIC_PREFIXES: Tuple[str, ...] = (
    "repro_alerts_total",
    "repro_chaos_faults_total",
    "repro_failovers_total",
    "repro_flight_",
    "repro_integrity_corruptions_detected_total",
    "repro_journal_restored_entries_total",
    "repro_journal_suspensions_total",
    "repro_journal_transferred_entries_total",
    "repro_repair_resyncs_total",
)

#: span names whose stage statistics belong in a postmortem
DEFAULT_STAGE_NAMES: Tuple[str, ...] = (
    "failover", "host-write", "host-write-batch", "initial-copy",
    "journal-drain", "resync", "restore-apply", "transfer-batch",
)


@dataclass
class IncidentReport:
    """One incident, fully joined and render-ready."""

    title: str
    seed: Optional[int]
    started_at: float
    finished_at: float
    #: ordered (time, seq) event dicts from the flight recorder
    timeline: List[dict] = field(default_factory=list)
    #: alert transitions (dict form of :class:`AlertTransition`)
    alerts: List[dict] = field(default_factory=list)
    #: per-stage span statistics over the incident window
    stages: List[dict] = field(default_factory=list)
    #: ``name{label="value",...}`` -> counter value
    metrics: Dict[str, int] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "title": self.title,
            "seed": self.seed,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "timeline": self.timeline,
            "alerts": self.alerts,
            "stages": self.stages,
            "metrics": self.metrics,
            "notes": self.notes,
        }

    def to_json(self) -> str:
        """Deterministic JSON rendering (same seed ⇒ same bytes)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def to_markdown(self) -> str:
        """Human-readable postmortem."""
        lines = [
            f"# Incident postmortem: {self.title}",
            "",
            f"- seed: {self.seed if self.seed is not None else 'n/a'}",
            f"- window: t={self.started_at:.4f}s "
            f"→ t={self.finished_at:.4f}s "
            f"({self.finished_at - self.started_at:.4f}s)",
            f"- timeline events: {len(self.timeline)}",
            f"- alert transitions: {len(self.alerts)}",
        ]
        for note in self.notes:
            lines.append(f"- {note}")
        lines += ["", "## Timeline", ""]
        if self.timeline:
            for event in self.timeline:
                detail = " ".join(
                    f"{key}={event['attrs'][key]}"
                    for key in sorted(event["attrs"]))
                tail = f" — {detail}" if detail else ""
                lines.append(f"- `[{event['time']:9.4f}]` "
                             f"**{event['category']}** "
                             f"{event['name']}{tail}")
        else:
            lines.append("- (no events recorded)")
        lines += ["", "## Alerts", ""]
        if self.alerts:
            for alert in self.alerts:
                tail = (f" — {alert['detail']}" if alert["detail"]
                        else "")
                lines.append(f"- `[{alert['time']:9.4f}]` "
                             f"**{alert['rule']}** {alert['state']}"
                             f"{tail}")
        else:
            lines.append("- (no alert transitions)")
        lines += ["", "## Stage latencies (spans)", ""]
        if self.stages:
            lines.append("| stage | count | mean (ms) | max (ms) |")
            lines.append("|---|---:|---:|---:|")
            for stage in self.stages:
                lines.append(
                    f"| {stage['name']} | {stage['count']} "
                    f"| {stage['mean'] * 1e3:.3f} "
                    f"| {stage['max'] * 1e3:.3f} |")
        else:
            lines.append("- (no finished spans)")
        lines += ["", "## Metrics at close", ""]
        if self.metrics:
            for name in sorted(self.metrics):
                lines.append(f"- `{name}` = {self.metrics[name]}")
        else:
            lines.append("- (no matching counters)")
        return "\n".join(lines) + "\n"


def _metric_snapshot(registry, prefixes: Sequence[str],
                     ) -> Dict[str, int]:
    """Counter values as ``name{labels}`` keys, filtered by prefix."""
    out: Dict[str, int] = {}
    for name in registry.names():
        if not any(name.startswith(prefix) for prefix in prefixes):
            continue
        family = registry.family(name)
        if family.kind != "counter":
            continue
        for labels, counter in family:
            rendered = ",".join(f'{key}="{value}"'
                                for key, value in labels)
            key = f"{name}{{{rendered}}}" if rendered else name
            out[key] = counter.value
    return out


def build_incident(sim: "Simulator", *, title: str = "incident",
                   seed: Optional[int] = None,
                   alerts: Sequence[AlertTransition] = (),
                   window: Optional[Tuple[float, float]] = None,
                   stage_names: Sequence[str] = DEFAULT_STAGE_NAMES,
                   metric_prefixes: Sequence[str] =
                   DEFAULT_METRIC_PREFIXES,
                   notes: Sequence[str] = ()) -> IncidentReport:
    """Join recorder events, spans, and metrics into one postmortem.

    ``window`` bounds the report (defaults to the full recorded range);
    ``alerts`` usually comes from a :class:`SloEngine`'s transitions,
    but any alert transitions recorded by the flight recorder are in
    the timeline regardless.
    """
    recorder = sim.telemetry.recorder
    events = sorted(recorder.events, key=lambda e: (e.time, e.seq))
    if window is not None:
        start, end = window
    else:
        start = events[0].time if events else 0.0
        end = sim.now
    timeline = [event.as_dict() for event in events
                if start <= event.time <= end]
    stats = {stage.name: stage
             for stage in stage_breakdown(sim.telemetry.tracer)}
    stages = [{"name": name, "count": stats[name].count,
               "mean": stats[name].mean, "max": stats[name].maximum}
              for name in stage_names if name in stats]
    report = IncidentReport(
        title=title, seed=seed, started_at=start, finished_at=end,
        timeline=timeline,
        alerts=[transition.as_dict() for transition in alerts],
        stages=stages,
        metrics=_metric_snapshot(sim.telemetry.registry,
                                 metric_prefixes),
        notes=list(notes))
    if recorder.dropped:
        report.notes.append(
            f"flight recorder dropped {recorder.dropped} oldest events "
            f"(ring capacity {recorder.capacity})")
    return report
