"""Hierarchical, label-aware metrics registry.

One :class:`MetricsRegistry` lives on every
:class:`~repro.simulation.kernel.Simulator` (as
``sim.telemetry.registry``) and is the single place components register
instruments.  A *family* is a metric name plus a kind (counter, gauge,
histogram, summary) and a fixed label-key set; *children* are the
concrete instruments, one per distinct label-value combination:

    writes = registry.counter("repro_host_writes_total", array="G370")
    writes.increment()

Re-requesting the same name+labels returns the same child, so call
sites never need to coordinate who creates an instrument.  Requesting a
name with a conflicting kind or label-key set raises — catching wiring
bugs at registration time instead of producing silently-split series.

Snapshots render as JSON (:meth:`MetricsRegistry.snapshot`) or
Prometheus-style exposition text (:meth:`MetricsRegistry.render`).
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional, Tuple

from repro.telemetry.metrics import (Counter, Gauge, Histogram,
                                     LatencyRecorder)

#: label values rendered as ``name{key="value",...}``
LabelSet = Tuple[Tuple[str, str], ...]


def _label_set(labels: Dict[str, str]) -> LabelSet:
    """Canonical (sorted, stringified) form of a label mapping."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricFamily:
    """All children of one metric name, sharing kind and label keys."""

    def __init__(self, name: str, kind: str, label_keys: Tuple[str, ...],
                 help: str = "", unit: str = "") -> None:
        self.name = name
        self.kind = kind
        self.label_keys = label_keys
        self.help = help
        self.unit = unit
        self.children: Dict[LabelSet, object] = {}

    def child(self, labels: Dict[str, str],
              factory: Callable[[], object]) -> object:
        """Existing child for ``labels``, or a new one from ``factory``."""
        keys = tuple(sorted(str(k) for k in labels))
        if keys != self.label_keys:
            raise ValueError(
                f"metric {self.name!r} registered with label keys "
                f"{list(self.label_keys)}, requested with {list(keys)}")
        key = _label_set(labels)
        instrument = self.children.get(key)
        if instrument is None:
            instrument = factory()
            instrument.labels = dict(key)
            self.children[key] = instrument
        return instrument

    def __iter__(self):
        return iter(sorted(self.children.items()))

    def __len__(self) -> int:
        return len(self.children)


class MetricsRegistry:
    """Registry of metric families keyed by name."""

    def __init__(self) -> None:
        self.families: Dict[str, MetricFamily] = {}

    # -- registration --------------------------------------------------------

    def _family(self, name: str, kind: str, labels: Dict[str, str],
                help: str, unit: str) -> MetricFamily:
        family = self.families.get(name)
        if family is None:
            family = MetricFamily(
                name, kind, tuple(sorted(str(k) for k in labels)),
                help=help, unit=unit)
            self.families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, "
                f"requested as {kind}")
        else:
            if help and not family.help:
                family.help = help
            if unit and not family.unit:
                family.unit = unit
        return family

    def counter(self, name: str, help: str = "", unit: str = "",
                **labels: str) -> Counter:
        """The counter child of ``name`` for ``labels`` (created lazily)."""
        family = self._family(name, "counter", labels, help, unit)
        return family.child(labels, lambda: Counter(name))

    def gauge(self, name: str, help: str = "", unit: str = "",
              strict_time: bool = True, **labels: str) -> Gauge:
        """The gauge child of ``name`` for ``labels`` (created lazily)."""
        family = self._family(name, "gauge", labels, help, unit)
        return family.child(
            labels, lambda: Gauge(name, strict_time=strict_time))

    def histogram(self, name: str, help: str = "", unit: str = "",
                  growth: float = 1.04, min_value: float = 1e-6,
                  **labels: str) -> Histogram:
        """The histogram child of ``name`` for ``labels``."""
        family = self._family(name, "histogram", labels, help, unit)
        return family.child(
            labels,
            lambda: Histogram(name, growth=growth, min_value=min_value))

    def summary(self, name: str, help: str = "", unit: str = "",
                **labels: str) -> LatencyRecorder:
        """The exact-sample summary child of ``name`` for ``labels``.

        Summaries keep every sample, so benchmark facts computed from
        them are numerically identical to the pre-registry code paths;
        use :meth:`histogram` when bounded memory matters more.
        """
        family = self._family(name, "summary", labels, help, unit)
        return family.child(labels, lambda: LatencyRecorder(name))

    # -- lookup --------------------------------------------------------------

    def get(self, name: str,
            **labels: str) -> Optional[object]:
        """The existing child for name+labels, or None (never creates)."""
        family = self.families.get(name)
        if family is None:
            return None
        return family.children.get(_label_set(labels))

    def family(self, name: str) -> Optional[MetricFamily]:
        """The family registered under ``name``, or None."""
        return self.families.get(name)

    def names(self) -> List[str]:
        """All registered metric names, sorted."""
        return sorted(self.families)

    # -- export --------------------------------------------------------------

    def snapshot(self) -> Dict[str, dict]:
        """JSON-serialisable snapshot of every family and child."""
        out: Dict[str, dict] = {}
        for name in self.names():
            family = self.families[name]
            series = []
            for labels, instrument in family:
                series.append({"labels": dict(labels),
                               **_instrument_state(instrument)})
            out[name] = {
                "kind": family.kind,
                "help": family.help,
                "unit": family.unit,
                "series": series,
            }
        return out

    def render(self, format: str = "prom") -> str:
        """Registry contents as text: ``prom`` exposition or ``json``."""
        if format == "json":
            return json.dumps(self.snapshot(), indent=2, sort_keys=True)
        if format != "prom":
            raise ValueError(f"unknown render format: {format!r}")
        lines: List[str] = []
        for name in self.names():
            family = self.families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {_PROM_TYPE[family.kind]}")
            for labels, instrument in family:
                lines.extend(_prom_lines(name, dict(labels), instrument))
        return "\n".join(lines) + ("\n" if lines else "")


_PROM_TYPE = {
    "counter": "counter",
    "gauge": "gauge",
    "histogram": "summary",   # rendered as quantile series
    "summary": "summary",
}


def _format_labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [f'{key}="{value}"' for key, value in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _instrument_state(instrument: object) -> dict:
    """JSON-friendly state of one instrument, by kind."""
    if isinstance(instrument, Counter):
        return {"value": instrument.value}
    if isinstance(instrument, Gauge):
        if not instrument.points:
            return {"value": None, "samples": 0, "out_of_order": 0}
        return {
            "value": instrument.value,
            "samples": len(instrument),
            "mean": instrument.mean(),
            "max": instrument.maximum(),
            "last_time": instrument.last_time(),
            "out_of_order": instrument.out_of_order,
        }
    if isinstance(instrument, Histogram):
        if not instrument.count:
            return {"count": 0}
        return {
            "count": instrument.count,
            "sum": instrument.total,
            "mean": instrument.mean,
            "min": instrument.minimum,
            "max": instrument.maximum,
            "p50": instrument.quantile(0.50),
            "p95": instrument.quantile(0.95),
            "p99": instrument.quantile(0.99),
        }
    if isinstance(instrument, LatencyRecorder):
        if not len(instrument):
            return {"count": 0}
        summary = instrument.summary()
        return {
            "count": summary.count,
            "mean": summary.mean,
            "p50": summary.p50,
            "p95": summary.p95,
            "p99": summary.p99,
            "max": summary.maximum,
        }
    raise TypeError(f"unknown instrument type: {type(instrument)!r}")


def _prom_lines(name: str, labels: Dict[str, str],
                instrument: object) -> List[str]:
    """Prometheus exposition lines for one instrument."""
    if isinstance(instrument, Counter):
        return [f"{name}{_format_labels(labels)} {instrument.value}"]
    if isinstance(instrument, Gauge):
        lines = []
        if instrument.points:
            lines.append(
                f"{name}{_format_labels(labels)} {instrument.value:g}")
        if instrument.out_of_order:
            # dropped samples stay visible in the exposition text, not
            # only in the JSON state (strict_time=False gauges)
            lines.append(f"{name}_out_of_order_total"
                         f"{_format_labels(labels)} "
                         f"{instrument.out_of_order}")
        return lines
    if isinstance(instrument, (Histogram, LatencyRecorder)):
        if not len(instrument):
            return [f"{name}_count{_format_labels(labels)} 0"]
        summary = instrument.summary()
        lines = []
        for q, value in (("0.5", summary.p50), ("0.95", summary.p95),
                         ("0.99", summary.p99)):
            extra = f'quantile="{q}"'
            lines.append(
                f"{name}{_format_labels(labels, extra)} {value:g}")
        lines.append(
            f"{name}_count{_format_labels(labels)} {summary.count}")
        if isinstance(instrument, Histogram):
            lines.append(
                f"{name}_sum{_format_labels(labels)} "
                f"{instrument.total:g}")
        return lines
    raise TypeError(f"unknown instrument type: {type(instrument)!r}")
