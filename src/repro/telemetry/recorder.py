"""Black-box flight recorder: a bounded ring of structured events.

Metrics answer "how much" and spans answer "how long", but neither
answers the postmortem question "what happened, in what order?".  The
:class:`FlightRecorder` fills that gap: components append small
structured :class:`FlightEvent` records (pair-state transitions,
suspensions, fault injections, alert transitions, failover steps,
resync/quarantine actions) at simulated timestamps, and the recorder
keeps the most recent ``capacity`` of them in a ring — exactly like an
aircraft's black box, the tail of history survives any crash.

When something goes wrong — a chaos invariant fires, a failover runs —
the current ring is *snapshotted*: frozen in memory (and optionally
dumped to disk as JSON) so later events cannot rotate the evidence out
of the buffer.  :mod:`repro.telemetry.incident` joins these events with
spans and metric snapshots into a rendered postmortem.

Every :class:`~repro.telemetry.Telemetry` owns one recorder
(``sim.telemetry.recorder``), so events are per-simulation and as
deterministic as the simulation itself: same seed, same events, byte
for byte.
"""

from __future__ import annotations

import json
import re
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import (TYPE_CHECKING, Callable, Deque, Dict, List, Optional,
                    Tuple)

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.registry import MetricsRegistry

#: default ring size; a quick chaos campaign produces a few hundred
#: events, so the default keeps several campaigns of history
DEFAULT_CAPACITY = 4096

_SLUG = re.compile(r"[^a-z0-9._-]+")


def _slug(text: str) -> str:
    """Filesystem-safe form of a snapshot reason."""
    return _SLUG.sub("-", text.lower()).strip("-") or "snapshot"


@dataclass(frozen=True)
class FlightEvent:
    """One structured black-box event at a simulated instant.

    ``seq`` is a per-recorder monotonic counter: events at the same
    simulated time still have a total order, and the postmortem
    generator sorts by ``(time, seq)``.
    """

    seq: int
    time: float
    #: coarse event class: "fault", "alert", "suspension", "resync",
    #: "quarantine", "pair", "array", "failover", "invariant", ...
    category: str
    #: the specific subject (rule name, group id, fault kind, ...)
    name: str
    attrs: Dict[str, object] = field(default_factory=dict)

    def detail(self) -> str:
        """Deterministic one-line rendering of the attributes."""
        return " ".join(f"{key}={self.attrs[key]}"
                        for key in sorted(self.attrs))

    def as_dict(self) -> dict:
        return {
            "seq": self.seq,
            "time": self.time,
            "category": self.category,
            "name": self.name,
            "attrs": dict(self.attrs),
        }

    def __str__(self) -> str:
        tail = f" {self.detail()}" if self.attrs else ""
        return f"[{self.time:9.4f}] {self.category:10} {self.name}{tail}"


class FlightRecorder:
    """Bounded ring buffer of :class:`FlightEvent` records.

    Recording is O(1) and allocation-light; the ring evicts oldest
    first and counts evictions in :attr:`dropped` so truncation stays
    visible.  ``enabled = False`` turns :meth:`record` into a no-op for
    perf-sensitive runs (the hot write path never records, so the
    default stays on everywhere).
    """

    def __init__(self, clock: Callable[[], float],
                 capacity: int = DEFAULT_CAPACITY,
                 registry: Optional["MetricsRegistry"] = None) -> None:
        if capacity < 1:
            raise ValueError(f"recorder capacity must be >= 1: {capacity}")
        self._clock = clock
        self.capacity = capacity
        self.registry = registry
        self.enabled = True
        self.events: Deque[FlightEvent] = deque(maxlen=capacity)
        self.dropped = 0
        #: frozen (reason, events) copies taken by :meth:`snapshot`
        self.snapshots: List[dict] = []
        #: when set, every snapshot is also dumped to this directory
        self.dump_dir: Optional[Path] = None
        self._seq = 0
        self._category_counters: Dict[str, object] = {}

    # -- recording -----------------------------------------------------------

    def record(self, category: str, name: str,
               **attrs: object) -> Optional[FlightEvent]:
        """Append one event at the current simulated time.

        Returns the event (or None while disabled).  Attribute values
        should be plain JSON-friendly scalars so snapshots serialise.
        """
        if not self.enabled:
            return None
        if len(self.events) == self.capacity:
            self.dropped += 1
        self._seq += 1
        event = FlightEvent(seq=self._seq, time=self._clock(),
                            category=category, name=name, attrs=attrs)
        self.events.append(event)
        if self.registry is not None:
            counter = self._category_counters.get(category)
            if counter is None:
                counter = self.registry.counter(
                    "repro_flight_events_total",
                    help="Events captured by the flight recorder",
                    category=category)
                self._category_counters[category] = counter
            counter.increment()
        return event

    # -- snapshots -----------------------------------------------------------

    def snapshot(self, reason: str) -> dict:
        """Freeze the current ring under ``reason``.

        The frozen copy is appended to :attr:`snapshots`; when
        :attr:`dump_dir` is set it is also written to
        ``flight-<n>-<reason>.json`` there.  Returns the snapshot dict.
        """
        frozen = {
            "reason": reason,
            "time": self._clock(),
            "dropped": self.dropped,
            "events": [event.as_dict() for event in self.events],
        }
        self.snapshots.append(frozen)
        if self.registry is not None:
            self.registry.counter(
                "repro_flight_snapshots_total",
                help="Flight-recorder snapshots taken",
            ).increment()
        if self.dump_dir is not None:
            self.dump_dir.mkdir(parents=True, exist_ok=True)
            path = self.dump_dir / (
                f"flight-{len(self.snapshots):03d}-{_slug(reason)}.json")
            path.write_text(
                json.dumps(frozen, indent=2, sort_keys=True) + "\n")
        return frozen

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def of_category(self, category: str) -> List[FlightEvent]:
        """All buffered events of one category, in order."""
        return [event for event in self.events
                if event.category == category]

    def named(self, category: str, name: str) -> List[FlightEvent]:
        """All buffered events matching category and name, in order."""
        return [event for event in self.events
                if event.category == category and event.name == name]

    def timeline(self) -> List[Tuple[float, int, FlightEvent]]:
        """Events as sortable ``(time, seq, event)`` triples."""
        return [(event.time, event.seq, event) for event in self.events]

    def __repr__(self) -> str:
        return (f"<FlightRecorder events={len(self.events)} "
                f"dropped={self.dropped} "
                f"snapshots={len(self.snapshots)}>")
