"""Measurement primitives of the telemetry subsystem.

These are the concrete instruments the
:class:`~repro.telemetry.registry.MetricsRegistry` hands out:

* :class:`Counter` — a named monotonic event counter;
* :class:`Gauge` — a time-stamped series of a fluctuating quantity with
  a monotonic-time guard (a mis-wired probe cannot corrupt a lag series
  by sampling backwards in time);
* :class:`Histogram` — a streaming percentile sketch with bounded
  memory and a configurable relative error, mergeable across instances;
* :class:`LatencyRecorder` — an exact-sample summary (kept for the
  benchmark paths whose shape assertions need exact percentiles).

The module is deliberately standalone: it imports nothing from the rest
of the library, so every layer (simulation kernel included) can depend
on it without cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def percentile_sorted(ordered: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile of an *already sorted* sequence.

    The sorted-input variant exists so a summary computing several
    percentiles sorts once, not once per percentile.
    """
    if not ordered:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1]: {fraction}")
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    value = ordered[low] * (1 - weight) + ordered[high] * weight
    # clamp: float interpolation may drift a ulp outside the bracket
    return min(max(value, ordered[low]), ordered[high])


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile of ``samples``.

    ``fraction`` is in [0, 1]; raises ``ValueError`` on empty input so a
    missing measurement can never masquerade as a zero latency.
    """
    if not samples:
        raise ValueError("percentile of empty sample set")
    return percentile_sorted(sorted(samples), fraction)


@dataclass(frozen=True)
class LatencySummary:
    """Immutable summary of a latency distribution (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    def as_millis(self) -> "LatencySummary":
        """The same summary expressed in milliseconds."""
        return LatencySummary(
            count=self.count,
            mean=self.mean * 1e3,
            p50=self.p50 * 1e3,
            p95=self.p95 * 1e3,
            p99=self.p99 * 1e3,
            maximum=self.maximum * 1e3,
        )


class LatencyRecorder:
    """Accumulates exact latency samples for one operation class."""

    kind = "summary"

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.labels: Dict[str, str] = {}
        self._samples: List[float] = []
        self._mirror = None

    def pipe_to(self, sink) -> "LatencyRecorder":
        """Fan every future sample out to ``sink`` (anything with an
        ``observe`` method, e.g. a :class:`Histogram` sketch) as well.

        This lets a hot path record each sample exactly once while both
        the exact summary (legacy API) and the streaming percentile
        sketch stay populated.  Returns self for chaining.
        """
        self._mirror = sink
        return self

    def record(self, latency: float) -> None:
        """Add one sample (seconds); negative samples are a bug."""
        if latency < 0:
            raise ValueError(f"negative latency sample: {latency}")
        self._samples.append(latency)
        if self._mirror is not None:
            self._mirror.observe(latency)

    #: registry-uniform alias for :meth:`record`
    observe = record

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> Tuple[float, ...]:
        """Immutable view of the collected samples."""
        return tuple(self._samples)

    def merge(self, other: "LatencyRecorder") -> "LatencyRecorder":
        """Absorb ``other``'s samples into this recorder; returns self."""
        self._samples.extend(other._samples)
        return self

    @classmethod
    def merged(cls, name: str,
               recorders: Iterable["LatencyRecorder"],
               ) -> "LatencyRecorder":
        """A new recorder combining several (e.g. one per volume)."""
        combined = cls(name)
        for recorder in recorders:
            combined.merge(recorder)
        return combined

    def summary(self) -> LatencySummary:
        """Summary statistics; raises ``ValueError`` when empty.

        Sorts the samples exactly once and derives every percentile
        from the sorted sequence.
        """
        if not self._samples:
            raise ValueError(f"no samples recorded for {self.name!r}")
        ordered = sorted(self._samples)
        return LatencySummary(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            p50=percentile_sorted(ordered, 0.50),
            p95=percentile_sorted(ordered, 0.95),
            p99=percentile_sorted(ordered, 0.99),
            maximum=ordered[-1],
        )

    def reset(self) -> None:
        """Discard all samples (e.g. after a warm-up phase)."""
        self._samples.clear()


class Counter:
    """A named monotonic event counter."""

    kind = "counter"

    def __init__(self, name: str = "", value: int = 0) -> None:
        self.name = name
        self.value = value
        self.labels: Dict[str, str] = {}

    def increment(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0: {amount}")
        self.value += amount

    #: short alias matching common client-library naming
    inc = increment

    def reset(self) -> None:
        """Zero the counter."""
        self.value = 0

    def __repr__(self) -> str:
        return f"<Counter {self.name!r} value={self.value}>"


class Gauge:
    """Time-stamped samples of a fluctuating quantity.

    Sample time must be non-decreasing: the series is meant to be fed
    from a monotone (simulated) clock, and an out-of-order timestamp is
    evidence of a mis-wired probe, not a legitimate measurement.  With
    ``strict_time=True`` (default) such samples raise ``ValueError``;
    with ``strict_time=False`` they are dropped and counted in
    :attr:`out_of_order` so the fault stays visible without poisoning
    the series.
    """

    kind = "gauge"

    def __init__(self, name: str = "",
                 points: Optional[List[Tuple[float, float]]] = None,
                 strict_time: bool = True) -> None:
        self.name = name
        self.points: List[Tuple[float, float]] = points or []
        self.strict_time = strict_time
        self.out_of_order = 0
        self.labels: Dict[str, str] = {}

    def sample(self, time: float, value: float) -> None:
        """Record ``value`` observed at simulated ``time``.

        ``time`` must be >= the previous sample's time (equal is fine —
        two probes may legitimately fire at one simulated instant).
        """
        if self.points and time < self.points[-1][0]:
            if self.strict_time:
                raise ValueError(
                    f"gauge {self.name!r}: non-monotonic sample time "
                    f"{time:g} after {self.points[-1][0]:g}")
            self.out_of_order += 1
            return
        self.points.append((time, value))

    #: registry-uniform alias for :meth:`sample`
    set = sample

    def __len__(self) -> int:
        return len(self.points)

    @property
    def value(self) -> float:
        """Most recent sampled value; raises when empty."""
        if not self.points:
            raise ValueError(f"no samples in gauge {self.name!r}")
        return self.points[-1][1]

    def last_time(self) -> float:
        """Timestamp of the most recent sample; raises when empty."""
        if not self.points:
            raise ValueError(f"no samples in gauge {self.name!r}")
        return self.points[-1][0]

    def values(self) -> List[float]:
        """Just the observed values, in time order."""
        return [value for _time, value in self.points]

    def maximum(self) -> float:
        """Largest observed value; raises when empty."""
        if not self.points:
            raise ValueError(f"no samples in gauge {self.name!r}")
        return max(self.values())

    def mean(self) -> float:
        """Average observed value; raises when empty."""
        if not self.points:
            raise ValueError(f"no samples in gauge {self.name!r}")
        values = self.values()
        return sum(values) / len(values)

    def __repr__(self) -> str:
        tail = f" last={self.points[-1]}" if self.points else " empty"
        return f"<Gauge {self.name!r} n={len(self.points)}{tail}>"


class Histogram:
    """Streaming percentile sketch with bounded memory.

    Values are binned into geometrically growing buckets (ratio
    ``growth`` between consecutive bucket bounds), so any quantile is
    recovered with relative error ~``growth - 1`` regardless of how
    many samples stream through.  Sketches with identical parameters
    merge exactly (bucket-wise addition), which is how per-volume
    distributions combine into an array-wide one.
    """

    kind = "histogram"

    def __init__(self, name: str = "", growth: float = 1.04,
                 min_value: float = 1e-6) -> None:
        if growth <= 1.0:
            raise ValueError(f"growth must be > 1: {growth}")
        if min_value <= 0:
            raise ValueError(f"min_value must be > 0: {min_value}")
        self.name = name
        self.growth = growth
        self.min_value = min_value
        self.labels: Dict[str, str] = {}
        self._log_growth = math.log(growth)
        self._counts: Dict[int, int] = {}
        #: samples at or below ``min_value`` (incl. exact zeros)
        self._underflow = 0
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        """Add one sample; negative samples are a bug."""
        if value < 0:
            raise ValueError(f"negative histogram sample: {value}")
        self.count += 1
        self.total += value
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        if value <= self.min_value:
            self._underflow += 1
            return
        index = math.ceil(math.log(value / self.min_value)
                          / self._log_growth)
        self._counts[index] = self._counts.get(index, 0) + 1

    #: registry-uniform alias for :meth:`observe`
    record = observe

    def __len__(self) -> int:
        return self.count

    @property
    def mean(self) -> float:
        """Mean of all observed samples; raises when empty."""
        if not self.count:
            raise ValueError(f"no samples in histogram {self.name!r}")
        return self.total / self.count

    @property
    def minimum(self) -> float:
        """Smallest observed sample (exact); raises when empty."""
        if not self.count:
            raise ValueError(f"no samples in histogram {self.name!r}")
        return self._min

    @property
    def maximum(self) -> float:
        """Largest observed sample (exact); raises when empty."""
        if not self.count:
            raise ValueError(f"no samples in histogram {self.name!r}")
        return self._max

    def quantile(self, fraction: float) -> float:
        """Estimated ``fraction``-quantile (relative error ~growth-1)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1]: {fraction}")
        if not self.count:
            raise ValueError(f"no samples in histogram {self.name!r}")
        rank = fraction * (self.count - 1)
        cumulative = self._underflow
        if rank < cumulative:
            return max(self._min, 0.0)
        for index in sorted(self._counts):
            cumulative += self._counts[index]
            if rank < cumulative:
                upper = self.min_value * self.growth ** index
                lower = upper / self.growth
                estimate = math.sqrt(lower * upper)
                return min(max(estimate, self._min), self._max)
        return self._max

    def summary(self) -> LatencySummary:
        """Sketch-derived summary; raises ``ValueError`` when empty."""
        if not self.count:
            raise ValueError(f"no samples in histogram {self.name!r}")
        return LatencySummary(
            count=self.count,
            mean=self.mean,
            p50=self.quantile(0.50),
            p95=self.quantile(0.95),
            p99=self.quantile(0.99),
            maximum=self._max,
        )

    def merge(self, other: "Histogram") -> "Histogram":
        """Absorb another sketch with identical parameters; returns self."""
        if (other.growth, other.min_value) != (self.growth, self.min_value):
            raise ValueError(
                f"cannot merge histogram {other.name!r} "
                f"(growth={other.growth}, min={other.min_value}) into "
                f"{self.name!r} (growth={self.growth}, "
                f"min={self.min_value})")
        for index, count in other._counts.items():
            self._counts[index] = self._counts.get(index, 0) + count
        self._underflow += other._underflow
        self.count += other.count
        self.total += other.total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        return self

    def reset(self) -> None:
        """Discard all samples."""
        self._counts.clear()
        self._underflow = 0
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf

    def __repr__(self) -> str:
        return (f"<Histogram {self.name!r} count={self.count} "
                f"buckets={len(self._counts)}>")
