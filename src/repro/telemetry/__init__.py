"""Unified observability: metrics registry, causal spans, probes.

Every :class:`~repro.simulation.kernel.Simulator` owns one
:class:`Telemetry` instance (``sim.telemetry``) bundling:

* ``registry`` — the :class:`~repro.telemetry.registry.MetricsRegistry`
  all components register counters/gauges/histograms/summaries against;
* ``tracer`` — the :class:`~repro.telemetry.spans.Tracer` recording
  causal spans along the replication write path;
* ``recorder`` — the :class:`~repro.telemetry.recorder.FlightRecorder`
  black box capturing ordered structured events (suspensions, faults,
  alert transitions, failover steps) for incident postmortems.

Because all three live on the simulator, two simulations never share
state,
and telemetry is as deterministic as everything else: same seed, same
metrics, same spans.

See ``docs/observability.md`` for the metric catalog and span taxonomy.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.telemetry.incident import IncidentReport, build_incident
from repro.telemetry.metrics import (Counter, Gauge, Histogram,
                                     LatencyRecorder, LatencySummary,
                                     percentile, percentile_sorted)
from repro.telemetry.probes import ArrayProbe, start_probes
from repro.telemetry.recorder import FlightEvent, FlightRecorder
from repro.telemetry.registry import MetricFamily, MetricsRegistry
from repro.telemetry.slo import (AlertRule, AlertTransition, BurnRateRule,
                                 ConditionRule, LatencyPercentileRule,
                                 SloEngine, standard_rules)
from repro.telemetry.spans import (LagReport, Span, StageStats, Tracer,
                                   chrome_trace, replication_lag_report,
                                   stage_breakdown)

__all__ = [
    "AlertRule",
    "AlertTransition",
    "ArrayProbe",
    "BurnRateRule",
    "ConditionRule",
    "Counter",
    "FlightEvent",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "IncidentReport",
    "LagReport",
    "LatencyPercentileRule",
    "LatencyRecorder",
    "LatencySummary",
    "MetricFamily",
    "MetricsRegistry",
    "SloEngine",
    "Span",
    "StageStats",
    "Telemetry",
    "Tracer",
    "build_incident",
    "chrome_trace",
    "percentile",
    "percentile_sorted",
    "replication_lag_report",
    "stage_breakdown",
    "standard_rules",
    "start_probes",
]


class Telemetry:
    """The per-simulator observability context."""

    def __init__(self, clock: Callable[[], float],
                 trace_log: Optional[object] = None,
                 max_spans: int = 250_000) -> None:
        self.registry = MetricsRegistry()
        on_finish = None
        if trace_log is not None:
            # mirror finished spans into the kernel's flat action log so
            # existing TraceLog tooling sees them alongside scheduling
            def on_finish(span: Span) -> None:
                trace_log.record(
                    "span", name=span.name, trace=span.trace_id,
                    span=span.span_id, parent=span.parent_id,
                    start=span.start, status=span.status)
        self.tracer = Tracer(clock, max_spans=max_spans,
                             on_finish=on_finish)
        self.recorder = FlightRecorder(clock, registry=self.registry)
