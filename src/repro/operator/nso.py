"""The Namespace Operator (NSO) — the paper's contribution (§III-B1).

"When users put a tag to the target namespace, the NSO extracts all the
volumes in the namespace and creates custom resources for configuring
the ADC and consistent group."

The reconciler:

1. watches namespaces for the backup tag (``tags.TAG_KEY``);
2. on a recognised tag, lists the namespace's PVCs, waits for them all
   to be bound, and plans the replication
   (:func:`repro.operator.planner.plan_backup`);
3. creates (or updates, when claims come and go) **one**
   :class:`~repro.csi.crds.ConsistencyGroupReplication` custom resource
   realising the plan — the replication plugin does the array work;
4. mirrors progress back onto the namespace as annotations, which is
   what the demo console shows the user;
5. on tag removal, deletes the owned CR (the plugin tears the pairs
   down through its finalizer).

The operator performs **zero storage-array operations** itself: its
entire output is custom resources and annotations, exactly the paper's
point about removing the need for storage expertise.
"""

from __future__ import annotations

from typing import ClassVar, Generator, List, Optional, Type

from repro.csi.crds import (ConsistencyGroupReplication, STATE_PAIRED)
from repro.operator.planner import BackupPlan, plan_backup, plan_differs
from repro.operator.tags import (ANNOTATION_MESSAGE, ANNOTATION_STATE,
                                 ANNOTATION_VOLUMES, TAG_KEY, BackupMode,
                                 is_suspend_tag, parse_tag)
from repro.platform.apiserver import ApiServer, WatchEvent
from repro.platform.controller import Reconciler, ReconcileResult, Requeue
from repro.platform.objects import ObjectKey
from repro.platform.resources import Namespace, PersistentVolumeClaim

#: operator-owned label put on the CRs it creates
OWNED_BY_LABEL = "backup.hitachi.com/owned-by"
OWNER_NAME = "namespace-operator"

#: namespace annotation states the operator reports
NS_STATE_CONFIGURING = "Configuring"
NS_STATE_WAITING = "WaitingForVolumes"
NS_STATE_PROTECTED = "Protected"
NS_STATE_DEGRADED = "Degraded"
NS_STATE_NO_VOLUMES = "NoVolumes"
NS_STATE_SUSPENDED = "CopySuspended"


class NamespaceOperatorReconciler(Reconciler):
    """Reconciles namespace tags into replication custom resources."""

    kind: ClassVar[Type[Namespace]] = Namespace
    extra_kinds = (PersistentVolumeClaim, ConsistencyGroupReplication)

    def reconcile(self, api: ApiServer, key: ObjectKey,
                  ) -> Generator[object, object, ReconcileResult]:
        namespace = api.try_get(Namespace, key.name)
        if namespace is None:
            return None
        # a terminating namespace is unprotected: tear the CR down so
        # the garbage collector can finish
        tag_value = namespace.meta.labels.get(TAG_KEY)
        if namespace.meta.deleting:
            mode, suspend = None, False
        else:
            mode = parse_tag(tag_value)
            suspend = is_suspend_tag(tag_value)
        cr_name = f"nso-{key.name}"
        existing = api.try_get(ConsistencyGroupReplication, cr_name,
                               key.name)
        if suspend:
            return self._reconcile_suspend(api, namespace, existing)
        if mode is None:
            return self._reconcile_untagged(api, namespace, existing)
        return self._reconcile_tagged(api, namespace, mode, existing)
        yield  # pragma: no cover - generator marker

    # -- tag removed -----------------------------------------------------

    def _reconcile_untagged(self, api: ApiServer, namespace: Namespace,
                            existing: Optional[ConsistencyGroupReplication],
                            ) -> ReconcileResult:
        if existing is not None and not existing.meta.deleting:
            if existing.meta.labels.get(OWNED_BY_LABEL) == OWNER_NAME:
                api.delete(ConsistencyGroupReplication,
                           existing.meta.name, existing.meta.namespace)
                return Requeue(after=0.050)
        if existing is not None:
            return Requeue(after=0.050)  # teardown in progress
        self._annotate(api, namespace, None, None, None)
        return None

    # -- maintenance suspension --------------------------------------------

    def _reconcile_suspend(self, api: ApiServer, namespace: Namespace,
                           existing: Optional[ConsistencyGroupReplication],
                           ) -> ReconcileResult:
        """``SuspendCopyToCloud``: keep the configuration, split the
        pairs.  Requires existing protection — suspending nothing is
        reported, not invented."""
        if existing is None or existing.meta.deleting:
            self._annotate(api, namespace, NS_STATE_SUSPENDED,
                           "suspend requested but the namespace is not "
                           "protected; tag it for copy first", None)
            return Requeue(after=0.250)
        if not existing.spec.suspended:
            existing.spec.suspended = True
            api.update(existing)
            return Requeue(after=0.050)
        if existing.status.state == "Suspended":
            state = NS_STATE_SUSPENDED
            message = "replication split for maintenance"
        else:
            state = NS_STATE_CONFIGURING
            message = "suspending replication"
        self._annotate(api, namespace, state, message,
                       ",".join(existing.spec.pvc_names))
        return Requeue(after=0.250)

    # -- tag present ------------------------------------------------------

    def _reconcile_tagged(self, api: ApiServer, namespace: Namespace,
                          mode: BackupMode,
                          existing: Optional[ConsistencyGroupReplication],
                          ) -> ReconcileResult:
        claims = api.list(PersistentVolumeClaim,
                          namespace=namespace.meta.name)
        plan = plan_backup(namespace.meta.name, mode, claims)
        if plan.empty:
            self._annotate(api, namespace, NS_STATE_NO_VOLUMES,
                           "namespace has no persistent volume claims", "")
            return Requeue(after=0.250)
        if not plan.complete:
            self._annotate(
                api, namespace, NS_STATE_WAITING,
                "waiting for claims to bind: "
                + ", ".join(plan.unbound_pvc_names), "")
            return Requeue(after=0.050)
        if existing is None or existing.meta.deleting:
            if existing is None:
                self._create_cr(api, plan)
            self._annotate(api, namespace, NS_STATE_CONFIGURING,
                           "creating replication configuration",
                           ",".join(plan.pvc_names))
            return Requeue(after=0.050)
        if plan_differs(plan, existing.spec.pvc_names,
                        existing.spec.consistency_group):
            existing.spec.pvc_names = list(plan.pvc_names)
            existing.spec.consistency_group = \
                mode.uses_consistency_group
            api.update(existing)
            return Requeue(after=0.050)
        if existing.spec.suspended:
            # the tag moved back from SuspendCopyToCloud: resume copying
            existing.spec.suspended = False
            api.update(existing)
            return Requeue(after=0.050)
        # mirror CR status onto the namespace
        if existing.status.state == STATE_PAIRED:
            state, requeue = NS_STATE_PROTECTED, 0.500
        elif existing.status.state == "Suspended":
            state, requeue = NS_STATE_DEGRADED, 0.250
        else:
            state, requeue = NS_STATE_CONFIGURING, 0.050
        self._annotate(api, namespace, state,
                       existing.status.message,
                       ",".join(plan.pvc_names))
        return Requeue(after=requeue)

    # -- helpers -------------------------------------------------------------

    def _create_cr(self, api: ApiServer, plan: BackupPlan) -> None:
        cr = ConsistencyGroupReplication()
        cr.meta.name = plan.cr_name()
        cr.meta.namespace = plan.namespace
        cr.meta.labels = {OWNED_BY_LABEL: OWNER_NAME}
        cr.spec.pvc_names = list(plan.pvc_names)
        cr.spec.consistency_group = plan.mode.uses_consistency_group
        api.create(cr)

    def _annotate(self, api: ApiServer, namespace: Namespace,
                  state: Optional[str], message: Optional[str],
                  volumes: Optional[str]) -> None:
        """Write operator annotations; no-op when nothing changed.

        State transitions are also recorded as platform events so the
        console can narrate the automation's progress.
        """
        from repro.platform.events import record_event
        previous_state = namespace.meta.annotations.get(ANNOTATION_STATE)
        desired = dict(namespace.meta.annotations)
        for annotation_key, value in ((ANNOTATION_STATE, state),
                                      (ANNOTATION_MESSAGE, message),
                                      (ANNOTATION_VOLUMES, volumes)):
            if value:
                desired[annotation_key] = value
            else:
                desired.pop(annotation_key, None)
        if desired == namespace.meta.annotations:
            return
        namespace.meta.annotations = desired
        api.update(namespace)
        if state and state != previous_state and \
                not namespace.meta.deleting:
            record_event(api, namespace.meta.name, namespace.key,
                         reason=state, message=message or "",
                         source=OWNER_NAME)
            api.sim.telemetry.registry.counter(
                "repro_nso_transitions_total",
                help="Namespace protection-state transitions",
                namespace=namespace.meta.name, state=state,
            ).increment()

    def map_event(self, api: ApiServer,
                  event: WatchEvent) -> List[ObjectKey]:
        """PVC and CR changes requeue their namespace."""
        return [ObjectKey(Namespace.KIND, "", event.object.meta.namespace)]


def install_namespace_operator(cluster) -> None:
    """Install the NSO on a (main-site) cluster."""
    cluster.install(NamespaceOperatorReconciler(),
                    name=f"{cluster.name}.namespace-operator")
