"""Namespace tag vocabulary of the namespace operator (§III-B1).

The paper's user starts a backup by tagging the target namespace with the
value ``ConsistentCopyToCloud`` (Fig 3).  This module defines the tag key,
the recognised values, and the parsing into a :class:`BackupMode`.

Two values are recognised:

* ``ConsistentCopyToCloud`` — the paper's configuration: every volume of
  the namespace replicates inside **one consistency group**;
* ``AsyncCopyToCloud`` — the collapse-prone baseline used by the
  experiments: asynchronous copy with **independent** per-volume
  journals.  The paper's Section I explains why this configuration can
  collapse backup data; keeping it expressible makes the comparison a
  one-label change.
"""

from __future__ import annotations

import enum
from typing import Optional

#: the label key the operator watches on namespaces
TAG_KEY = "backup.hitachi.com/consistency-copy"

#: Fig 3's tag value: ADC inside one consistency group
TAG_CONSISTENT = "ConsistentCopyToCloud"

#: experiment baseline: ADC with independent per-volume journals
TAG_INDEPENDENT = "AsyncCopyToCloud"

#: maintenance window: keep the configuration but split the pairs; the
#: operator resynchronises when the tag returns to a copy value
TAG_SUSPEND = "SuspendCopyToCloud"

#: annotation keys the operator maintains on tagged namespaces
ANNOTATION_STATE = "backup.hitachi.com/state"
ANNOTATION_MESSAGE = "backup.hitachi.com/message"
ANNOTATION_VOLUMES = "backup.hitachi.com/protected-volumes"


class BackupMode(enum.Enum):
    """How a tagged namespace's volumes are replicated."""

    #: one shared journal: the backup cut is a global prefix
    CONSISTENT_GROUP = "consistent-group"
    #: private journals: per-volume prefixes only (collapse-prone)
    INDEPENDENT = "independent"

    @property
    def uses_consistency_group(self) -> bool:
        """True for the paper's configuration."""
        return self is BackupMode.CONSISTENT_GROUP


def parse_tag(value: Optional[str]) -> Optional[BackupMode]:
    """Map a tag value to a backup mode; None for absent/unknown values.

    Unknown values are deliberately ignored rather than rejected: the
    operator must not react to labels owned by other tools.
    ``TAG_SUSPEND`` is not a mode — use :func:`is_suspend_tag`.
    """
    if value == TAG_CONSISTENT:
        return BackupMode.CONSISTENT_GROUP
    if value == TAG_INDEPENDENT:
        return BackupMode.INDEPENDENT
    return None


def is_suspend_tag(value: Optional[str]) -> bool:
    """True when the tag requests a maintenance-window suspension."""
    return value == TAG_SUSPEND
