"""Backup planning: from a tagged namespace to a replication plan.

The planner is pure logic (no API access, no simulation), so the exact
behaviour the operator automates — *which* volumes get protected and
*how* — is unit-testable in isolation.  The reconciler feeds it the
namespace's claims and applies the resulting plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.operator.tags import BackupMode
from repro.platform.resources import PersistentVolumeClaim


@dataclass(frozen=True)
class BackupPlan:
    """The desired replication configuration for one namespace."""

    namespace: str
    mode: BackupMode
    #: PVC names to protect, sorted for determinism
    pvc_names: tuple
    #: PVCs present but not yet bound (plan is incomplete until empty)
    unbound_pvc_names: tuple = ()

    @property
    def complete(self) -> bool:
        """True when every claim in the namespace is plannable."""
        return not self.unbound_pvc_names

    @property
    def empty(self) -> bool:
        """True when the namespace has no claims at all."""
        return not self.pvc_names and not self.unbound_pvc_names

    def cr_name(self) -> str:
        """Deterministic name of the CR realising this plan."""
        return f"nso-{self.namespace}"


def plan_backup(namespace: str, mode: BackupMode,
                claims: Sequence[PersistentVolumeClaim]) -> BackupPlan:
    """Compute the replication plan for a namespace's claims.

    Claims being deleted are excluded (their storage is going away);
    unbound claims are listed separately so the operator can wait for
    provisioning to finish before configuring the ADC — configuring a
    partial volume set would silently leave new data unprotected.
    """
    bound: List[str] = []
    unbound: List[str] = []
    for claim in claims:
        if claim.meta.deleting:
            continue
        if claim.bound:
            bound.append(claim.meta.name)
        else:
            unbound.append(claim.meta.name)
    return BackupPlan(
        namespace=namespace, mode=mode,
        pvc_names=tuple(sorted(bound)),
        unbound_pvc_names=tuple(sorted(unbound)))


def plan_differs(plan: BackupPlan, current_pvc_names: Sequence[str],
                 current_consistency_group: bool) -> bool:
    """Whether an existing CR diverges from the plan (spec drift)."""
    if tuple(sorted(current_pvc_names)) != plan.pvc_names:
        return True
    return current_consistency_group != plan.mode.uses_consistency_group
