"""The namespace operator (NSO) — the paper's contribution.

* :func:`install_namespace_operator` — install the NSO on a cluster;
* :class:`NamespaceOperatorReconciler` — the reconciler itself;
* :mod:`repro.operator.tags` — the tag vocabulary
  (``ConsistentCopyToCloud`` et al.);
* :mod:`repro.operator.planner` — pure planning logic.
"""

from repro.operator.nso import (NS_STATE_CONFIGURING, NS_STATE_DEGRADED,
                                NS_STATE_NO_VOLUMES, NS_STATE_PROTECTED,
                                NS_STATE_SUSPENDED, NS_STATE_WAITING,
                                OWNED_BY_LABEL,
                                NamespaceOperatorReconciler,
                                install_namespace_operator)
from repro.operator.planner import BackupPlan, plan_backup, plan_differs
from repro.operator.tags import (ANNOTATION_MESSAGE, ANNOTATION_STATE,
                                 ANNOTATION_VOLUMES, TAG_CONSISTENT,
                                 TAG_INDEPENDENT, TAG_KEY, TAG_SUSPEND,
                                 BackupMode, is_suspend_tag, parse_tag)

__all__ = [
    "ANNOTATION_MESSAGE",
    "ANNOTATION_STATE",
    "ANNOTATION_VOLUMES",
    "BackupMode",
    "BackupPlan",
    "NS_STATE_CONFIGURING",
    "NS_STATE_DEGRADED",
    "NS_STATE_NO_VOLUMES",
    "NS_STATE_PROTECTED",
    "NS_STATE_SUSPENDED",
    "NS_STATE_WAITING",
    "NamespaceOperatorReconciler",
    "OWNED_BY_LABEL",
    "TAG_CONSISTENT",
    "TAG_INDEPENDENT",
    "TAG_KEY",
    "TAG_SUSPEND",
    "install_namespace_operator",
    "is_suspend_tag",
    "parse_tag",
    "plan_backup",
    "plan_differs",
]
