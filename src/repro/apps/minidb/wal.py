"""Write-ahead log of MiniDB.

One WAL record occupies one block of the log volume; the LSN is the
block index, so the storage layer's per-volume write ordering directly
gives the classic WAL prefix property: a crash image of the log volume is
always a record-aligned prefix.

Record types (redo-only ARIES-lite plus the 2PC records):

* ``update`` — one key change of one transaction (redo information);
* ``commit`` / ``abort`` — local transaction outcome;
* ``prepare`` — participant vote in two-phase commit, carrying the
  global transaction id;
* ``coord-commit`` / ``coord-abort`` — the coordinator's durable global
  decision (written into the coordinator database's WAL);
* ``checkpoint`` — all dirty pages flushed up to this LSN; recovery can
  start redo here.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Generator, List, Optional

from repro.errors import DatabaseError, RecoveryError
from repro.apps.minidb.device import BlockDevice

UPDATE = "update"
COMMIT = "commit"
ABORT = "abort"
PREPARE = "prepare"
COORD_COMMIT = "coord-commit"
COORD_ABORT = "coord-abort"
CHECKPOINT = "checkpoint"

_VALID_TYPES = {UPDATE, COMMIT, ABORT, PREPARE, COORD_COMMIT, COORD_ABORT,
                CHECKPOINT}


@dataclass(frozen=True)
class WalRecord:
    """One write-ahead log record (one block on the log volume)."""

    type: str
    txn_id: str = ""
    #: global transaction id (2PC records)
    gtid: str = ""
    key: str = ""
    #: None encodes a delete
    value: Optional[str] = None
    #: redo start hint (checkpoint records)
    checkpoint_lsn: int = -1
    #: assigned when the record is written
    lsn: int = -1

    def __post_init__(self) -> None:
        if self.type not in _VALID_TYPES:
            raise DatabaseError(f"unknown WAL record type {self.type!r}")

    def to_bytes(self) -> bytes:
        """Serialise for one log block."""
        return json.dumps({
            "type": self.type, "txn_id": self.txn_id, "gtid": self.gtid,
            "key": self.key, "value": self.value,
            "checkpoint_lsn": self.checkpoint_lsn, "lsn": self.lsn,
        }, sort_keys=True, separators=(",", ":")).encode()

    @classmethod
    def from_bytes(cls, payload: bytes, lsn: int) -> "WalRecord":
        """Deserialise a log block; validates the embedded LSN."""
        try:
            decoded = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise RecoveryError(f"WAL block {lsn}: undecodable") from exc
        record = cls(type=decoded["type"], txn_id=decoded["txn_id"],
                     gtid=decoded["gtid"], key=decoded["key"],
                     value=decoded["value"],
                     checkpoint_lsn=decoded["checkpoint_lsn"],
                     lsn=decoded["lsn"])
        if record.lsn != lsn:
            raise RecoveryError(
                f"WAL block {lsn} claims LSN {record.lsn}")
        return record


class _NullLatch:
    """No-op latch for devices without a simulator (in-memory devices
    complete writes without yielding, so appends cannot interleave)."""

    def acquire(self):
        return None

    def release(self) -> None:
        return None


class WalWriter:
    """Appends records to the log volume, one block per record.

    Appends are serialised by an internal latch: the LSN is assigned and
    the block written atomically with respect to other appenders, so
    concurrent transactions (e.g. parallel 2PC prepares) can never stamp
    the same LSN or leave holes in the log.
    """

    def __init__(self, device: BlockDevice) -> None:
        self.device = device
        self._next_lsn = 0
        self._latch = None  # created lazily; needs a Simulator

    @property
    def next_lsn(self) -> int:
        """LSN the next record will receive."""
        return self._next_lsn

    def _ensure_latch(self):
        if self._latch is None:
            from repro.simulation.resources import Lock
            sim = getattr(self.device, "sim", None) or \
                getattr(getattr(self.device, "array", None), "sim", None)
            if sim is None:
                self._latch = _NullLatch()
            else:
                self._latch = Lock(sim, name="wal-append-latch")
        return self._latch

    def append(self, record: WalRecord,
               ) -> Generator[object, object, WalRecord]:
        """Durably write one record; returns it with its LSN assigned.

        The write is *forced*: when this generator completes, the record
        is on (simulated) stable storage and inside the replication
        pipeline.
        """
        latch = self._ensure_latch()
        yield latch.acquire()
        try:
            if self._next_lsn >= self.device.capacity_blocks:
                raise DatabaseError(
                    f"WAL volume full at LSN {self._next_lsn}; size the "
                    "log volume for the workload")
            stamped = WalRecord(
                type=record.type, txn_id=record.txn_id, gtid=record.gtid,
                key=record.key, value=record.value,
                checkpoint_lsn=record.checkpoint_lsn, lsn=self._next_lsn)
            tag = f"wal:{stamped.type}:{stamped.txn_id or stamped.gtid}"
            yield from self.device.write_block(
                stamped.lsn, stamped.to_bytes(), tag=tag)
            self._next_lsn += 1
        finally:
            self._latch.release()
        return stamped

    def append_many(self, records: List[WalRecord],
                    ) -> Generator[object, object, List[WalRecord]]:
        """Durably write several records under one latch acquisition and
        one batched device flush; returns them with their LSNs assigned.

        LSNs are contiguous and stamped in input order, and the device
        flush preserves that order, so the WAL prefix property holds
        exactly as with serial :meth:`append` calls — a crash image is
        still a record-aligned prefix of the log.
        """
        if not records:
            return []
        latch = self._ensure_latch()
        yield latch.acquire()
        try:
            if self._next_lsn + len(records) > self.device.capacity_blocks:
                raise DatabaseError(
                    f"WAL volume full at LSN {self._next_lsn}; size the "
                    "log volume for the workload")
            stamped = [
                WalRecord(
                    type=record.type, txn_id=record.txn_id,
                    gtid=record.gtid, key=record.key, value=record.value,
                    checkpoint_lsn=record.checkpoint_lsn,
                    lsn=self._next_lsn + offset)
                for offset, record in enumerate(records)]
            yield from self.device.write_blocks(
                [(record.lsn, record.to_bytes(),
                  f"wal:{record.type}:{record.txn_id or record.gtid}")
                 for record in stamped])
            self._next_lsn += len(stamped)
        finally:
            self._latch.release()
        return stamped

    def resume_from(self, lsn: int) -> None:
        """Continue appending after ``lsn`` (post-recovery reuse)."""
        if lsn < 0:
            raise DatabaseError(f"cannot resume from LSN {lsn}")
        self._next_lsn = lsn


def read_log(device: BlockDevice,
             ) -> Generator[object, object, List[WalRecord]]:
    """Read the entire log from a device (process generator).

    Scans forward until the first unallocated block — valid because the
    log is written strictly sequentially and storage preserves per-volume
    write order, so the crash image is always a dense prefix.
    """
    records: List[WalRecord] = []
    for lsn in range(device.capacity_blocks):
        payload = yield from device.read_block(lsn)
        if payload is None:
            break
        records.append(WalRecord.from_bytes(payload, lsn))
    return records
