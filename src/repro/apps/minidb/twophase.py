"""Two-phase commit across MiniDB databases.

The e-commerce business process (§II) updates the sales and stock
databases atomically.  :class:`TwoPhaseCoordinator` runs the classic
presumed-abort protocol through :class:`DistributedTransaction` handles:

1. the application reads and writes through the handle (strict 2PL locks
   acquired per key as it goes);
2. **Phase 1** — ``commit()`` forces every participant's redo records
   and a ``prepare`` vote;
3. **decision** — the coordinator forces a global commit record into the
   *coordinator database's* WAL (the sales database here, so the
   decision rides replicated storage like everything else);
4. **Phase 2** — every participant forces its ``commit`` record and
   applies.

A crash between phases leaves participants in doubt; recovery resolves
them against the coordinator log (presumed abort).  The protocol is
correct **iff** the storage images it recovers from form a consistent
cut — precisely what the paper's consistency group provides and what
its absence breaks.

A crash *after* the decision but before Phase 2 completes needs the
same care on the **live** site: the commit decision is durable, so the
transaction WILL commit in any later recovery — abandoning it live
(and releasing its locks) would let subsequent transactions read state
that pretends it never happened, silently diverging the live site from
every recoverable image.  :meth:`DistributedTransaction.dispose`
therefore parks decided-commit transactions on the coordinator's
``in_doubt`` map with their locks held, and
:meth:`TwoPhaseCoordinator.resolve_in_doubt` re-drives Phase 2 once
storage is healthy again (idempotent; callers retry it until it
sticks).

Deadlock note: the handle acquires locks in the caller's access order.
Callers must touch contended keys in a globally consistent order (the
e-commerce app sorts item keys); unique keys (order ids) are free.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence

from repro.errors import TwoPhaseCommitError
from repro.apps.minidb.engine import PREPARED, MiniDB, Transaction


@dataclass(frozen=True)
class WriteOp:
    """One blind write of a distributed transaction."""

    db_name: str
    key: str
    #: None encodes a delete
    value: Optional[str]


@dataclass(frozen=True)
class DistributedOutcome:
    """Result of one distributed transaction."""

    gtid: str
    committed: bool
    #: commit-path latency in simulated seconds
    latency: float


class DistributedTransaction:
    """One in-flight distributed transaction."""

    def __init__(self, coordinator: "TwoPhaseCoordinator",
                 gtid: str) -> None:
        self.coordinator = coordinator
        self.gtid = gtid
        self.started_at = coordinator.coordinator_db.sim.now
        self._txns: Dict[str, Transaction] = {}
        self._finished = False
        #: the global COMMIT record is durable: the transaction must
        #: eventually apply everywhere, crash or not
        self._decided_commit = False

    # -- data operations ---------------------------------------------------

    def _branch(self, db_name: str) -> Transaction:
        self._check_open()
        txn = self._txns.get(db_name)
        if txn is None:
            db = self.coordinator.participant(db_name)
            txn = db.begin(f"{self.gtid}@{db_name}")
            self._txns[db_name] = txn
        return txn

    def get_for_update(self, db_name: str, key: str,
                       ) -> Generator[object, object, Optional[str]]:
        """Locked read through the branch on ``db_name``."""
        txn = self._branch(db_name)
        db = self.coordinator.participant(db_name)
        value = yield from db.get_for_update(txn, key)
        return value

    def put(self, db_name: str, key: str, value: str,
            ) -> Generator[object, object, None]:
        """Buffer a write on ``db_name``."""
        txn = self._branch(db_name)
        yield from self.coordinator.participant(db_name).put(
            txn, key, value)

    def delete(self, db_name: str, key: str,
               ) -> Generator[object, object, None]:
        """Buffer a delete on ``db_name``."""
        txn = self._branch(db_name)
        yield from self.coordinator.participant(db_name).delete(txn, key)

    # -- outcome ------------------------------------------------------------

    def commit(self) -> Generator[object, object, DistributedOutcome]:
        """Run 2PC to completion (prepare → decide → commit)."""
        self._check_open()
        if not self._txns:
            raise TwoPhaseCommitError(
                f"{self.gtid}: nothing to commit")
        self._finished = True
        involved = sorted(self._txns)
        for db_name in involved:
            db = self.coordinator.participant(db_name)
            yield from db.prepare(self._txns[db_name], self.gtid)
        yield from self.coordinator.coordinator_db.log_global_decision(
            self.gtid, True)
        self._decided_commit = True
        for db_name in involved:
            db = self.coordinator.participant(db_name)
            yield from db.commit_prepared(self._txns[db_name])
        self.coordinator.committed_gtids.append(self.gtid)
        return DistributedOutcome(
            gtid=self.gtid, committed=True,
            latency=self.coordinator.coordinator_db.sim.now
            - self.started_at)

    def abort(self, prepared: bool = False,
              ) -> Generator[object, object, DistributedOutcome]:
        """Abort the transaction.

        With ``prepared`` the branches are first prepared and the abort
        is decided and logged globally (exercises the presumed-abort
        path); otherwise the branches are discarded locally.
        """
        self._check_open()
        self._finished = True
        involved = sorted(self._txns)
        if prepared:
            for db_name in involved:
                db = self.coordinator.participant(db_name)
                yield from db.prepare(self._txns[db_name], self.gtid)
            yield from self.coordinator.coordinator_db \
                .log_global_decision(self.gtid, False)
            for db_name in involved:
                db = self.coordinator.participant(db_name)
                yield from db.abort_prepared(self._txns[db_name])
        else:
            for db_name in involved:
                self.coordinator.participant(db_name).abort(
                    self._txns[db_name])
        return DistributedOutcome(
            gtid=self.gtid, committed=False,
            latency=self.coordinator.coordinator_db.sim.now
            - self.started_at)

    def dispose(self) -> None:
        """Crash cleanup: release every branch's locks without I/O.

        For when the storage died under the transaction — see
        :meth:`MiniDB.dispose`.  Idempotent and state-agnostic, with
        one crucial exception: once the global COMMIT decision is
        durable the transaction is no longer abortable, so its
        still-prepared branches keep their state *and their locks* and
        the handle is parked on the coordinator's ``in_doubt`` map.
        Releasing those locks would let siblings read through a
        committed-but-unapplied transaction — the live site would then
        disagree with every image recovered from the coordinator log.
        """
        self._finished = True
        if self._decided_commit and any(
                txn.state == PREPARED for txn in self._txns.values()):
            self.coordinator.in_doubt[self.gtid] = self
            return
        for db_name, txn in self._txns.items():
            self.coordinator.participant(db_name).dispose(txn)

    def resolve(self) -> Generator[object, object, DistributedOutcome]:
        """Re-drive Phase 2 of a decided-commit in-doubt transaction.

        Idempotent: branches already applied are skipped; a branch
        whose storage is still failing raises and leaves the handle
        resolvable (partial progress is kept in the branch states).
        """
        if not self._decided_commit:
            raise TwoPhaseCommitError(
                f"{self.gtid}: no durable commit decision to resolve")
        for db_name in sorted(self._txns):
            txn = self._txns[db_name]
            if txn.state != PREPARED:
                continue
            db = self.coordinator.participant(db_name)
            yield from db.commit_prepared(txn)
        self.coordinator.committed_gtids.append(self.gtid)
        return DistributedOutcome(
            gtid=self.gtid, committed=True,
            latency=self.coordinator.coordinator_db.sim.now
            - self.started_at)

    def _check_open(self) -> None:
        if self._finished:
            raise TwoPhaseCommitError(
                f"{self.gtid}: transaction already finished")


class TwoPhaseCoordinator:
    """Coordinates transactions across a set of MiniDB participants."""

    def __init__(self, coordinator_db: MiniDB,
                 participants: Sequence[MiniDB],
                 gtid_prefix: str = "gtx") -> None:
        self.coordinator_db = coordinator_db
        self._participants: Dict[str, MiniDB] = {
            db.name: db for db in participants}
        if coordinator_db.name not in self._participants:
            raise TwoPhaseCommitError(
                "the coordinator database must be a participant (its WAL "
                "holds the global decisions)")
        self._gtid_counter = itertools.count(1)
        self.gtid_prefix = gtid_prefix
        self.committed_gtids: List[str] = []
        #: decided-commit transactions whose Phase 2 was cut short by a
        #: crash; they hold their locks until resolved
        self.in_doubt: Dict[str, DistributedTransaction] = {}

    def participant(self, db_name: str) -> MiniDB:
        """Resolve a participant database by name."""
        db = self._participants.get(db_name)
        if db is None:
            raise TwoPhaseCommitError(
                f"unknown participant database {db_name!r}")
        return db

    def next_gtid(self) -> str:
        """Allocate the next global transaction id."""
        return f"{self.gtid_prefix}-{next(self._gtid_counter)}"

    def resolve_in_doubt(self) -> Generator[object, object, int]:
        """Finish every parked decided-commit transaction; returns the
        number resolved.

        Call after the storage under the databases heals (and before
        issuing new transactions — the parked ones hold locks).  If a
        resolution fails mid-way the transaction stays parked with its
        partial progress; calling again resumes it.
        """
        resolved = 0
        for gtid in sorted(self.in_doubt):
            dtx = self.in_doubt[gtid]
            yield from dtx.resolve()
            del self.in_doubt[gtid]
            resolved += 1
        return resolved

    def begin(self, gtid: Optional[str] = None) -> DistributedTransaction:
        """Start a distributed transaction."""
        return DistributedTransaction(self, gtid or self.next_gtid())

    def execute(self, writes: Sequence[WriteOp],
                gtid: Optional[str] = None,
                ) -> Generator[object, object, DistributedOutcome]:
        """Convenience: run a blind-write transaction to completion.

        Writes are applied in sorted (db, key) order for deadlock
        freedom.
        """
        if not writes:
            raise TwoPhaseCommitError("distributed transaction is empty")
        dtx = self.begin(gtid)
        for op in sorted(writes, key=lambda op: (op.db_name, op.key)):
            if op.value is None:
                yield from dtx.delete(op.db_name, op.key)
            else:
                yield from dtx.put(op.db_name, op.key, op.value)
        outcome = yield from dtx.commit()
        return outcome
