"""MiniDB: a transactional key-value database over simulated storage.

The stand-in for the paper's Oracle databases (see DESIGN.md §2):
write-ahead logging, strict two-phase locking, redo-only recovery, and
two-phase commit — everything the collapse phenomenon needs, nothing it
does not.
"""

from repro.apps.minidb.device import (ArrayBlockDevice, BlockDevice,
                                      MemoryBlockDevice, ViewBlockDevice)
from repro.apps.minidb.engine import (LockManager, MiniDB, Transaction)
from repro.apps.minidb.pages import Page, bucket_for_key
from repro.apps.minidb.recovery import (RecoveredState, recover_database,
                                        reopen_database,
                                        scan_coordinator_decisions)
from repro.apps.minidb.twophase import (DistributedOutcome,
                                        DistributedTransaction,
                                        TwoPhaseCoordinator, WriteOp)
from repro.apps.minidb.wal import WalRecord, WalWriter, read_log

__all__ = [
    "ArrayBlockDevice",
    "BlockDevice",
    "DistributedOutcome",
    "DistributedTransaction",
    "LockManager",
    "MemoryBlockDevice",
    "MiniDB",
    "Page",
    "RecoveredState",
    "Transaction",
    "TwoPhaseCoordinator",
    "ViewBlockDevice",
    "WalRecord",
    "WalWriter",
    "WriteOp",
    "bucket_for_key",
    "read_log",
    "recover_database",
    "reopen_database",
    "scan_coordinator_decisions",
]
