"""The MiniDB engine: a transactional key-value database over block
storage.

MiniDB exists to make the paper's storage claims *observable at the
business level*: it is a database whose recoverability depends entirely
on the storage system preserving write order, the property consistency
groups extend across volumes (§I).

Engine facts:

* key space hash-partitioned into pages, one page per block of the data
  volume (``pages.bucket_for_key``);
* **strict two-phase locking** per key (exclusive locks, held to commit)
  via :class:`LockManager` — callers must acquire keys in a globally
  consistent order, which the e-commerce application does by sorting;
* **redo-only write-ahead logging**: writes are buffered in the
  transaction, forced to the WAL (update records, then the commit
  record) at commit, then applied to the page cache; dirty pages reach
  the data volume lazily via checkpoints;
* commits are serialised by a commit latch so the WAL order of commit
  records equals the cache apply order;
* two-phase commit surface: ``prepare`` / ``commit_prepared`` /
  ``abort_prepared``, plus coordinator decision records, used by
  :mod:`repro.apps.minidb.twophase`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Set

from repro.errors import DatabaseError, TransactionError
from repro.apps.minidb.device import BlockDevice
from repro.apps.minidb.pages import Page, bucket_for_key
from repro.apps.minidb import wal
from repro.apps.minidb.wal import WalRecord, WalWriter
from repro.simulation.kernel import Simulator
from repro.simulation.resources import Lock

ACTIVE = "active"
PREPARED = "prepared"
COMMITTED = "committed"
ABORTED = "aborted"


class LockManager:
    """Per-key exclusive locks with FIFO handoff.

    Deadlock avoidance is primarily the caller's job: acquire keys in a
    globally consistent (sorted) order, as the e-commerce application
    does.  As a safety net, a ``lock_timeout`` can be configured: an
    acquire that waits longer raises :class:`TransactionError`, turning
    an accidental deadlock into an abortable error instead of a hang.
    """

    def __init__(self, sim: Simulator, name: str = "",
                 lock_timeout: Optional[float] = None) -> None:
        if lock_timeout is not None and lock_timeout <= 0:
            raise DatabaseError("lock_timeout must be > 0 or None")
        self.sim = sim
        self.name = name or "lockmgr"
        self.lock_timeout = lock_timeout
        self._locks: Dict[str, Lock] = {}
        self._held: Dict[str, Set[str]] = {}
        #: acquisitions that timed out (observability)
        self.timeout_count = 0

    def acquire(self, txn_id: str, key: str,
                ) -> Generator[object, object, None]:
        """Acquire ``key`` exclusively for ``txn_id`` (re-entrant).

        Raises :class:`TransactionError` when a configured
        ``lock_timeout`` expires first; the caller must abort the
        transaction (its other locks are still held until then).
        """
        if key in self._held.get(txn_id, set()):
            return
        lock = self._locks.get(key)
        if lock is None:
            lock = Lock(self.sim, name=f"{self.name}:{key}")
            self._locks[key] = lock
        grant = lock.acquire()
        if not grant.triggered and self.lock_timeout is not None:
            deadline = self.sim.timeout(self.lock_timeout)
            yield self.sim.any_of([grant, deadline])
            if not grant.triggered and lock.cancel_acquire(grant):
                self.timeout_count += 1
                raise TransactionError(
                    f"{txn_id}: timed out after {self.lock_timeout:g}s "
                    f"waiting for lock {key!r} (possible deadlock)")
            # otherwise the unit was granted in the same instant: we
            # own it (cancel refused) — proceed
        elif not grant.triggered:
            yield grant
        self._held.setdefault(txn_id, set()).add(key)

    def release_all(self, txn_id: str) -> None:
        """Release every lock the transaction holds."""
        for key in self._held.pop(txn_id, set()):
            self._locks[key].release()

    def holds(self, txn_id: str, key: str) -> bool:
        """True while ``txn_id`` owns ``key``."""
        return key in self._held.get(txn_id, set())


@dataclass
class Transaction:
    """One database transaction (buffered writes + lock set)."""

    txn_id: str
    state: str = ACTIVE
    #: key -> new value (None = delete), in write order
    writes: Dict[str, Optional[str]] = field(default_factory=dict)
    #: stamped WAL update records (filled at prepare/commit)
    stamped_updates: List[WalRecord] = field(default_factory=list)
    #: global transaction id once prepared under 2PC
    gtid: str = ""

    def require_state(self, *states: str) -> None:
        """Guard against illegal lifecycle transitions."""
        if self.state not in states:
            raise TransactionError(
                f"transaction {self.txn_id} is {self.state}, "
                f"needs {' or '.join(states)}")


class MiniDB:
    """A transactional key-value database on two block devices."""

    def __init__(self, sim: Simulator, name: str,
                 wal_device: BlockDevice, data_device: BlockDevice,
                 bucket_count: int = 64,
                 lock_timeout: Optional[float] = None) -> None:
        if bucket_count < 1:
            raise DatabaseError("bucket_count must be >= 1")
        if bucket_count > data_device.capacity_blocks:
            raise DatabaseError(
                f"{name}: {bucket_count} buckets exceed the data "
                f"device's {data_device.capacity_blocks} blocks")
        self.sim = sim
        self.name = name
        self.wal = WalWriter(wal_device)
        self.data_device = data_device
        self.bucket_count = bucket_count
        self.locks = LockManager(sim, name=f"{name}.locks",
                                 lock_timeout=lock_timeout)
        self._commit_latch = Lock(sim, name=f"{name}.commit-latch")
        self._cache: Dict[int, Page] = {}
        self._dirty: Set[int] = set()
        self._txn_counter = itertools.count(1)
        self._transactions: Dict[str, Transaction] = {}
        #: statistics
        self.committed_count = 0
        self.aborted_count = 0
        self.checkpoint_count = 0

    # -- transaction lifecycle -----------------------------------------------

    def begin(self, txn_id: Optional[str] = None) -> Transaction:
        """Start a transaction."""
        if txn_id is None:
            txn_id = f"{self.name}-txn-{next(self._txn_counter)}"
        if txn_id in self._transactions:
            raise TransactionError(
                f"{self.name}: transaction {txn_id} already active")
        txn = Transaction(txn_id=txn_id)
        self._transactions[txn_id] = txn
        return txn

    def put(self, txn: Transaction, key: str, value: str,
            ) -> Generator[object, object, None]:
        """Buffer a write under an exclusive lock."""
        txn.require_state(ACTIVE)
        if not isinstance(value, str):
            raise DatabaseError(
                f"{self.name}: values are strings, got "
                f"{type(value).__name__}")
        yield from self.locks.acquire(txn.txn_id, key)
        txn.writes[key] = value

    def delete(self, txn: Transaction, key: str,
               ) -> Generator[object, object, None]:
        """Buffer a delete under an exclusive lock."""
        txn.require_state(ACTIVE)
        yield from self.locks.acquire(txn.txn_id, key)
        txn.writes[key] = None

    def get_for_update(self, txn: Transaction, key: str,
                       ) -> Generator[object, object, Optional[str]]:
        """Locked read: the value this transaction would see, with the
        exclusive lock held to commit (read-modify-write safety)."""
        txn.require_state(ACTIVE)
        yield from self.locks.acquire(txn.txn_id, key)
        if key in txn.writes:
            return txn.writes[key]
        value = yield from self._committed_value(key)
        return value

    def read(self, key: str) -> Generator[object, object, Optional[str]]:
        """Unlocked read of the latest committed value."""
        value = yield from self._committed_value(key)
        return value

    def commit(self, txn: Transaction) -> Generator[object, object, None]:
        """Force the transaction to the WAL and apply it.

        A failure before the commit record is durable (e.g. the WAL
        volume is full) *aborts* the transaction — locks are released
        and nothing was applied, which is safe under redo-only logging
        because recovery discards update records without a commit.  The
        original exception propagates.
        """
        txn.require_state(ACTIVE)
        yield self._commit_latch.acquire()
        try:
            try:
                yield from self._log_updates(txn)
                yield from self.wal.append(WalRecord(
                    type=wal.COMMIT, txn_id=txn.txn_id))
            except Exception:
                self._finish(txn, ABORTED)
                self.aborted_count += 1
                raise
            self._apply(txn)
        finally:
            self._commit_latch.release()
        self._finish(txn, COMMITTED)
        self.committed_count += 1

    def abort(self, txn: Transaction) -> None:
        """Discard the transaction (nothing was applied; no WAL needed
        for active transactions under redo-only logging)."""
        txn.require_state(ACTIVE)
        self._finish(txn, ABORTED)
        self.aborted_count += 1

    def dispose(self, txn: Transaction) -> None:
        """Crash cleanup: release the transaction's locks without any
        I/O, whatever state it is in.

        Used when the storage under the database died mid-transaction:
        no WAL record can be written, but sibling transactions of the
        same process must not hang on leaked locks.  Recovery semantics
        are unaffected — an unfinished transaction's durable trace is
        already exactly what recovery expects (discard or in-doubt).
        """
        if txn.state in (COMMITTED, ABORTED):
            return
        self._finish(txn, ABORTED)
        self.aborted_count += 1

    # -- two-phase commit surface ---------------------------------------------

    def prepare(self, txn: Transaction, gtid: str,
                ) -> Generator[object, object, None]:
        """Phase 1: force the redo information and the prepare vote.

        Locks remain held; the transaction can only finish via
        :meth:`commit_prepared` or :meth:`abort_prepared`.
        """
        txn.require_state(ACTIVE)
        if not gtid:
            raise TransactionError("prepare needs a global transaction id")
        try:
            yield from self._log_updates(txn)
            yield from self.wal.append(WalRecord(
                type=wal.PREPARE, txn_id=txn.txn_id, gtid=gtid))
        except Exception:
            # a participant that cannot make its vote durable votes "no":
            # abort locally so its locks never outlive the failure
            self._finish(txn, ABORTED)
            self.aborted_count += 1
            raise
        txn.gtid = gtid
        txn.state = PREPARED

    def commit_prepared(self, txn: Transaction,
                        ) -> Generator[object, object, None]:
        """Phase 2 commit: force the commit record and apply."""
        txn.require_state(PREPARED)
        yield self._commit_latch.acquire()
        try:
            yield from self.wal.append(WalRecord(
                type=wal.COMMIT, txn_id=txn.txn_id, gtid=txn.gtid))
            self._apply(txn)
        finally:
            self._commit_latch.release()
        self._finish(txn, COMMITTED)
        self.committed_count += 1

    def abort_prepared(self, txn: Transaction,
                       ) -> Generator[object, object, None]:
        """Phase 2 abort: force the abort record and discard."""
        txn.require_state(PREPARED)
        yield from self.wal.append(WalRecord(
            type=wal.ABORT, txn_id=txn.txn_id, gtid=txn.gtid))
        self._finish(txn, ABORTED)
        self.aborted_count += 1

    def log_global_decision(self, gtid: str, commit: bool,
                            ) -> Generator[object, object, None]:
        """Coordinator side: force the global decision record into this
        database's WAL (the coordinator log of the 2PC protocol)."""
        record_type = wal.COORD_COMMIT if commit else wal.COORD_ABORT
        yield from self.wal.append(WalRecord(type=record_type, gtid=gtid))

    # -- checkpointing ------------------------------------------------------

    def checkpoint(self) -> Generator[object, object, int]:
        """Flush dirty pages and write a checkpoint record.

        Returns the number of pages flushed.  Runs under the commit
        latch so the flushed set is transaction-consistent.
        """
        yield self._commit_latch.acquire()
        try:
            dirty = sorted(self._dirty)
            # one batched flush: the array aggregates the media waits of
            # the whole dirty set instead of paying them page by page
            yield from self.data_device.write_blocks(
                [(page_id, self._cache[page_id].to_bytes(),
                  f"page:{self.name}:{page_id}")
                 for page_id in dirty])
            self._dirty.clear()
            yield from self.wal.append(WalRecord(
                type=wal.CHECKPOINT, checkpoint_lsn=self.wal.next_lsn))
        finally:
            self._commit_latch.release()
        self.checkpoint_count += 1
        return len(dirty)

    def checkpointer(self, interval: float,
                     ) -> Generator[object, object, None]:
        """Background checkpoint loop (spawn as a process)."""
        if interval <= 0:
            raise DatabaseError("checkpoint interval must be > 0")
        while True:
            yield self.sim.timeout(interval)
            yield from self.checkpoint()

    # -- state preload (used by recovery) ----------------------------------

    def preload(self, pages: Dict[int, Page], next_lsn: int) -> None:
        """Install recovered pages and resume the WAL after recovery."""
        self._cache = dict(pages)
        self._dirty = set(pages)
        self.wal.resume_from(next_lsn)

    # -- internals ------------------------------------------------------

    def _log_updates(self, txn: Transaction,
                     ) -> Generator[object, object, None]:
        if txn.stamped_updates:
            return  # already logged (prepare path)
        for key in txn.writes:
            # Fault the page in now so the later apply merges into the
            # on-disk image rather than shadowing it.
            yield from self._load_page(bucket_for_key(key,
                                                      self.bucket_count))
        # one batched WAL flush for the transaction's redo records:
        # contiguous LSNs in write order, one latch hold, one media wait
        stamped = yield from self.wal.append_many(
            [WalRecord(type=wal.UPDATE, txn_id=txn.txn_id, key=key,
                       value=value)
             for key, value in txn.writes.items()])
        txn.stamped_updates.extend(stamped)

    def _apply(self, txn: Transaction) -> None:
        for record in txn.stamped_updates:
            page_id = bucket_for_key(record.key, self.bucket_count)
            page = self._cache.get(page_id)
            if page is None:
                raise DatabaseError(
                    f"{self.name}: page {page_id} not faulted in before "
                    "apply (engine bug)")
            page.apply(record.key, record.value, record.lsn)
            self._dirty.add(page_id)

    def _finish(self, txn: Transaction, state: str) -> None:
        txn.state = state
        self.locks.release_all(txn.txn_id)
        self._transactions.pop(txn.txn_id, None)

    def _committed_value(self, key: str,
                         ) -> Generator[object, object, Optional[str]]:
        page_id = bucket_for_key(key, self.bucket_count)
        page = yield from self._load_page(page_id)
        return page.data.get(key)

    def _load_page(self, page_id: int,
                   ) -> Generator[object, object, Page]:
        page = self._cache.get(page_id)
        if page is not None:
            return page
        payload = yield from self.data_device.read_block(page_id)
        page = Page.from_bytes(page_id, payload)
        # another process may have loaded/applied while we read
        current = self._cache.get(page_id)
        if current is not None:
            return current
        self._cache[page_id] = page
        return page

    def __repr__(self) -> str:
        return (f"<MiniDB {self.name!r} committed={self.committed_count} "
                f"next_lsn={self.wal.next_lsn}>")
