"""Page format of MiniDB's data volume.

The key space is hash-partitioned into fixed buckets, one page (= one
storage block) per bucket.  A page serialises to a self-describing JSON
payload with a CRC32 checksum and the LSN of the last update it
contains; readers verify the checksum and raise
:class:`~repro.errors.CorruptPageError` on mismatch, so storage-level
corruption can never silently enter query results.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import CorruptPageError

#: page format version, checked on load
PAGE_FORMAT = 1


@dataclass
class Page:
    """One hash bucket of key/value pairs."""

    page_id: int
    #: LSN of the newest update reflected in this page image
    lsn: int = -1
    data: Dict[str, str] = field(default_factory=dict)

    def to_bytes(self) -> bytes:
        """Serialise with checksum; the inverse of :meth:`from_bytes`."""
        body = json.dumps({
            "format": PAGE_FORMAT,
            "page_id": self.page_id,
            "lsn": self.lsn,
            "data": self.data,
        }, sort_keys=True, separators=(",", ":")).encode()
        checksum = zlib.crc32(body)
        return checksum.to_bytes(4, "big") + body

    @classmethod
    def from_bytes(cls, page_id: int, payload: Optional[bytes]) -> "Page":
        """Deserialise a page; ``None`` payload yields an empty page."""
        if payload is None:
            return cls(page_id=page_id)
        if len(payload) < 5:
            raise CorruptPageError(
                f"page {page_id}: truncated payload ({len(payload)} bytes)")
        checksum = int.from_bytes(payload[:4], "big")
        body = payload[4:]
        if zlib.crc32(body) != checksum:
            raise CorruptPageError(f"page {page_id}: checksum mismatch")
        try:
            decoded = json.loads(body)
        except json.JSONDecodeError as exc:
            raise CorruptPageError(
                f"page {page_id}: undecodable body") from exc
        if decoded.get("format") != PAGE_FORMAT:
            raise CorruptPageError(
                f"page {page_id}: unknown format {decoded.get('format')}")
        if decoded.get("page_id") != page_id:
            raise CorruptPageError(
                f"page {page_id}: payload belongs to page "
                f"{decoded.get('page_id')}")
        return cls(page_id=page_id, lsn=decoded["lsn"],
                   data=dict(decoded["data"]))

    def apply(self, key: str, value: Optional[str], lsn: int) -> None:
        """Apply one update (None value = delete) and advance the LSN."""
        if value is None:
            self.data.pop(key, None)
        else:
            self.data[key] = value
        self.lsn = max(self.lsn, lsn)


def bucket_for_key(key: str, bucket_count: int) -> int:
    """Stable hash partitioning (CRC32, not ``hash()`` which is salted)."""
    if bucket_count < 1:
        raise ValueError(f"bucket_count must be >= 1: {bucket_count}")
    return zlib.crc32(key.encode()) % bucket_count
