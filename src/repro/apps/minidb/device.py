"""Block devices: how MiniDB reaches its storage.

MiniDB performs all durable I/O through a :class:`BlockDevice`, which has
three implementations:

* :class:`ArrayBlockDevice` — the production path: host reads/writes
  through a :class:`~repro.storage.array.StorageArray`, so every commit
  lands in the array's ack history and rides the replication pipeline;
* :class:`ViewBlockDevice` — recovery/analytics path: direct access to a
  :class:`~repro.storage.volume.Volume` or
  :class:`~repro.storage.volume.SnapshotView` (used when mounting
  promoted secondaries or snapshot images at the backup site);
* :class:`MemoryBlockDevice` — in-memory device for unit-testing the
  database engine without a storage array.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Sequence, Tuple

from repro.errors import VolumeError
from repro.storage.array import StorageArray

#: one batched write: (block, payload, tag)
WriteItem = Tuple[int, bytes, Optional[str]]


class BlockDevice:
    """Minimal block interface MiniDB runs on."""

    #: blocks available on the device
    capacity_blocks: int = 0

    def read_block(self, block: int,
                   ) -> Generator[object, object, Optional[bytes]]:
        """Read one block; None when unallocated (process generator)."""
        raise NotImplementedError
        yield  # pragma: no cover

    def write_block(self, block: int, payload: bytes, tag: Optional[str] = None,
                    ) -> Generator[object, object, None]:
        """Durably write one block (process generator)."""
        raise NotImplementedError
        yield  # pragma: no cover

    def write_blocks(self, items: Sequence[WriteItem],
                     ) -> Generator[object, object, None]:
        """Durably write several blocks, in order (process generator).

        Default implementation writes serially; array-backed devices
        override this with the array's batched host-write path.
        """
        for block, payload, tag in items:
            yield from self.write_block(block, payload, tag=tag)


class ArrayBlockDevice(BlockDevice):
    """Host I/O through a storage array (the replicated data path)."""

    def __init__(self, array: StorageArray, volume_id: int) -> None:
        self.array = array
        self.sim = array.sim
        self.volume_id = volume_id
        self.capacity_blocks = array.get_volume(volume_id).capacity_blocks

    def read_block(self, block: int,
                   ) -> Generator[object, object, Optional[bytes]]:
        payload = yield from self.array.host_read(self.volume_id, block)
        return payload

    def write_block(self, block: int, payload: bytes,
                    tag: Optional[str] = None,
                    ) -> Generator[object, object, None]:
        yield from self.array.host_write(self.volume_id, block, payload,
                                         tag=tag)

    def write_blocks(self, items: Sequence[WriteItem],
                     ) -> Generator[object, object, None]:
        """Batched host writes: one aggregated media wait for the whole
        flush, identical ack order (see ``StorageArray.host_write_many``)."""
        volume_id = self.volume_id
        yield from self.array.host_write_many(
            [(volume_id, block, payload, tag)
             for block, payload, tag in items])

    def __repr__(self) -> str:
        return (f"<ArrayBlockDevice {self.array.serial}:"
                f"{self.volume_id}>")


class ViewBlockDevice(BlockDevice):
    """Direct access to a volume or snapshot view (no host path).

    Used for mounting backup images: the volume objects of a promoted
    secondary, or a snapshot view, without the array's host-write role
    checks (the recovery tooling owns the image).
    """

    def __init__(self, view) -> None:
        # ``view`` is any object with read_block/write_block generators
        # and capacity_blocks (Volume and SnapshotView both qualify).
        self.view = view
        self.sim = getattr(view, "sim", None)
        self.capacity_blocks = view.capacity_blocks

    def read_block(self, block: int,
                   ) -> Generator[object, object, Optional[bytes]]:
        payload = yield from self.view.read_block(block)
        return payload

    def write_block(self, block: int, payload: bytes,
                    tag: Optional[str] = None,
                    ) -> Generator[object, object, None]:
        yield from self.view.write_block(block, payload)

    def __repr__(self) -> str:
        return f"<ViewBlockDevice over {self.view!r}>"


class MemoryBlockDevice(BlockDevice):
    """In-memory device for engine unit tests (zero latency)."""

    def __init__(self, capacity_blocks: int = 4096) -> None:
        if capacity_blocks < 1:
            raise VolumeError("capacity_blocks must be >= 1")
        self.capacity_blocks = capacity_blocks
        self.sim = None
        self._blocks: Dict[int, bytes] = {}
        self.reads = 0
        self.writes = 0

    def read_block(self, block: int,
                   ) -> Generator[object, object, Optional[bytes]]:
        self._check(block)
        self.reads += 1
        return self._blocks.get(block)
        yield  # pragma: no cover - generator marker

    def write_block(self, block: int, payload: bytes,
                    tag: Optional[str] = None,
                    ) -> Generator[object, object, None]:
        self._check(block)
        self.writes += 1
        self._blocks[block] = bytes(payload)
        return
        yield  # pragma: no cover - generator marker

    def _check(self, block: int) -> None:
        if not 0 <= block < self.capacity_blocks:
            raise VolumeError(
                f"block {block} out of range [0, {self.capacity_blocks})")
