"""MiniDB crash recovery: redo-only log replay with 2PC resolution.

Given the (possibly crash-cut) images of a database's WAL and data
volumes, :func:`recover_database` rebuilds the committed state:

1. scan the WAL (always a dense prefix, see :mod:`..wal`);
2. classify transactions: committed, aborted, **in-doubt** (prepared
   under 2PC with no local outcome record);
3. resolve in-doubt transactions against the coordinator's recovered
   decisions — *presumed abort*: a prepared transaction whose global
   decision record is absent from the coordinator log aborts;
4. load every page and redo committed updates whose LSN is newer than
   the page image's LSN.

This is exactly the procedure whose correctness depends on the backup
image being a consistent cut: with a consistency group the coordinator's
log can never be *behind* a participant's commit record in a way that
contradicts it, so presumed abort is sound.  Without one, step 3 can
abort transactions the participant already exposed as committed — the
"collapsed" backup of §I, which
:mod:`repro.recovery.checker` detects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Set

from repro.errors import RecoveryError
from repro.apps.minidb.device import BlockDevice
from repro.apps.minidb.engine import MiniDB
from repro.apps.minidb.pages import Page, bucket_for_key
from repro.apps.minidb import wal as wal_types
from repro.apps.minidb.wal import WalRecord, read_log
from repro.simulation.kernel import Simulator


@dataclass
class RecoveredState:
    """Result of recovering one database image."""

    name: str
    #: fully rebuilt committed key/value state
    state: Dict[str, str]
    #: all pages, rebuilt (installable into a fresh engine)
    pages: Dict[int, Page]
    #: LSN after the last WAL record (where a reopened WAL resumes)
    next_lsn: int
    committed: Set[str] = field(default_factory=set)
    aborted: Set[str] = field(default_factory=set)
    #: txn id -> gtid for unresolved prepared transactions
    in_doubt: Dict[str, str] = field(default_factory=dict)
    #: gtid -> decision found in THIS database's WAL (coordinator role)
    coordinator_decisions: Dict[str, bool] = field(default_factory=dict)
    #: gtids of transactions aborted by presumed-abort resolution
    presumed_aborted: Set[str] = field(default_factory=set)

    @property
    def clean(self) -> bool:
        """True when no transaction remained in doubt."""
        return not self.in_doubt


def scan_coordinator_decisions(records: List[WalRecord]) -> Dict[str, bool]:
    """Extract global 2PC decisions from a WAL record list."""
    decisions: Dict[str, bool] = {}
    for record in records:
        if record.type == wal_types.COORD_COMMIT:
            decisions[record.gtid] = True
        elif record.type == wal_types.COORD_ABORT:
            decisions[record.gtid] = False
    return decisions


def recover_database(sim: Simulator, name: str, wal_device: BlockDevice,
                     data_device: BlockDevice, bucket_count: int,
                     coordinator_decisions: Optional[Dict[str, bool]] = None,
                     ) -> Generator[object, object, RecoveredState]:
    """Rebuild committed state from crash images (process generator).

    ``coordinator_decisions`` resolves in-doubt transactions (presumed
    abort); pass ``None`` to leave them in doubt (the caller recovers
    the coordinator first, then participants).
    """
    records = yield from read_log(wal_device)
    outcomes: Dict[str, str] = {}
    prepared: Dict[str, str] = {}
    updates: Dict[str, List[WalRecord]] = {}
    for record in records:
        if record.type == wal_types.UPDATE:
            updates.setdefault(record.txn_id, []).append(record)
        elif record.type == wal_types.COMMIT:
            outcomes[record.txn_id] = wal_types.COMMIT
        elif record.type == wal_types.ABORT:
            outcomes[record.txn_id] = wal_types.ABORT
        elif record.type == wal_types.PREPARE:
            prepared[record.txn_id] = record.gtid

    own_decisions = scan_coordinator_decisions(records)
    committed = {txn for txn, outcome in outcomes.items()
                 if outcome == wal_types.COMMIT}
    aborted = {txn for txn, outcome in outcomes.items()
               if outcome == wal_types.ABORT}
    in_doubt: Dict[str, str] = {}
    presumed_aborted: Set[str] = set()
    for txn_id, gtid in prepared.items():
        if txn_id in outcomes:
            continue
        # A decision in this database's own WAL (coordinator role) always
        # resolves its own branch; external decisions resolve the rest,
        # with presumed abort for gtids the coordinator never decided.
        if gtid in own_decisions:
            decision = own_decisions[gtid]
        elif coordinator_decisions is None:
            in_doubt[txn_id] = gtid
            continue
        else:
            decision = coordinator_decisions.get(gtid, False)
        if decision:
            committed.add(txn_id)
        else:
            aborted.add(txn_id)
            presumed_aborted.add(gtid)

    # Redo: load every page, then apply committed updates in LSN order.
    pages: Dict[int, Page] = {}
    for page_id in range(bucket_count):
        payload = yield from data_device.read_block(page_id)
        pages[page_id] = Page.from_bytes(page_id, payload)
    for record in records:
        if record.type != wal_types.UPDATE or \
                record.txn_id not in committed:
            continue
        page = pages[bucket_for_key(record.key, bucket_count)]
        if record.lsn > page.lsn:
            page.apply(record.key, record.value, record.lsn)

    state: Dict[str, str] = {}
    for page in pages.values():
        state.update(page.data)
    next_lsn = records[-1].lsn + 1 if records else 0
    return RecoveredState(
        name=name, state=state, pages=pages, next_lsn=next_lsn,
        committed=committed, aborted=aborted, in_doubt=in_doubt,
        coordinator_decisions=own_decisions,
        presumed_aborted=presumed_aborted)


def reopen_database(sim: Simulator, name: str, wal_device: BlockDevice,
                    data_device: BlockDevice, bucket_count: int,
                    recovered: RecoveredState) -> MiniDB:
    """Open a live MiniDB over recovered state (failover's last step)."""
    if recovered.in_doubt:
        raise RecoveryError(
            f"{name}: cannot reopen with {len(recovered.in_doubt)} "
            "in-doubt transactions; resolve them first")
    db = MiniDB(sim, name, wal_device=wal_device,
                data_device=data_device, bucket_count=bucket_count)
    db.preload(recovered.pages, recovered.next_lsn)
    return db
