"""The data-analytics application of the demonstration (Fig 6).

At the backup site, two databases are "deployed for reading snapshot
volumes" and feed an analytics application.  Here that means: recover
the sales and stock database images from snapshot views (write-enabled
snapshots absorb the recovery's page writes without touching the live
backup volumes), then run reporting queries over the recovered state.

The scan work is performed through the snapshot views with real
(simulated) read latency, so experiment E5 can measure whether analytics
interferes with the replication pipeline — the paper's claim is that it
does not, *because* it runs on snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Optional, Tuple

from repro.errors import RecoveryError
from repro.apps.ecommerce import BusinessState, decode_business_state
from repro.apps.minidb.device import BlockDevice
from repro.apps.minidb.recovery import RecoveredState, recover_database
from repro.simulation.kernel import Simulator


@dataclass(frozen=True)
class AnalyticsReport:
    """The reporting output of the analytics application."""

    order_count: int
    total_revenue: float
    #: item -> units sold
    units_sold: Dict[str, int]
    #: item -> remaining stock
    remaining_stock: Dict[str, int]
    #: simulated seconds the recovery + scan took
    scan_seconds: float

    def top_seller(self) -> Optional[str]:
        """Item with the most units sold (None when no sales)."""
        if not self.units_sold:
            return None
        return max(sorted(self.units_sold),
                   key=lambda item: self.units_sold[item])


@dataclass(frozen=True)
class DatabaseImage:
    """The two devices of one database image (WAL + data)."""

    wal_device: BlockDevice
    data_device: BlockDevice
    bucket_count: int


def recover_business_images(
        sim: Simulator, sales: DatabaseImage, stock: DatabaseImage,
) -> Generator[object, object, Tuple[RecoveredState, RecoveredState]]:
    """Recover the sales (coordinator) then stock (participant) images.

    Process generator.  The coordinator recovers first so its global
    decisions resolve the participant's in-doubt transactions
    (presumed abort).
    """
    # The sales database IS the coordinator: absence of a decision in its
    # own WAL means the decision was never made — presumed abort, which
    # the empty external-decision map expresses.
    sales_recovered = yield from recover_database(
        sim, "sales", sales.wal_device, sales.data_device,
        sales.bucket_count, coordinator_decisions={})
    stock_recovered = yield from recover_database(
        sim, "stock", stock.wal_device, stock.data_device,
        stock.bucket_count,
        coordinator_decisions=sales_recovered.coordinator_decisions)
    if stock_recovered.in_doubt:
        raise RecoveryError(
            "stock image still has in-doubt transactions after "
            "coordinator resolution")
    return sales_recovered, stock_recovered


def run_analytics(sim: Simulator, sales: DatabaseImage,
                  stock: DatabaseImage,
                  ) -> Generator[object, object, AnalyticsReport]:
    """The full analytics job: recover both images, compute the report.

    Process generator; returns an :class:`AnalyticsReport` whose
    ``scan_seconds`` is the simulated time the job took (all I/O goes
    through the images' devices).
    """
    started = sim.now
    sales_recovered, stock_recovered = yield from recover_business_images(
        sim, sales, stock)
    business = decode_business_state(sales_recovered.state,
                                     stock_recovered.state)
    report = build_report(business, scan_seconds=sim.now - started)
    return report


def build_report(business: BusinessState,
                 scan_seconds: float = 0.0) -> AnalyticsReport:
    """Pure reporting over decoded business state."""
    units: Dict[str, int] = {}
    revenue = 0.0
    for order in business.orders.values():
        for line in order["lines"]:
            units[line["item"]] = units.get(line["item"], 0) \
                + line["qty"]
        revenue += order["amount"]
    return AnalyticsReport(
        order_count=len(business.orders),
        total_revenue=round(revenue, 2),
        units_sold=units,
        remaining_stock=dict(business.quantities),
        scan_seconds=scan_seconds)
