"""Application layer: MiniDB, the e-commerce business process, the order
workload generator, and the analytics application."""

from repro.apps.analytics import (AnalyticsReport, DatabaseImage,
                                  build_report, recover_business_images,
                                  run_analytics)
from repro.apps.ecommerce import (SALES, STOCK, BusinessState, CatalogItem,
                                  EcommerceApp, OrderResult,
                                  decode_business_state, default_catalog)
from repro.apps.workload import (BackgroundLoad, PayloadProfile,
                                 WorkloadConfig, WorkloadResult,
                                 issue_orders, run_order_workload)

__all__ = [
    "AnalyticsReport",
    "BackgroundLoad",
    "BusinessState",
    "CatalogItem",
    "DatabaseImage",
    "EcommerceApp",
    "OrderResult",
    "PayloadProfile",
    "SALES",
    "STOCK",
    "WorkloadConfig",
    "WorkloadResult",
    "build_report",
    "decode_business_state",
    "default_catalog",
    "issue_orders",
    "recover_business_images",
    "run_analytics",
    "run_order_workload",
]
