"""Order workload generator for the e-commerce application.

A closed-loop workload: ``client_count`` clients issue orders
back-to-back (optionally with exponential think time) until the
configured duration elapses; in-flight orders drain before the result is
computed.  All randomness draws from named, per-client RNG streams, so a
given seed produces an identical order stream regardless of storage
configuration — which is what makes the E1 latency comparison honest.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Generator, List, Optional

from repro.apps.ecommerce import EcommerceApp, OrderResult
from repro.simulation.kernel import Simulator
from repro.telemetry.metrics import LatencyRecorder, LatencySummary

#: pause inserted when a client iteration consumed no simulated time
#: (instant rejections, zero-latency devices) so closed loops always
#: make progress toward their deadline
ZERO_PROGRESS_PACING = 0.0005


@dataclass(frozen=True)
class PayloadProfile:
    """Seeded generator of write payloads with a controlled shape.

    ``payload(i)`` is a pure function of ``(kind, size_bytes, seed,
    unique_payloads, i)`` — no RNG state — so two runs, or the off/on
    legs of a reduction comparison, see byte-identical write streams.

    Kinds:

    * ``"random"`` — SHA-256 keystream expansion: every payload is
      distinct and essentially incompressible (the pre-PR 9 behaviour
      of the benchmark payloads, made explicit);
    * ``"compressible"`` — a distinct per-index stamp followed by a
      highly repetitive record body, like the padded text/serialised
      rows real OLTP pages carry: every payload is unique (dedup can't
      help) but zlib shrinks it well;
    * ``"duplicate"`` — cycles a pool of ``unique_payloads`` distinct
      random payloads, like rewritten hot pages, fixed-content
      metadata blocks or re-copied ranges: most payloads are exact
      repeats, the shape fingerprint dedup exists for.
    """

    kind: str = "random"
    size_bytes: int = 512
    seed: int = 0
    #: pool size for the ``"duplicate"`` kind
    unique_payloads: int = 8

    KINDS = ("random", "compressible", "duplicate")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ValueError(
                f"kind must be one of {self.KINDS}: {self.kind!r}")
        if self.size_bytes < 1:
            raise ValueError("size_bytes must be >= 1")
        if self.unique_payloads < 1:
            raise ValueError("unique_payloads must be >= 1")

    def _random_bytes(self, tag: int) -> bytes:
        out = bytearray()
        counter = 0
        while len(out) < self.size_bytes:
            out += hashlib.sha256(
                b"%d:%d:%d" % (self.seed, tag, counter)).digest()
            counter += 1
        return bytes(out[:self.size_bytes])

    def payload(self, index: int) -> bytes:
        """The payload of the ``index``-th write of this profile."""
        if self.kind == "duplicate":
            return self._random_bytes(index % self.unique_payloads)
        if self.kind == "compressible":
            stamp = hashlib.sha256(
                b"%d:%d" % (self.seed, index)).hexdigest()[:16].encode()
            body = b"order-row pad=0000000000000000 status=committed "
            out = stamp + b" " + body * (
                self.size_bytes // len(body) + 1)
            return out[:self.size_bytes]
        return self._random_bytes(index)


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of an order workload."""

    client_count: int = 4
    duration: float = 5.0
    #: mean think time between a client's orders (0 = back-to-back)
    mean_think_time: float = 0.0
    max_order_qty: int = 3
    rng_prefix: str = "workload"

    def __post_init__(self) -> None:
        if self.client_count < 1:
            raise ValueError("client_count must be >= 1")
        if self.duration <= 0:
            raise ValueError("duration must be > 0")
        if self.mean_think_time < 0:
            raise ValueError("mean_think_time must be >= 0")
        if self.max_order_qty < 1:
            raise ValueError("max_order_qty must be >= 1")


@dataclass
class WorkloadResult:
    """Measured outcome of one workload run."""

    duration: float
    results: List[OrderResult] = field(default_factory=list)

    @property
    def accepted(self) -> int:
        """Orders that committed."""
        return sum(1 for r in self.results if r.accepted)

    @property
    def rejected(self) -> int:
        """Orders cleanly rejected (insufficient stock etc.)."""
        return sum(1 for r in self.results if not r.accepted)

    @property
    def throughput(self) -> float:
        """Committed orders per simulated second."""
        return self.accepted / self.duration

    def latency_summary(self) -> LatencySummary:
        """Latency distribution of committed orders."""
        recorder = LatencyRecorder("order-latency")
        for result in self.results:
            if result.accepted:
                recorder.record(result.latency)
        return recorder.summary()


def run_order_workload(sim: Simulator, app: EcommerceApp,
                       config: Optional[WorkloadConfig] = None,
                       ) -> WorkloadResult:
    """Run a workload to completion and return the measurements.

    Drives the simulator itself: spawns the clients, advances time until
    the window closes and every in-flight order drains.
    """
    config = config or WorkloadConfig()
    item_ids = sorted(app.catalog)
    results: List[OrderResult] = []
    deadline = sim.now + config.duration
    stop = False

    def client(sim: Simulator, index: int,
               ) -> Generator[object, object, None]:
        stream = f"{config.rng_prefix}.client{index}"
        while not stop and sim.now < deadline:
            before = sim.now
            item_id = sim.rng.choice(stream, item_ids)
            qty = sim.rng.randint(stream, 1, config.max_order_qty)
            result = yield from app.place_order(item_id, qty)
            results.append(result)
            if config.mean_think_time > 0:
                yield sim.timeout(sim.rng.expovariate(
                    stream, 1.0 / config.mean_think_time))
            elif sim.now == before:
                # zero-latency iteration (instant rejection or in-memory
                # devices): pace minimally so the loop cannot spin at one
                # simulated instant
                yield sim.timeout(ZERO_PROGRESS_PACING)

    processes = [sim.spawn(client(sim, index), name=f"client-{index}")
                 for index in range(config.client_count)]
    sim.run(until=deadline)
    stop = True
    for process in processes:
        if process.alive:
            sim.run_until_complete(process)
    outcome = WorkloadResult(duration=config.duration, results=results)
    # publish the committed-order latency distribution so `repro metrics`
    # shows application-level latency next to the storage-level numbers
    order_latency = sim.telemetry.registry.summary(
        "repro_order_latency_seconds",
        help="Committed-order latency per workload", unit="seconds",
        workload=config.rng_prefix)
    for result in results:
        if result.accepted:
            order_latency.record(result.latency)
    sim.telemetry.registry.counter(
        "repro_orders_total", help="Orders by outcome",
        workload=config.rng_prefix, outcome="accepted",
    ).increment(outcome.accepted)
    sim.telemetry.registry.counter(
        "repro_orders_total", help="Orders by outcome",
        workload=config.rng_prefix, outcome="rejected",
    ).increment(outcome.rejected)
    return outcome


class BackgroundLoad:
    """An open-ended order load that survives a site disaster.

    Clients loop until :meth:`stop` is called or the storage fails under
    them (a :class:`~repro.errors.ReproError` ends the client quietly —
    exactly what happens to an application when its site dies).
    Used by the disaster experiments, which need load *in flight* at the
    disaster instant.
    """

    def __init__(self, sim: Simulator, app: EcommerceApp,
                 client_count: int = 4, max_order_qty: int = 3,
                 rng_prefix: str = "bgload") -> None:
        from repro.errors import ReproError
        self.sim = sim
        self.app = app
        self.results: List[OrderResult] = []
        self._stopped = False
        item_ids = sorted(app.catalog)

        def client(sim: Simulator, index: int):
            stream = f"{rng_prefix}.client{index}"
            while not self._stopped:
                before = sim.now
                item_id = sim.rng.choice(stream, item_ids)
                qty = sim.rng.randint(stream, 1, max_order_qty)
                try:
                    result = yield from app.place_order(item_id, qty)
                except ReproError:
                    return  # the site died under this client
                self.results.append(result)
                if sim.now == before:
                    yield sim.timeout(ZERO_PROGRESS_PACING)

        self._processes = [
            sim.spawn(client(sim, index), name=f"{rng_prefix}-{index}")
            for index in range(client_count)]

    def stop(self) -> None:
        """Ask the clients to finish their current order and exit."""
        self._stopped = True

    @property
    def alive_clients(self) -> int:
        """Clients still running (in-flight orders after ``stop()``)."""
        return sum(1 for process in self._processes if process.alive)

    def drain(self) -> None:
        """Stop and wait for every client to exit."""
        self.stop()
        for process in self._processes:
            if process.alive:
                self.sim.run_until_complete(process)

    @property
    def committed_gtids(self) -> List[str]:
        """Gtids of orders whose 2PC fully completed so far."""
        return list(self.app.coordinator.committed_gtids)


def issue_orders(sim: Simulator, app: EcommerceApp, count: int,
                 rng_stream: str = "orders",
                 max_qty: int = 3) -> List[OrderResult]:
    """Issue exactly ``count`` sequential orders (scenario helper)."""
    item_ids = sorted(app.catalog)
    results: List[OrderResult] = []

    def runner(sim: Simulator) -> Generator[object, object, None]:
        for _ in range(count):
            item_id = sim.rng.choice(rng_stream, item_ids)
            qty = sim.rng.randint(rng_stream, 1, max_qty)
            result = yield from app.place_order(item_id, qty)
            results.append(result)

    sim.run_until_complete(sim.spawn(runner(sim), name="order-runner"))
    return results
