"""The e-commerce business process of the paper's use case (§II).

One business process, two databases:

* **sales** — the order ledger and the 2PC coordinator log;
* **stock** — inventory quantities and a stock-movement journal.

An order decrements inventory and records both the movement and the
order atomically via two-phase commit, so a backup image is *usable* only
if the two databases (four volumes: each database has a WAL volume and a
data volume) are recovered at a mutually consistent point — the exact
cross-resource dependency the paper's consistency group exists for.

Key schema:

* stock DB:  ``qty:<item>`` → remaining units,
  ``mov:<gtid>`` → JSON ``{"item", "qty"}``;
* sales DB:  ``order:<gtid>`` → JSON ``{"item", "qty", "amount"}``,
  ``price:<item>`` → unit price.

Deadlock freedom: the only contended keys are ``qty:<item>``; orders
acquire them in sorted item order.  Movement and order keys are unique
per transaction.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Generator, List, Sequence, Tuple

from repro.errors import DatabaseError
from repro.apps.minidb.engine import MiniDB
from repro.apps.minidb.twophase import TwoPhaseCoordinator

SALES = "sales"
STOCK = "stock"


@dataclass(frozen=True)
class CatalogItem:
    """One sellable item."""

    item_id: str
    initial_qty: int
    unit_price: float

    def __post_init__(self) -> None:
        if self.initial_qty < 0:
            raise ValueError(f"{self.item_id}: negative initial quantity")
        if self.unit_price <= 0:
            raise ValueError(f"{self.item_id}: unit price must be > 0")


def default_catalog(item_count: int = 8,
                    initial_qty: int = 100_000) -> List[CatalogItem]:
    """A simple catalog for experiments (deterministic)."""
    return [CatalogItem(item_id=f"item-{i:03d}", initial_qty=initial_qty,
                        unit_price=float(5 + 3 * i))
            for i in range(item_count)]


@dataclass(frozen=True)
class OrderResult:
    """Outcome of one order attempt."""

    gtid: str
    accepted: bool
    item_id: str
    qty: int
    latency: float
    reason: str = ""


class EcommerceApp:
    """The transactional application of the demonstration."""

    def __init__(self, sales_db: MiniDB, stock_db: MiniDB,
                 catalog: Sequence[CatalogItem],
                 epoch: str = "") -> None:
        """``epoch`` qualifies global transaction ids so that an app
        incarnation recovered after a failover can never reuse a gtid an
        earlier incarnation already committed (order/movement keys are
        derived from gtids, so a collision would silently overwrite
        history)."""
        if sales_db.name != SALES or stock_db.name != STOCK:
            raise DatabaseError(
                "databases must be named 'sales' and 'stock' "
                f"(got {sales_db.name!r}, {stock_db.name!r})")
        self.sales_db = sales_db
        self.stock_db = stock_db
        self.catalog = {item.item_id: item for item in catalog}
        prefix = f"order-{epoch}" if epoch else "order"
        self.coordinator = TwoPhaseCoordinator(
            sales_db, [sales_db, stock_db], gtid_prefix=prefix)
        self.orders_accepted = 0
        self.orders_rejected = 0

    # -- setup ------------------------------------------------------------

    def seed(self) -> Generator[object, object, None]:
        """Load initial inventory and prices (single-DB transactions)."""
        stock_txn = self.stock_db.begin("seed-stock")
        for item in self.catalog.values():
            yield from self.stock_db.put(
                stock_txn, f"qty:{item.item_id}", str(item.initial_qty))
        yield from self.stock_db.commit(stock_txn)
        sales_txn = self.sales_db.begin("seed-sales")
        for item in self.catalog.values():
            yield from self.sales_db.put(
                sales_txn, f"price:{item.item_id}",
                f"{item.unit_price:.2f}")
        yield from self.sales_db.commit(sales_txn)

    def resolve_in_doubt(self) -> Generator[object, object, int]:
        """Finish orders whose commit decision survived a storage crash.

        Crash-tolerant clients call this once storage heals, *before*
        placing new orders: an in-doubt order holds its stock locks
        until resolved.  Returns the number of orders completed.
        """
        count = yield from self.coordinator.resolve_in_doubt()
        self.orders_accepted += count
        return count

    # -- the business transaction ---------------------------------------------

    def place_order(self, item_id: str, qty: int,
                    ) -> Generator[object, object, OrderResult]:
        """One order: check stock, decrement it, record movement + order.

        Atomic across both databases via 2PC; rejected (cleanly aborted)
        when the item is unknown or stock is insufficient.
        """
        if qty < 1:
            raise DatabaseError(f"order quantity must be >= 1: {qty}")
        dtx = self.coordinator.begin()
        try:
            item = self.catalog.get(item_id)
            if item is None:
                yield from dtx.abort()
                self.orders_rejected += 1
                return OrderResult(gtid=dtx.gtid, accepted=False,
                                   item_id=item_id, qty=qty, latency=0.0,
                                   reason="unknown item")
            current_raw = yield from dtx.get_for_update(
                STOCK, f"qty:{item_id}")
            current = int(current_raw) if current_raw is not None else 0
            if current < qty:
                outcome = yield from dtx.abort()
                self.orders_rejected += 1
                return OrderResult(gtid=dtx.gtid, accepted=False,
                                   item_id=item_id, qty=qty,
                                   latency=outcome.latency,
                                   reason="insufficient stock")
            yield from dtx.put(STOCK, f"qty:{item_id}",
                               str(current - qty))
            yield from dtx.put(STOCK, f"mov:{dtx.gtid}", json.dumps(
                {"item": item_id, "qty": qty}, sort_keys=True))
            amount = item.unit_price * qty
            yield from dtx.put(SALES, f"order:{dtx.gtid}", json.dumps(
                {"item": item_id, "qty": qty,
                 "amount": round(amount, 2)}, sort_keys=True))
            outcome = yield from dtx.commit()
        except Exception:
            # crash cleanup: the storage may have died under us; locks
            # must not outlive this transaction (siblings would hang)
            dtx.dispose()
            raise
        self.orders_accepted += 1
        return OrderResult(gtid=dtx.gtid, accepted=True, item_id=item_id,
                           qty=qty, latency=outcome.latency)

    def place_basket_order(self, lines: Sequence[Tuple[str, int]],
                           ) -> Generator[object, object, OrderResult]:
        """One order spanning several items (a shopping basket).

        All-or-nothing: if any line's stock is insufficient the whole
        basket aborts.  Contended stock keys are locked in sorted item
        order — the discipline that keeps concurrent baskets
        deadlock-free (see the module docstring).
        """
        if not lines:
            raise DatabaseError("basket must contain at least one line")
        merged: Dict[str, int] = {}
        for item_id, qty in lines:
            if qty < 1:
                raise DatabaseError(
                    f"line quantity must be >= 1: {item_id}={qty}")
            merged[item_id] = merged.get(item_id, 0) + qty
        dtx = self.coordinator.begin()
        try:
            unknown = [item_id for item_id in merged
                       if item_id not in self.catalog]
            if unknown:
                yield from dtx.abort()
                self.orders_rejected += 1
                return OrderResult(gtid=dtx.gtid, accepted=False,
                                   item_id=unknown[0],
                                   qty=merged[unknown[0]], latency=0.0,
                                   reason="unknown item")
            current: Dict[str, int] = {}
            for item_id in sorted(merged):  # sorted: deadlock freedom
                raw = yield from dtx.get_for_update(STOCK,
                                                    f"qty:{item_id}")
                current[item_id] = int(raw) if raw is not None else 0
            short = [item_id for item_id in sorted(merged)
                     if current[item_id] < merged[item_id]]
            if short:
                outcome = yield from dtx.abort()
                self.orders_rejected += 1
                return OrderResult(gtid=dtx.gtid, accepted=False,
                                   item_id=short[0],
                                   qty=merged[short[0]],
                                   latency=outcome.latency,
                                   reason="insufficient stock")
            amount = 0.0
            basket = [{"item": item_id, "qty": merged[item_id]}
                      for item_id in sorted(merged)]
            for line in basket:
                item_id, qty = line["item"], line["qty"]
                yield from dtx.put(STOCK, f"qty:{item_id}",
                                   str(current[item_id] - qty))
                amount += self.catalog[item_id].unit_price * qty
            yield from dtx.put(STOCK, f"mov:{dtx.gtid}", json.dumps(
                {"lines": basket}, sort_keys=True))
            yield from dtx.put(SALES, f"order:{dtx.gtid}", json.dumps(
                {"lines": basket, "amount": round(amount, 2)},
                sort_keys=True))
            outcome = yield from dtx.commit()
        except Exception:
            dtx.dispose()  # crash cleanup: see place_order
            raise
        self.orders_accepted += 1
        first = basket[0]
        return OrderResult(gtid=dtx.gtid, accepted=True,
                           item_id=first["item"], qty=first["qty"],
                           latency=outcome.latency)


# ---------------------------------------------------------------------------
# State introspection shared by the consistency checker and analytics
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BusinessState:
    """Decoded business content of (sales, stock) key-value states.

    Orders and movements are normalised to the *lines* form regardless
    of whether they were written by :meth:`EcommerceApp.place_order`
    (single item) or :meth:`EcommerceApp.place_basket_order` (basket):
    ``orders[gtid] = {"lines": [{"item", "qty"}, ...], "amount": x}``,
    ``movements[gtid] = {"lines": [...]}``.
    """

    #: gtid -> {"lines": [...], "amount": float}
    orders: Dict[str, dict]
    #: gtid -> {"lines": [...]}
    movements: Dict[str, dict]
    #: item -> remaining units
    quantities: Dict[str, int]
    #: item -> unit price
    prices: Dict[str, float]


def _normalise_lines(decoded: dict) -> List[dict]:
    """Single-item and basket records share one canonical lines form."""
    if "lines" in decoded:
        return sorted(({"item": line["item"], "qty": line["qty"]}
                       for line in decoded["lines"]),
                      key=lambda line: line["item"])
    return [{"item": decoded["item"], "qty": decoded["qty"]}]


def decode_business_state(sales_state: Dict[str, str],
                          stock_state: Dict[str, str]) -> BusinessState:
    """Parse raw recovered key-value states into business terms."""
    orders: Dict[str, dict] = {}
    for key, value in sales_state.items():
        if not key.startswith("order:"):
            continue
        decoded = json.loads(value)
        orders[key.split(":", 1)[1]] = {
            "lines": _normalise_lines(decoded),
            "amount": decoded["amount"]}
    prices = {key.split(":", 1)[1]: float(value)
              for key, value in sales_state.items()
              if key.startswith("price:")}
    movements: Dict[str, dict] = {}
    for key, value in stock_state.items():
        if not key.startswith("mov:"):
            continue
        movements[key.split(":", 1)[1]] = {
            "lines": _normalise_lines(json.loads(value))}
    quantities = {key.split(":", 1)[1]: int(value)
                  for key, value in stock_state.items()
                  if key.startswith("qty:")}
    return BusinessState(orders=orders, movements=movements,
                         quantities=quantities, prices=prices)
