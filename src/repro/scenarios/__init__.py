"""Scenario assembly: the two-site topology and the scripted ICDE demo."""

from repro.scenarios.builders import (DEFAULT_STORAGE_CLASS, Site,
                                      SystemConfig, TwoSiteSystem,
                                      build_system)
from repro.scenarios.business import (BusinessConfig, BusinessProcess,
                                      PVC_LAYOUT, deploy_business_process,
                                      pod_phases)
from repro.scenarios.demo import DemoEnvironment, DemoResult, run_demo

__all__ = [
    "BusinessConfig",
    "BusinessProcess",
    "DEFAULT_STORAGE_CLASS",
    "DemoEnvironment",
    "DemoResult",
    "PVC_LAYOUT",
    "Site",
    "SystemConfig",
    "TwoSiteSystem",
    "build_system",
    "deploy_business_process",
    "pod_phases",
    "run_demo",
]
