"""Two-site system builder: the demonstration topology of Fig 1.

Builds, inside one simulator:

* a **main site**: storage array + container platform + CSI storage
  plugin + replication plugin + namespace operator (installed by
  :mod:`repro.operator` when requested);
* a **backup site**: storage array + container platform + CSI storage
  plugin;
* the inter-site replication network.

Every experiment and example starts from :func:`build_system`, so the
topology knobs (link latency, ADC tuning, pool sizes) live in one
:class:`SystemConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.csi.driver import HspcDriver
from repro.csi.rpc import RpcChannel
from repro.csi.replication_plugin import (ReplicationPluginContext,
                                          install_replication_plugin)
from repro.csi.storage_plugin import install_storage_plugin
from repro.platform.cluster import Cluster
from repro.platform.resources import StorageClass
from repro.simulation.kernel import Simulator
from repro.simulation.network import SitePair
from repro.storage.adc import AdcConfig
from repro.storage.array import ArrayConfig, StorageArray

#: storage class name both clusters ship
DEFAULT_STORAGE_CLASS = "hspc-replicated"


@dataclass(frozen=True)
class SystemConfig:
    """Topology and tuning knobs for a two-site system."""

    #: one-way inter-site latency in seconds (the E1 sweep axis)
    link_latency: float = 0.005
    #: inter-site bandwidth in bytes/s (None = latency-only)
    link_bandwidth: Optional[float] = None
    #: jitter fraction on the link propagation delay
    link_jitter: float = 0.0
    #: pool capacity per array, in blocks
    pool_blocks: int = 2_000_000
    #: storage array configuration (media latencies, ADC/SDC tuning)
    array: ArrayConfig = field(default_factory=ArrayConfig)
    #: storage-management REST latency per plugin command
    command_latency: float = 0.050
    #: install the forward-looking alpha group-snapshot controller
    enable_group_snapshots: bool = False

    def with_adc(self, **overrides) -> "SystemConfig":
        """Copy with ADC pipeline knobs overridden."""
        return replace(self, array=self.array.with_adc(**overrides))


@dataclass
class Site:
    """One site: its array, cluster, CSI driver and default pool."""

    name: str
    array: StorageArray
    cluster: Cluster
    driver: HspcDriver
    pool_id: int

    @property
    def console(self):
        """The site's web console facade."""
        return self.cluster.console

    @property
    def api(self):
        """The site's API server."""
        return self.cluster.api


@dataclass
class TwoSiteSystem:
    """The full Fig 1 topology inside one simulator."""

    sim: Simulator
    config: SystemConfig
    main: Site
    backup: Site
    network: SitePair
    replication_context: ReplicationPluginContext

    def fail_main_site(self) -> None:
        """Disaster at the main site: array down, platform down,
        inter-site network partitioned."""
        self.main.array.fail()
        self.main.cluster.stop()
        self.network.fail()

    @property
    def replication_link(self):
        """The main-to-backup link replication rides on."""
        return self.network.forward


def _build_site(sim: Simulator, name: str, serial: str,
                config: SystemConfig) -> Site:
    array = StorageArray(sim, serial=serial, config=config.array)
    pool = array.create_pool(config.pool_blocks)
    cluster = Cluster(sim, name=name)
    driver = HspcDriver(
        array, default_pool_id=pool.pool_id,
        management_latency=config.command_latency,
        enable_group_snapshots=config.enable_group_snapshots)
    install_storage_plugin(
        cluster, driver,
        enable_group_snapshots=config.enable_group_snapshots)
    storage_class = StorageClass()
    storage_class.meta.name = DEFAULT_STORAGE_CLASS
    storage_class.provisioner = driver.driver_name
    storage_class.parameters = {"poolId": str(pool.pool_id)}
    cluster.api.create(storage_class)
    return Site(name=name, array=array, cluster=cluster, driver=driver,
                pool_id=pool.pool_id)


def build_system(sim: Simulator,
                 config: Optional[SystemConfig] = None) -> TwoSiteSystem:
    """Build and start the two-site demonstration topology."""
    config = config or SystemConfig()
    main = _build_site(sim, "main", "G370-MAIN", config)
    backup = _build_site(sim, "backup", "G370-BKUP", config)
    network = SitePair(sim, latency=config.link_latency,
                       bandwidth_bytes_per_s=config.link_bandwidth,
                       jitter_fraction=config.link_jitter,
                       name="intersite")
    context = ReplicationPluginContext(
        main_array=main.array, backup_array=backup.array,
        link=network.forward, main_pool_id=main.pool_id,
        backup_pool_id=backup.pool_id, backup_api=backup.cluster.api,
        command_latency=config.command_latency,
        adc_config=config.array.adc,
        rpc=RpcChannel(sim, latency=config.command_latency,
                       name="main-mgmt"))
    install_replication_plugin(main.cluster, context)
    main.cluster.start()
    backup.cluster.start()
    return TwoSiteSystem(sim=sim, config=config, main=main, backup=backup,
                         network=network, replication_context=context)
