"""The scripted ICDE demonstration (§IV, Figs 2-6).

:func:`run_demo` executes the paper's three demonstration steps against
the simulated two-site system, with the console operation logs of both
sites standing in for the split demo screen (Fig 2):

* **backup configuration** (Figs 3-4) — the user tags the namespace with
  ``ConsistentCopyToCloud``; the namespace operator configures the ADC
  with a consistency group; PVs appear at the backup site;
* **snapshot development** (Fig 5) — snapshot volumes are created at the
  backup site; per the paper's §II CSI-alpha gap, the snapshot *group*
  is issued directly to the storage array from the console;
* **data analytics** (Fig 6) — two databases are brought up over the
  snapshot volumes and the analytics application reports over them,
  while the transaction window on the main site keeps running.

The returned :class:`DemoResult` carries every assertable transition so
tests and the D0 benchmark can verify the demonstration rather than just
narrate it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.apps import AnalyticsReport, BackgroundLoad, DatabaseImage
from repro.apps.analytics import run_analytics
from repro.apps.minidb.device import ViewBlockDevice
from repro.errors import ReproError
from repro.operator import (ANNOTATION_STATE, NS_STATE_PROTECTED,
                            TAG_CONSISTENT, TAG_KEY,
                            install_namespace_operator)
from repro.platform.resources import Namespace
from repro.recovery.checker import StorageCutReport, check_storage_cut
from repro.scenarios.builders import (SystemConfig, TwoSiteSystem,
                                      build_system)
from repro.scenarios.business import (BusinessConfig, BusinessProcess,
                                      PVC_LAYOUT, deploy_business_process)
from repro.simulation.kernel import Simulator
from repro.storage.snapshot import SnapshotGroup
from repro.telemetry import start_probes


@dataclass
class DemoResult:
    """Everything the demonstration showed, in assertable form."""

    #: PVs listed at the backup site before tagging (Fig 3: none)
    backup_pvs_before: List[str] = field(default_factory=list)
    #: PVs listed at the backup site after tagging (Fig 4: four)
    backup_pvs_after: List[str] = field(default_factory=list)
    #: namespace backup state annotation after configuration
    namespace_state: str = ""
    #: seconds from tag to Protected
    configuration_seconds: float = 0.0
    #: the snapshot group cut at the backup site (Fig 5)
    snapshot_group: Optional[SnapshotGroup] = None
    #: storage-level consistency verdict of the snapshot images
    snapshot_cut: Optional[StorageCutReport] = None
    #: the analytics report computed from the snapshots (Fig 6)
    analytics: Optional[AnalyticsReport] = None
    #: orders committed while the demo ran (the transaction window)
    orders_during_demo: int = 0
    #: orders committed after the analytics step (business continued)
    orders_after_analytics: int = 0
    #: the combined console operation log ("the screen")
    screens: Dict[str, str] = field(default_factory=dict)

    def summary(self) -> str:
        """Human-readable demo summary."""
        lines = [
            "=== ICDE demonstration summary ===",
            f"backup PVs before tag : {len(self.backup_pvs_before)}",
            f"backup PVs after tag  : {len(self.backup_pvs_after)}",
            f"namespace state       : {self.namespace_state}",
            f"configuration latency : {self.configuration_seconds * 1e3:.1f} ms",
            f"snapshot cut          : {self.snapshot_cut}",
            f"orders in window      : {self.orders_during_demo}",
        ]
        if self.analytics is not None:
            lines.append(
                f"analytics             : {self.analytics.order_count} "
                f"orders, revenue {self.analytics.total_revenue:.2f}, "
                f"top seller {self.analytics.top_seller()}")
        lines.append(
            f"orders after analytics: {self.orders_after_analytics}")
        return "\n".join(lines)


@dataclass
class DemoEnvironment:
    """The built demo system, exposed for further experimentation."""

    sim: Simulator
    system: TwoSiteSystem
    business: BusinessProcess
    load: BackgroundLoad
    result: DemoResult


def run_demo(seed: int = 2025,
             system_config: Optional[SystemConfig] = None,
             business_config: Optional[BusinessConfig] = None,
             configuration_timeout: float = 30.0,
             analytics_delay: float = 0.5,
             probe_interval: Optional[float] = None) -> DemoEnvironment:
    """Run the full three-step demonstration; returns the environment.

    ``probe_interval`` > 0 starts telemetry probes on both arrays, so
    the returned environment's registry carries journal-lag and
    snapshot-age gauge series (see :mod:`repro.telemetry.probes`).

    Raises :class:`ReproError` if any demonstrated transition fails to
    happen (this function *is* the demo's correctness test).
    """
    sim = Simulator(seed=seed)
    system = build_system(sim, system_config or SystemConfig())
    install_namespace_operator(system.main.cluster)
    if probe_interval is not None:
        start_probes(sim, [system.main.array, system.backup.array],
                     interval=probe_interval)
    result = DemoResult()

    # -- the stage: business process + continual transaction window --------
    business = deploy_business_process(
        system, business_config or BusinessConfig())
    load = BackgroundLoad(sim, business.app, client_count=4,
                          rng_prefix="demo-window")

    # -- step 1: backup configuration (Figs 3-4) ---------------------------
    result.backup_pvs_before = [
        pv.meta.name
        for pv in system.backup.console.list_persistent_volumes()]
    tagged_at = sim.now
    system.main.console.tag_namespace(business.namespace, TAG_KEY,
                                      TAG_CONSISTENT)
    deadline = sim.now + configuration_timeout
    while sim.now < deadline:
        sim.run(until=min(sim.now + 0.25, deadline))
        namespace = system.main.api.get(Namespace, business.namespace)
        if namespace.meta.annotations.get(ANNOTATION_STATE) == \
                NS_STATE_PROTECTED:
            break
    else:  # pragma: no cover - defensive
        pass
    namespace = system.main.api.get(Namespace, business.namespace)
    result.namespace_state = namespace.meta.annotations.get(
        ANNOTATION_STATE, "")
    if result.namespace_state != NS_STATE_PROTECTED:
        raise ReproError(
            "demo step 1 failed: namespace never reached Protected "
            f"(state={result.namespace_state!r})")
    result.configuration_seconds = sim.now - tagged_at
    result.backup_pvs_after = [
        pv.meta.name
        for pv in system.backup.console.list_persistent_volumes()]
    if len(result.backup_pvs_after) != len(PVC_LAYOUT):
        raise ReproError(
            "demo step 1 failed: expected "
            f"{len(PVC_LAYOUT)} backup PVs, saw "
            f"{len(result.backup_pvs_after)}")

    # -- step 2: snapshot development (Fig 5) --------------------------------
    # the transaction window keeps running; snapshots must still be
    # consistent thanks to quiesced snapshot groups
    sim.run(until=sim.now + analytics_delay)
    secondary_ids = _secondary_volume_ids(system, business)
    snap_proc = sim.spawn(
        system.backup.console.storage_array_snapshot_group(
            system.backup.array, "demo-snap-group",
            [secondary_ids[pvc] for pvc in sorted(secondary_ids)]),
        name="demo-snapshot-group")
    group = sim.run_until_complete(snap_proc)
    result.snapshot_group = group
    result.snapshot_cut = _check_snapshot_cut(system, business, group,
                                              secondary_ids)
    if not result.snapshot_cut.consistent:
        raise ReproError(
            f"demo step 2 failed: snapshot group is not a consistent "
            f"cut ({result.snapshot_cut})")

    # -- step 3: data analytics (Fig 6) ------------------------------------
    views = group.by_base_volume()
    bucket_count = business.config.bucket_count
    sales_image = DatabaseImage(
        wal_device=ViewBlockDevice(views[secondary_ids["sales-wal"]].view()),
        data_device=ViewBlockDevice(views[secondary_ids["sales-data"]].view()),
        bucket_count=bucket_count)
    stock_image = DatabaseImage(
        wal_device=ViewBlockDevice(views[secondary_ids["stock-wal"]].view()),
        data_device=ViewBlockDevice(views[secondary_ids["stock-data"]].view()),
        bucket_count=bucket_count)
    orders_before_analytics = business.app.orders_accepted
    analytics_proc = sim.spawn(
        run_analytics(sim, sales_image, stock_image),
        name="demo-analytics")
    result.analytics = sim.run_until_complete(analytics_proc)
    result.orders_during_demo = business.app.orders_accepted

    # the business kept processing while analytics ran
    sim.run(until=sim.now + 0.25)
    result.orders_after_analytics = (business.app.orders_accepted
                                     - orders_before_analytics)
    load.drain()
    result.screens = {
        "main": system.main.console.screen_log(),
        "backup": system.backup.console.screen_log(),
    }
    return DemoEnvironment(sim=sim, system=system, business=business,
                           load=load, result=result)


def _secondary_volume_ids(system: TwoSiteSystem,
                          business: BusinessProcess) -> Dict[str, int]:
    """pvc name -> backup-array secondary volume id (via backup PVs)."""
    from repro.csi.replication_plugin import SECONDARY_PV_LABEL
    from repro.platform.resources import PersistentVolume
    mapping: Dict[str, int] = {}
    for pv in system.backup.api.list(PersistentVolume):
        pvc_name = pv.meta.labels.get("replication.hitachi.com/pvc")
        if pvc_name and SECONDARY_PV_LABEL in pv.meta.labels:
            mapping[pvc_name] = system.backup.array.parse_handle(
                pv.spec.csi.volume_handle)
    return mapping


def _check_snapshot_cut(system: TwoSiteSystem, business: BusinessProcess,
                        group: SnapshotGroup,
                        secondary_ids: Dict[str, int]) -> StorageCutReport:
    """Prefix-check the frozen snapshot images against the main history."""
    frozen = group.frozen_versions()
    image_versions = {}
    for pvc_name, svol_id in secondary_ids.items():
        pvol_id = business.volume_ids[pvc_name]
        image_versions[pvol_id] = frozen.get(svol_id, {})
    return check_storage_cut(system.main.array.history, image_versions)
