"""Deploying the business process onto the platform (§II's use case).

The demonstration's namespace contains the transactional application and
two databases.  :func:`deploy_business_process` creates the namespace,
its four claims (each database has a WAL volume and a data volume), the
application pods, waits for provisioning, and opens the MiniDBs over the
provisioned array volumes — returning a :class:`BusinessProcess` handle
the experiments drive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.apps.ecommerce import (CatalogItem, EcommerceApp, SALES, STOCK,
                                  default_catalog)
from repro.apps.minidb.device import ArrayBlockDevice
from repro.apps.minidb.engine import MiniDB
from repro.csi.storage_plugin import resolve_bound_volume
from repro.platform.resources import (PersistentVolumeClaim, Pod)
from repro.scenarios.builders import (DEFAULT_STORAGE_CLASS, Site,
                                      TwoSiteSystem)

#: the four claims of the business process: name -> (db, role)
PVC_LAYOUT: Dict[str, tuple] = {
    "sales-wal": (SALES, "wal"),
    "sales-data": (SALES, "data"),
    "stock-wal": (STOCK, "wal"),
    "stock-data": (STOCK, "data"),
}


@dataclass(frozen=True)
class BusinessConfig:
    """Sizing of the business process databases."""

    namespace: str = "order-processing"
    bucket_count: int = 32
    wal_blocks: int = 60_000
    data_blocks: int = 64
    item_count: int = 8
    initial_qty: int = 100_000
    #: per-key lock-wait bound for both databases (None = wait forever);
    #: crash-tolerant workloads set it so clients blocked behind an
    #: in-doubt transaction's locks can back out and drive resolution
    lock_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.data_blocks < self.bucket_count:
            raise ValueError(
                "data_blocks must cover bucket_count pages")


@dataclass
class BusinessProcess:
    """A deployed business process: namespace + databases + app."""

    namespace: str
    app: EcommerceApp
    sales_db: MiniDB
    stock_db: MiniDB
    config: BusinessConfig
    #: pvc name -> main-array volume id
    volume_ids: Dict[str, int]

    @property
    def pvc_names(self) -> List[str]:
        """The four claims, layout order."""
        return list(PVC_LAYOUT)

    def volume_id_for(self, pvc_name: str) -> int:
        """Main-array volume id behind one claim."""
        return self.volume_ids[pvc_name]


def deploy_business_process(system: TwoSiteSystem,
                            config: Optional[BusinessConfig] = None,
                            catalog: Optional[List[CatalogItem]] = None,
                            settle_time: float = 2.0) -> BusinessProcess:
    """Create and seed the §II business process on the main site.

    Drives the simulator until provisioning settles and the catalog is
    seeded; returns the live handle.
    """
    sim = system.sim
    config = config or BusinessConfig()
    site = system.main
    site.cluster.create_namespace(config.namespace)
    for pvc_name, (_db, role) in PVC_LAYOUT.items():
        pvc = PersistentVolumeClaim()
        pvc.meta.name = pvc_name
        pvc.meta.namespace = config.namespace
        pvc.meta.labels = {"app": "order-processing"}
        pvc.spec.storage_class = DEFAULT_STORAGE_CLASS
        pvc.spec.capacity_blocks = (config.wal_blocks if role == "wal"
                                    else config.data_blocks)
        site.api.create(pvc)
    for pod_name, image, pvcs in (
            ("transaction-app", "order-app:1.0", list(PVC_LAYOUT)),
            ("sales-db", "minidb:1.0", ["sales-wal", "sales-data"]),
            ("stock-db", "minidb:1.0", ["stock-wal", "stock-data"])):
        pod = Pod()
        pod.meta.name = pod_name
        pod.meta.namespace = config.namespace
        pod.spec.image = image
        pod.spec.pvc_names = pvcs
        site.api.create(pod)
    sim.run(until=sim.now + settle_time)

    volume_ids: Dict[str, int] = {}
    devices: Dict[str, ArrayBlockDevice] = {}
    for pvc_name in PVC_LAYOUT:
        pv = resolve_bound_volume(site.api, config.namespace, pvc_name)
        volume_id = site.array.parse_handle(pv.spec.csi.volume_handle)
        volume_ids[pvc_name] = volume_id
        devices[pvc_name] = ArrayBlockDevice(site.array, volume_id)

    sales_db = MiniDB(sim, SALES, wal_device=devices["sales-wal"],
                      data_device=devices["sales-data"],
                      bucket_count=config.bucket_count,
                      lock_timeout=config.lock_timeout)
    stock_db = MiniDB(sim, STOCK, wal_device=devices["stock-wal"],
                      data_device=devices["stock-data"],
                      bucket_count=config.bucket_count,
                      lock_timeout=config.lock_timeout)
    catalog = catalog or default_catalog(config.item_count,
                                         config.initial_qty)
    app = EcommerceApp(sales_db, stock_db, catalog)
    sim.run_until_complete(sim.spawn(app.seed(), name="seed-catalog"))
    return BusinessProcess(namespace=config.namespace, app=app,
                           sales_db=sales_db, stock_db=stock_db,
                           config=config, volume_ids=volume_ids)


def pod_phases(site: Site, namespace: str) -> Dict[str, str]:
    """Pod name -> phase for a namespace (demo display helper)."""
    return {pod.meta.name: pod.status.phase
            for pod in site.api.list(Pod, namespace=namespace)}
