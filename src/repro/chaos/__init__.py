"""Deterministic chaos engineering for the backup reproduction.

Public surface:

* :func:`run_campaign` — build a protected system, run a seeded fault
  campaign, return its :class:`ChaosReport` (the ``repro chaos`` CLI);
* :func:`run_campaigns` — one campaign per seed, optionally sharded
  across worker processes (``repro chaos --seeds N --jobs M``) with a
  deterministic seed-ordered merge;
* :func:`build_chaos_environment`, :class:`ChaosEngine`,
  :class:`ChaosEnvironment`, :class:`ChaosWorkload` — the pieces, for
  custom harnesses and tests;
* :class:`FaultPlan`, :func:`build_plan`, :data:`PRESETS` — fault
  schedules (hand-written or seed-generated);
* the data-plane fault catalog (:class:`LinkPartition`,
  :class:`LinkBrownout`, :class:`ArrayCrash`, :class:`JournalSqueeze`,
  :class:`SlowDisk`, :class:`WireCorruption`,
  :class:`JournalCorruption`);
* the control-plane fault catalog (:class:`ApiServerOutage`,
  :class:`ApiFlake`, :class:`ControllerCrash`, :class:`CsiRpcFlake`,
  :class:`WatchDrop`) behind the ``control`` preset;
* :class:`InvariantMonitor`, :class:`MonitorConfig`,
  :class:`ChaosViolation` — the always-on invariant checks;
* :func:`run_incident`, :func:`build_incident_plan`,
  :class:`IncidentRun` — the canonical deterministic SLO incident
  (``repro incident`` / ``repro slo`` CLIs): fault → alert fired →
  suspension → resync → alert resolved, with a rendered postmortem.
"""

from repro.chaos.control import (ApiFlake, ApiServerOutage,
                                 ControllerCrash, CsiRpcFlake, WatchDrop)
from repro.chaos.engine import (ChaosEngine, ChaosEnvironment, ChaosReport,
                                ChaosWorkload, IncidentRun,
                                build_chaos_environment,
                                build_incident_plan, run_campaign,
                                run_campaigns, run_incident)
from repro.chaos.faults import (ArrayCrash, Fault, FaultEvent,
                                JournalCorruption, JournalSqueeze,
                                LinkBrownout, LinkPartition, SlowDisk,
                                WireCorruption)
from repro.chaos.invariants import (ChaosViolation, InvariantMonitor,
                                    MonitorConfig)
from repro.chaos.plan import (CONTROL, PRESETS, QUICK, SOAK,
                              CampaignPreset, FaultPlan, build_plan)

__all__ = [
    "ApiFlake",
    "ApiServerOutage",
    "ArrayCrash",
    "CONTROL",
    "CampaignPreset",
    "ControllerCrash",
    "CsiRpcFlake",
    "ChaosEngine",
    "ChaosEnvironment",
    "ChaosReport",
    "ChaosViolation",
    "ChaosWorkload",
    "Fault",
    "FaultEvent",
    "FaultPlan",
    "IncidentRun",
    "InvariantMonitor",
    "JournalCorruption",
    "JournalSqueeze",
    "LinkBrownout",
    "LinkPartition",
    "MonitorConfig",
    "PRESETS",
    "QUICK",
    "SOAK",
    "SlowDisk",
    "WatchDrop",
    "WireCorruption",
    "build_chaos_environment",
    "build_incident_plan",
    "build_plan",
    "run_campaign",
    "run_campaigns",
    "run_incident",
]
