"""Deterministic chaos engineering for the backup reproduction.

Public surface:

* :func:`run_campaign` — build a protected system, run a seeded fault
  campaign, return its :class:`ChaosReport` (the ``repro chaos`` CLI);
* :func:`run_campaigns` — one campaign per seed, optionally sharded
  across worker processes (``repro chaos --seeds N --jobs M``) with a
  deterministic seed-ordered merge;
* :func:`build_chaos_environment`, :class:`ChaosEngine`,
  :class:`ChaosEnvironment`, :class:`ChaosWorkload` — the pieces, for
  custom harnesses and tests;
* :class:`FaultPlan`, :func:`build_plan`, :data:`PRESETS` — fault
  schedules (hand-written or seed-generated);
* the fault catalog (:class:`LinkPartition`, :class:`LinkBrownout`,
  :class:`ArrayCrash`, :class:`JournalSqueeze`, :class:`SlowDisk`,
  :class:`WireCorruption`, :class:`JournalCorruption`);
* :class:`InvariantMonitor`, :class:`MonitorConfig`,
  :class:`ChaosViolation` — the always-on invariant checks.
"""

from repro.chaos.engine import (ChaosEngine, ChaosEnvironment, ChaosReport,
                                ChaosWorkload, build_chaos_environment,
                                run_campaign, run_campaigns)
from repro.chaos.faults import (ArrayCrash, Fault, FaultEvent,
                                JournalCorruption, JournalSqueeze,
                                LinkBrownout, LinkPartition, SlowDisk,
                                WireCorruption)
from repro.chaos.invariants import (ChaosViolation, InvariantMonitor,
                                    MonitorConfig)
from repro.chaos.plan import (PRESETS, QUICK, SOAK, CampaignPreset,
                              FaultPlan, build_plan)

__all__ = [
    "ArrayCrash",
    "CampaignPreset",
    "ChaosEngine",
    "ChaosEnvironment",
    "ChaosReport",
    "ChaosViolation",
    "ChaosWorkload",
    "Fault",
    "FaultEvent",
    "FaultPlan",
    "InvariantMonitor",
    "JournalCorruption",
    "JournalSqueeze",
    "LinkBrownout",
    "LinkPartition",
    "MonitorConfig",
    "PRESETS",
    "QUICK",
    "SOAK",
    "SlowDisk",
    "WireCorruption",
    "build_chaos_environment",
    "build_plan",
    "run_campaign",
    "run_campaigns",
]
