"""Control-plane chaos faults: API server, controllers, CSI RPCs.

The data-plane catalog (:mod:`repro.chaos.faults`) breaks links,
arrays and journals; this module breaks the *orchestration* layer the
paper's no-storage-expertise workflow depends on.  The design claim
under test is different: the business and the replication pipeline run
entirely on the arrays, so killing the control plane must never stall
an order or lose a byte — it may only delay reconciliation, and once
the control plane heals every custom resource must converge back to
``Paired`` with exactly one pair per volume (the reconcile-convergence
and exactly-once-pairing invariants).

* :class:`ApiServerOutage` — every API call fails with
  :class:`~repro.errors.UnavailableError` for a window (fail-closed:
  the server rejects before touching state);
* :class:`ApiFlake` — seed-deterministic injected flakes and write
  conflicts on a fraction of calls;
* :class:`ControllerCrash` — every controller worker dies mid-
  reconcile; heal restarts them and the list+watch replay requeues all
  keys (level-triggered recovery);
* :class:`CsiRpcFlake` — CSI management RPCs time out *after* the
  array may have executed them (ambiguous outcome); only probe-based
  idempotent retries survive without orphaned volumes;
* :class:`WatchDrop` — all watch streams are severed at once, forcing
  every controller through its list-resync path.

All faults are ``local = False``: a control-plane fault that slows the
business would itself be the bug the invariants exist to catch.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.chaos.faults import Fault
from repro.platform.apiserver import ApiFaultInjector

if TYPE_CHECKING:  # pragma: no cover
    from repro.chaos.engine import ChaosEnvironment


def api_injector(env: "ChaosEnvironment") -> ApiFaultInjector:
    """The main cluster's API fault injector, installed on first use."""
    api = env.system.main.cluster.api
    if api.chaos is None:
        api.chaos = ApiFaultInjector(env.sim)
    return api.chaos


class ApiServerOutage(Fault):
    """Hard API-server outage: every call raises ``UnavailableError``.

    Fail-closed by construction — the injector rejects requests at the
    admission point, before any state is touched — so there is never an
    ambiguous half-applied write to reason about.  Controllers back off
    and retry; watches stay severed from new events only in the sense
    that nobody can mutate state through a down server.
    """

    kind = "api-outage"

    def inject(self, env: "ChaosEnvironment") -> str:
        api_injector(env).outage = True
        return "api server rejecting every call (503)"

    def heal(self, env: "ChaosEnvironment") -> str:
        api_injector(env).outage = False
        return "api server serving again"


class ApiFlake(Fault):
    """Probabilistic API failures: transient 503s plus write conflicts.

    Models a flaky server *and* stale-cache optimistic-concurrency
    races: each call independently flakes with ``flake_probability``;
    each mutating call additionally conflicts with
    ``conflict_probability``.  All draws come from the injector's named
    RNG stream, so a seed fully determines which calls fail.
    """

    kind = "api-flake"

    def __init__(self, at: float, duration: float,
                 flake_probability: float = 0.25,
                 conflict_probability: float = 0.15) -> None:
        super().__init__(at, duration)
        for name, value in (("flake_probability", flake_probability),
                            ("conflict_probability", conflict_probability)):
            if not 0 <= value <= 1:
                raise ValueError(f"{name} must be in [0, 1]: {value}")
        self.flake_probability = flake_probability
        self.conflict_probability = conflict_probability

    def inject(self, env: "ChaosEnvironment") -> str:
        injector = api_injector(env)
        injector.flake_probability = self.flake_probability
        injector.conflict_probability = self.conflict_probability
        return (f"{self.flake_probability:.0%} flakes, "
                f"{self.conflict_probability:.0%} write conflicts")

    def heal(self, env: "ChaosEnvironment") -> str:
        injector = api_injector(env)
        injector.flake_probability = 0.0
        injector.conflict_probability = 0.0
        return f"api stable again ({injector.injected} faults injected)"


class ControllerCrash(Fault):
    """Every controller on the main cluster dies mid-reconcile.

    The crash interrupts the in-flight reconcile at its current wait
    point and kills the watch pumps and worker; pending queue items are
    lost with the process, exactly like an OOM-killed manager pod.
    Healing restarts the controllers: the fresh list+watch replays an
    ADDED event for every live object, which requeues every key — the
    level-triggered recovery that makes losing the queue safe.
    """

    kind = "controller-crash"

    def inject(self, env: "ChaosEnvironment") -> str:
        manager = env.system.main.cluster.manager
        manager.crash_all("chaos-controller-crash")
        return f"{len(manager.controllers)} controllers killed"

    def heal(self, env: "ChaosEnvironment") -> str:
        manager = env.system.main.cluster.manager
        manager.restart_all()
        return (f"{len(manager.controllers)} controllers restarted, "
                "all keys requeued via list+watch")


class CsiRpcFlake(Fault):
    """CSI management RPCs time out with ambiguous outcomes.

    With probability ``timeout_probability`` an RPC raises
    :class:`~repro.errors.RpcTimeoutError` — and with probability
    ``effect_probability`` the array *had already executed* the command
    when the deadline passed.  Blind retries of non-idempotent commands
    (volume create, pair create) would leak orphans; the replication
    plugin's probe-before-retry discipline is what the exactly-once-
    pairing invariant verifies here.
    """

    kind = "csi-rpc-flake"

    def __init__(self, at: float, duration: float,
                 timeout_probability: float = 0.35,
                 effect_probability: float = 0.6) -> None:
        super().__init__(at, duration)
        for name, value in (("timeout_probability", timeout_probability),
                            ("effect_probability", effect_probability)):
            if not 0 <= value <= 1:
                raise ValueError(f"{name} must be in [0, 1]: {value}")
        self.timeout_probability = timeout_probability
        self.effect_probability = effect_probability

    def inject(self, env: "ChaosEnvironment") -> str:
        injector = env.system.replication_context.rpc.injector
        injector.timeout_probability = self.timeout_probability
        injector.effect_probability = self.effect_probability
        return (f"{self.timeout_probability:.0%} RPC timeouts, "
                f"{self.effect_probability:.0%} applied before deadline")

    def heal(self, env: "ChaosEnvironment") -> str:
        injector = env.system.replication_context.rpc.injector
        injected = injector.injected
        injector.clear()
        return f"csi rpc channel stable ({injected} timeouts injected)"


class WatchDrop(Fault):
    """Sever every watch stream at once (instantaneous fault).

    Each controller pump observes the close sentinel — after draining
    any events already queued, so nothing is lost — and re-opens its
    watch, whose list replay resynchronises the full state.  The
    ``repro_watch_resyncs_total`` metric counts the recoveries.
    """

    kind = "watch-drop"

    def __init__(self, at: float, duration: float = 0.0) -> None:
        # severing a stream is a point event; the outage *is* the heal
        super().__init__(at, 0.0)

    def inject(self, env: "ChaosEnvironment") -> str:
        dropped = env.system.main.cluster.api.drop_watches()
        return f"{dropped} watch streams severed"

    def heal(self, env: "ChaosEnvironment") -> str:
        return "controllers resyncing via list+watch"
