"""The chaos engine: deterministic fault campaigns over a live system.

:func:`run_campaign` is the one-call entry point (the ``repro chaos``
CLI wraps it): build a protected two-site business system, generate a
seed-deterministic :class:`~repro.chaos.plan.FaultPlan`, drive a
crash-tolerant order workload through the fault storm with the
:class:`~repro.chaos.invariants.InvariantMonitor` watching, wait for the
self-healing pipeline to converge, run the end-of-campaign integrity
checks, and (optionally) prove the surviving backup still fails over to
a consistent image.

Everything — the fault schedule, the workload's order stream, the wire
corruption draws — comes from named RNG streams of one seeded
simulator, so two runs with the same seed produce byte-identical
:class:`ChaosReport` digests.  Reproduce any failure with::

    python -m repro.cli chaos --campaign quick --seed <seed>
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Generator, List, Optional, Sequence, Set, Tuple

from repro.chaos.faults import (Fault, FaultEvent, JournalSqueeze,
                                LinkPartition)
from repro.chaos.invariants import (ChaosViolation, InvariantMonitor,
                                    MonitorConfig)
from repro.chaos.plan import PRESETS, FaultPlan, build_plan
from repro.errors import CollapsedBackupError, ReproError
from repro.operator import TAG_CONSISTENT, TAG_KEY, \
    install_namespace_operator
from repro.recovery import fail_and_recover
from repro.scenarios import (BusinessConfig, BusinessProcess, SystemConfig,
                             TwoSiteSystem, build_system,
                             deploy_business_process)
from repro.simulation import Simulator
from repro.storage import AdcConfig, ArrayConfig, JournalGroup
from repro.telemetry.incident import IncidentReport, build_incident
from repro.telemetry.slo import AlertTransition, SloEngine, standard_rules

#: pause a workload client takes after an order attempt fails because a
#: fault (array crash) rejected its I/O, before retrying
RETRY_DELAY = 0.004
#: pacing pause when an iteration consumed no simulated time
ZERO_PROGRESS_PACING = 0.0005


class ChaosEnvironment:
    """The system under test plus the campaign's shared fault state."""

    def __init__(self, sim: Simulator, system: TwoSiteSystem,
                 business: BusinessProcess, group: JournalGroup) -> None:
        self.sim = sim
        self.system = system
        self.business = business
        self.group = group
        #: payloads corrupted by faults; the zero-silent-corruption
        #: invariant proves none of them reached a secondary volume
        self.corrupted_payloads: Set[bytes] = set()
        #: kind -> number of currently-active faults of that kind
        self.active_faults: Dict[str, int] = {}
        self._local_active = 0
        #: bumps on every local-fault inject *and* heal, so the workload
        #: can tell whether an order overlapped a local-fault window
        self.local_transitions = 0

    @property
    def local_fault_active(self) -> bool:
        """True while a business-I/O-path fault (crash, slow disk) is on."""
        return self._local_active > 0

    def note_corruption(self, payload: bytes) -> None:
        """Register a payload a fault corrupted (invariant bookkeeping)."""
        self.corrupted_payloads.add(bytes(payload))

    def fault_started(self, fault: Fault) -> None:
        self.active_faults[fault.kind] = \
            self.active_faults.get(fault.kind, 0) + 1
        if fault.local:
            self._local_active += 1
            self.local_transitions += 1

    def fault_healed(self, fault: Fault) -> None:
        remaining = self.active_faults.get(fault.kind, 0) - 1
        if remaining > 0:
            self.active_faults[fault.kind] = remaining
        else:
            self.active_faults.pop(fault.kind, None)
        if fault.local:
            self._local_active = max(0, self._local_active - 1)
            self.local_transitions += 1


def build_chaos_environment(seed: int,
                            adc_overrides: Optional[dict] = None,
                            wal_blocks: int = 40_000,
                            settle_time: float = 4.0,
                            ) -> ChaosEnvironment:
    """Build the protected two-site business system campaigns run on.

    Mirrors the repository's standard protected-namespace setup: build
    the Fig 1 topology with tight test-grade ADC loops, install the
    namespace operator, deploy the business process, tag its namespace
    ``ConsistentCopyToCloud`` and let the operator finish wiring the
    consistency group.
    """
    sim = Simulator(seed=seed)
    adc = AdcConfig(transfer_interval=0.001, transfer_batch=1024,
                    restore_interval=0.001, restore_batch=1024,
                    interval_jitter=0.0)
    config = SystemConfig(link_latency=0.002,
                          array=ArrayConfig(adc=adc),
                          command_latency=0.010)
    if adc_overrides:
        config = config.with_adc(**adc_overrides)
    system = build_system(sim, config)
    install_namespace_operator(system.main.cluster)
    business = deploy_business_process(
        system, BusinessConfig(wal_blocks=wal_blocks,
                               lock_timeout=0.25))
    system.main.console.tag_namespace(business.namespace, TAG_KEY,
                                      TAG_CONSISTENT)
    sim.run(until=sim.now + settle_time)
    group = system.main.array.journal_groups[
        f"jg-{business.namespace}-nso-{business.namespace}"]
    return ChaosEnvironment(sim=sim, system=system, business=business,
                            group=group)


class ChaosWorkload:
    """Crash-tolerant order load: clients retry through array faults.

    Unlike :class:`repro.apps.workload.BackgroundLoad` (whose clients
    die quietly when storage fails — the disaster model), chaos clients
    treat a failed order as a transient fault: pause briefly and retry,
    which is what a real retailer's retry-loop does during a storage
    blip.  Completions are recorded as ``(end_time, latency, exempt)``
    where ``exempt`` marks orders overlapping a local-fault window.
    """

    def __init__(self, env: ChaosEnvironment, client_count: int = 3,
                 rng_prefix: str = "chaos.load") -> None:
        self.env = env
        self.running = True
        self.completions: List[tuple] = []
        self.failed_attempts = 0
        self.last_progress = env.sim.now
        #: attempt id -> local-fault transition mark at attempt start
        self._inflight: Dict[int, int] = {}
        self._attempt_counter = itertools.count()
        sim = env.sim
        app = env.business.app
        item_ids = sorted(app.catalog)

        def client(index: int) -> Generator[object, object, None]:
            stream = f"{rng_prefix}.client{index}"
            while self.running:
                started = sim.now
                overlap_mark = env.local_transitions
                exempt_start = (env.local_fault_active
                                or self.residual_local)
                item_id = sim.rng.choice(stream, item_ids)
                qty = sim.rng.randint(stream, 1, 3)
                attempt = next(self._attempt_counter)
                self._inflight[attempt] = overlap_mark
                try:
                    # a crashed sibling may have left a decided-commit
                    # order holding stock locks; finish it first
                    if app.coordinator.in_doubt:
                        yield from app.resolve_in_doubt()
                    result = yield from app.place_order(item_id, qty)
                except ReproError:
                    self.failed_attempts += 1
                    del self._inflight[attempt]
                    yield sim.timeout(RETRY_DELAY)
                    continue
                del self._inflight[attempt]
                latency = sim.now - started
                exempt = (exempt_start or env.local_fault_active
                          or env.local_transitions != overlap_mark
                          or self.residual_local)
                self.completions.append((sim.now, latency, exempt))
                self.last_progress = sim.now
                del result
                if sim.now == started:
                    yield sim.timeout(ZERO_PROGRESS_PACING)

        self._processes = [
            sim.spawn(client(index), name=f"{rng_prefix}-{index}")
            for index in range(client_count)]

    @property
    def residual_local(self) -> bool:
        """True while an order that overlapped a local fault is still in
        flight.

        A transaction started under a crashed array or stalled disk can
        hold its stock locks well past the heal instant; until it
        drains, slow siblings are still the local fault's doing, not a
        replication-design failure.
        """
        mark = self.env.local_transitions
        return any(started_mark != mark
                   for started_mark in self._inflight.values())

    def touch_progress(self) -> None:
        """Reset the stall clock (local fault legitimately paused us)."""
        self.last_progress = self.env.sim.now

    def drain(self) -> None:
        """Stop the clients and wait out their in-flight orders."""
        self.running = False
        for process in self._processes:
            if process.alive:
                self.env.sim.run_until_complete(process)

    @property
    def orders_completed(self) -> int:
        """Orders that committed or were cleanly rejected."""
        return len(self.completions)


@dataclass
class ChaosReport:
    """Everything one campaign run produced."""

    preset: str
    seed: int
    started_at: float
    finished_at: float = 0.0
    timeline: List[FaultEvent] = field(default_factory=list)
    violations: List[ChaosViolation] = field(default_factory=list)
    violation_lines: List[str] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    orders_completed: int = 0
    failed_attempts: int = 0
    converged: bool = False
    converge_seconds: float = 0.0
    final_entry_lag: int = -1
    failover_checked: bool = False
    failover_consistent: bool = False
    lost_committed_orders: int = -1
    #: alert transitions the SLO engine observed during the campaign
    alerts: List[AlertTransition] = field(default_factory=list)
    #: auto-generated postmortem (set when any invariant was violated)
    postmortem: Optional[IncidentReport] = None

    @property
    def passed(self) -> bool:
        """True when every invariant held (the CLI's exit status)."""
        if self.violations or not self.converged:
            return False
        if self.failover_checked and (
                not self.failover_consistent
                or self.lost_committed_orders != 0):
            return False
        return True

    @property
    def digest(self) -> str:
        """Deterministic fingerprint of the run (same seed ⇒ same digest)."""
        hasher = hashlib.sha256()
        for event in self.timeline:
            hasher.update(
                f"{event.time:.6f}|{event.kind}|{event.action}\n".encode())
        for key in sorted(self.counters):
            hasher.update(f"{key}={self.counters[key]}\n".encode())
        for transition in self.alerts:
            hasher.update(f"{transition.time:.6f}|{transition.rule}"
                          f"|{transition.state}\n".encode())
        hasher.update(
            f"orders={self.orders_completed} failed={self.failed_attempts} "
            f"lag={self.final_entry_lag} "
            f"violations={len(self.violations)}\n".encode())
        return hasher.hexdigest()[:16]

    def render(self) -> str:
        """Human-readable campaign summary."""
        lines = [
            f"chaos campaign {self.preset!r} seed={self.seed}: "
            f"{'PASS' if self.passed else 'FAIL'}",
            f"  simulated time      : {self.started_at:.3f}s -> "
            f"{self.finished_at:.3f}s",
            f"  orders completed    : {self.orders_completed} "
            f"({self.failed_attempts} attempts retried under faults)",
            f"  converged after heal: "
            f"{'yes' if self.converged else 'NO'} "
            f"({self.converge_seconds:.3f}s, final lag "
            f"{self.final_entry_lag})",
        ]
        if self.failover_checked:
            lines.append(
                f"  failover            : "
                f"{'consistent' if self.failover_consistent else 'FAILED'}"
                f", lost committed orders {self.lost_committed_orders}")
        lines.append("  fault timeline:")
        lines.extend(f"    {event}" for event in self.timeline)
        if self.alerts:
            lines.append("  alert transitions:")
            lines.extend(f"    {transition}"
                         for transition in self.alerts)
        else:
            lines.append("  alert transitions: none")
        lines.append("  counters:")
        for key in sorted(self.counters):
            lines.append(f"    {key:44} {self.counters[key]}")
        if self.violation_lines:
            lines.append("  invariant violations:")
            lines.extend(f"    {line}" for line in self.violation_lines)
        else:
            lines.append("  invariant violations: none")
        lines.append(f"  digest: {self.digest}")
        return "\n".join(lines)


class ChaosEngine:
    """Runs one fault plan against one environment."""

    def __init__(self, env: ChaosEnvironment, plan: FaultPlan,
                 monitor_config: MonitorConfig = MonitorConfig(),
                 client_count: int = 3) -> None:
        self.env = env
        self.plan = plan
        self.monitor_config = monitor_config
        self.client_count = client_count
        self.timeline: List[FaultEvent] = []
        #: the campaign's SLO engine (built in :meth:`run`)
        self.slo: Optional[SloEngine] = None

    # -- fault driving -------------------------------------------------------

    def _record(self, fault: Fault, action: str, detail: str) -> None:
        self.timeline.append(FaultEvent(
            time=self.env.sim.now, kind=fault.kind, action=action,
            detail=detail))
        self.env.sim.telemetry.recorder.record(
            "fault", fault.kind, action=action, detail=detail)

    def _drive_fault(self, fault: Fault,
                     start: float) -> Generator[object, object, None]:
        sim = self.env.sim
        delay = start + fault.at - sim.now
        if delay > 0:
            yield sim.timeout(delay)
        detail = fault.inject(self.env)
        self.env.fault_started(fault)
        sim.telemetry.registry.counter(
            "repro_chaos_faults_total",
            help="Faults injected by chaos campaigns",
            fault=fault.kind).increment()
        self._record(fault, "inject", detail)
        if fault.duration > 0:
            yield sim.timeout(fault.duration)
        self._heal(fault)

    def _heal(self, fault: Fault) -> None:
        if fault.healed:
            return
        detail = fault.heal(self.env)
        fault.healed = True
        self.env.fault_healed(fault)
        self._record(fault, "heal", detail)

    # -- the campaign --------------------------------------------------------

    def run(self, verify_failover: bool = True) -> ChaosReport:
        """Run the full campaign; returns the report (never raises on
        invariant violations — they are *reported*)."""
        env = self.env
        sim = env.sim
        start = sim.now
        report = ChaosReport(preset=self.plan.name,
                             seed=sim.rng.master_seed,
                             started_at=start)
        workload = ChaosWorkload(env, client_count=self.client_count)
        monitor = InvariantMonitor(env, workload, self.monitor_config)
        monitor.start()
        self.slo = SloEngine(sim, standard_rules(
            env.system.main.array, env.group,
            env.business.app.coordinator))
        self.slo.start()
        for fault in self.plan.faults:
            sim.spawn(self._drive_fault(fault, start),
                      name=f"chaos-{fault.kind}")
        sim.run(until=start + self.plan.fault_window)
        # safety net for hand-built plans whose heals outlast the window
        for fault in self.plan.faults:
            if not fault.healed:
                self._heal(fault)
        workload.drain()
        monitor.stop()

        # every fault is healed, so any order still parked in doubt
        # (decided commit, Phase 2 cut short by a crash) must now finish
        app = env.business.app
        if app.coordinator.in_doubt:
            sim.run_until_complete(sim.spawn(
                app.resolve_in_doubt(), name="chaos-resolve-in-doubt"))

        # convergence: the self-healing pipeline must drain completely
        converge_start = sim.now
        converged = self._wait_for_convergence()
        report.converged = converged
        report.converge_seconds = sim.now - converge_start
        report.final_entry_lag = env.group.entry_lag
        if not converged:
            monitor.violations.append(ChaosViolation(
                time=sim.now, invariant="lag-convergence",
                detail=(f"entry lag {env.group.entry_lag} after "
                        f"{report.converge_seconds:.3f}s "
                        f"(bound {self.plan.converge_timeout:g}s, "
                        f"suspended={env.group.suspended})")))

        monitor.final_checks()
        self.slo.stop()

        if verify_failover:
            report.failover_checked = True
            try:
                promoted = fail_and_recover(env.system, env.business)
            except CollapsedBackupError as exc:
                report.failover_consistent = False
                monitor.violations.append(ChaosViolation(
                    time=sim.now, invariant="failover-consistency",
                    detail=str(exc)))
            else:
                business_report = promoted.report.business_report
                report.failover_consistent = business_report.consistent
                report.lost_committed_orders = \
                    promoted.report.lost_committed_orders
                if report.lost_committed_orders != 0:
                    monitor.violations.append(ChaosViolation(
                        time=sim.now, invariant="failover-rpo",
                        detail=(f"{report.lost_committed_orders} committed"
                                " orders lost despite a converged "
                                "pipeline")))

        report.finished_at = sim.now
        report.timeline = list(self.timeline)
        report.violations = list(monitor.violations)
        report.violation_lines = monitor.summary_lines()
        report.orders_completed = workload.orders_completed
        report.failed_attempts = workload.failed_attempts
        report.alerts = list(self.slo.transitions)
        report.counters = self._collect_counters()
        if report.violations:
            # auto-emit the postmortem while the evidence is still hot
            report.postmortem = self.build_postmortem(report)
        return report

    def build_postmortem(self, report: ChaosReport,
                         title: Optional[str] = None) -> IncidentReport:
        """Join this run's black box, spans, and metrics into a
        postmortem (see :mod:`repro.telemetry.incident`)."""
        notes = [f"campaign {'passed' if report.passed else 'FAILED'}: "
                 f"{report.orders_completed} orders completed, "
                 f"{len(report.violations)} invariant violations"]
        return build_incident(
            self.env.sim,
            title=title or (f"chaos campaign {report.preset!r} "
                            f"seed={report.seed}"),
            seed=report.seed,
            alerts=report.alerts or
            (self.slo.transitions if self.slo else []),
            window=(report.started_at, self.env.sim.now),
            notes=notes)

    def _wait_for_convergence(self) -> bool:
        env = self.env
        sim = env.sim
        deadline = sim.now + self.plan.converge_timeout
        while sim.now < deadline:
            if self._converged():
                return True
            env.group.ensure_repair()
            sim.run(until=min(deadline, sim.now + 0.02))
        return self._converged()

    def _converged(self) -> bool:
        """Data plane drained *and* the control plane caught up."""
        env = self.env
        dirty = sum(len(pair.dirty_blocks)
                    for pair in env.group.pairs.values())
        if env.group.suspended or dirty > 0 or env.group.entry_lag > 0:
            return False
        return self._control_plane_ready()

    def _control_plane_ready(self) -> bool:
        """True once the namespace's replication CR is ``Paired`` again.

        Control-plane faults (outages, crashes, dropped watches) leave
        the data plane replicating but the CR status stale; convergence
        includes the reconcilers catching back up — the reconcile-
        convergence invariant the monitor then re-asserts.
        """
        from repro.csi.crds import (STATE_PAIRED,
                                    ConsistencyGroupReplication)
        from repro.errors import ApiError
        env = self.env
        namespace = env.business.namespace
        try:
            cr = env.system.main.cluster.api.try_get(
                ConsistencyGroupReplication, f"nso-{namespace}",
                namespace)
        except ApiError:
            return False
        return cr is not None and cr.status.state == STATE_PAIRED

    def _collect_counters(self) -> Dict[str, int]:
        group = self.env.group
        counters: Dict[str, int] = {}
        injected = [event for event in self.timeline
                    if event.action == "inject"]
        counters["chaos_faults_total"] = len(injected)
        for event in injected:
            key = f"chaos_faults_total[{event.kind}]"
            counters[key] = counters.get(key, 0) + 1
        counters["integrity_corruptions_detected_total[wire]"] = \
            group.corruptions_wire.value
        counters["integrity_corruptions_detected_total[journal]"] = \
            group.corruptions_journal.value
        counters["repair_resyncs_total"] = group.repair_resyncs.value
        counters["journal_suspensions_total"] = group.suspensions.value
        counters["quarantined_entries"] = len(group.quarantine)
        counters["corrupted_payloads_injected"] = \
            len(self.env.corrupted_payloads)
        counters["transfers_dropped"] = \
            self.env.system.replication_link.transfers_dropped
        api = self.env.system.main.cluster.api
        if api.chaos is not None:
            counters["api_faults_injected_total"] = api.chaos.injected
        rpc = self.env.system.replication_context.rpc
        if rpc is not None and rpc.injector.injected:
            counters["csi_rpc_timeouts_injected_total"] = \
                rpc.injector.injected
        restarts = sum(
            controller.restart_count for controller in
            self.env.system.main.cluster.manager.controllers)
        if restarts:
            counters["controller_restarts_total"] = restarts
        # wire data reduction counters enter the digest only when the
        # engine is on, so default campaigns digest byte-identically to
        # pre-reduction builds
        reducer = group.reducer
        if reducer.enabled:
            counters["reduction_lookups"] = reducer.lookups
            counters["reduction_hits"] = reducer.hits
            counters["reduction_ref_fallbacks_total"] = \
                reducer.ref_fallbacks.value
            counters["reduction_cache_invalidations_total"] = \
                reducer.invalidations.value
            counters["reduction_shipments_discarded_total"] = \
                reducer.discarded_shipments.value
            counters["wire_bytes_saved_total[dedup]"] = \
                reducer.saved_dedup.value
            counters["wire_bytes_saved_total[compress]"] = \
                reducer.saved_compress.value
        # lane counters enter the digest only when the lane applier is
        # on (same rule as reduction): apply_lanes=1 campaigns digest
        # byte-identically to pre-lane builds
        if group.lane_conflicts is not None:
            counters["restore_lanes"] = group.config.apply_lanes
            counters["restore_lane_conflicts_total"] = \
                group.lane_conflicts.value
        if self.slo is not None:
            counters["alerts_fired_total"] = sum(
                1 for transition in self.slo.transitions
                if transition.state == "firing")
            counters["alerts_resolved_total"] = sum(
                1 for transition in self.slo.transitions
                if transition.state == "resolved")
        return counters


def run_campaign(seed: int, preset: str = "quick",
                 verify_failover: bool = True,
                 monitor_config: MonitorConfig = MonitorConfig(),
                 adc_overrides: Optional[dict] = None,
                 ) -> ChaosReport:
    """Build an environment, generate the preset's plan, run it.

    ``adc_overrides`` reconfigures the replication engine under test
    (e.g. ``coalesce_overwrites=True`` to storm the coalescing path).
    """
    try:
        campaign = PRESETS[preset]
    except KeyError:
        raise ValueError(
            f"unknown campaign preset {preset!r}; "
            f"choose from {sorted(PRESETS)}") from None
    env = build_chaos_environment(seed, adc_overrides=adc_overrides)
    plan = build_plan(env.sim, campaign)
    engine = ChaosEngine(env, plan, monitor_config=monitor_config)
    return engine.run(verify_failover=verify_failover)


def build_incident_plan() -> FaultPlan:
    """The canonical SLO-incident schedule: partition plus squeeze.

    Timing is chosen so the causal chain unfolds strictly in order at
    the chaos environment's scale: the partition (t=0.25) backs up the
    main journal until the RPO burn-rate alert fires (~t=0.33, once the
    long window's error budget burns); the squeeze (t=0.45) then
    overflows the journal and suspends the group; both heal by t=0.70,
    auto-repair resyncs, lag drains, and the alert resolves.
    """
    return FaultPlan(
        name="incident", fault_window=1.3, converge_timeout=4.0,
        faults=(LinkPartition(at=0.25, duration=0.45),
                JournalSqueeze(at=0.45, duration=0.20, slack=24)))


@dataclass
class IncidentRun:
    """One deterministic incident scenario, fully observed."""

    report: ChaosReport
    incident: IncidentReport
    engine: ChaosEngine


def run_incident(seed: int = 7, verify_failover: bool = False,
                 dump_dir: Optional[str] = None) -> IncidentRun:
    """Run the canonical incident scenario end to end.

    Builds the standard chaos environment, runs
    :func:`build_incident_plan` with the SLO engine and flight recorder
    watching, snapshots the black box, and renders the postmortem.
    Fully seed-deterministic: the same seed yields byte-identical
    postmortem JSON.  ``dump_dir`` additionally writes every
    flight-recorder snapshot to disk.
    """
    env = build_chaos_environment(seed)
    if dump_dir is not None:
        env.sim.telemetry.recorder.dump_dir = Path(dump_dir)
    engine = ChaosEngine(env, build_incident_plan())
    report = engine.run(verify_failover=verify_failover)
    # always leave a flight-recorder dump, violations or not
    env.sim.telemetry.recorder.snapshot("incident-campaign")
    incident = engine.build_postmortem(
        report, title=f"link-partition incident (seed {seed})")
    return IncidentRun(report=report, incident=incident, engine=engine)


def _campaign_cell(cell: Tuple[int, str, bool, Optional[dict]],
                   ) -> ChaosReport:
    """One seeded campaign (a :class:`ParallelRunner` cell)."""
    seed, preset, verify_failover, adc_overrides = cell
    return run_campaign(seed=seed, preset=preset,
                        verify_failover=verify_failover,
                        adc_overrides=adc_overrides)


def run_campaigns(seeds: Sequence[int], preset: str = "quick",
                  verify_failover: bool = True,
                  jobs: int = 1,
                  adc_overrides: Optional[dict] = None,
                  ) -> List[ChaosReport]:
    """One campaign per seed, optionally sharded across processes.

    Reports come back in ``seeds`` order regardless of ``jobs`` and
    each campaign is fully seed-deterministic (every campaign builds
    its own simulator; :class:`ChaosReport` is plain picklable data),
    so a parallel soak renders byte-identically to a serial one.
    ``adc_overrides`` reconfigures the replication engine under test in
    every cell, e.g. ``dict(transfer_window=4)`` to soak the pipelined
    transfer path.
    """
    from repro.bench.parallel import ParallelRunner

    if preset not in PRESETS:
        raise ValueError(
            f"unknown campaign preset {preset!r}; "
            f"choose from {sorted(PRESETS)}")
    cells = [(seed, preset, verify_failover, adc_overrides)
             for seed in seeds]
    return ParallelRunner(jobs).map(_campaign_cell, cells)
