"""Fault plans and randomized chaos campaigns.

A :class:`FaultPlan` is an explicit, ordered fault schedule — write one
by hand to reproduce an exact failure sequence.  A campaign *generates*
a plan from the simulator's seeded RNG streams: the same master seed
always yields the same plan, so every campaign run is reproducible with
``repro chaos --campaign <preset> --seed <n>``.

Three presets ship:

* ``quick``   — a short CI-sized data-plane storm (every fault kind
  once-ish, ~1.5 simulated seconds of faults);
* ``soak``    — a longer randomized data-plane storm for regression
  hunting;
* ``control`` — the control-plane storm (API outages/flakes,
  controller crashes, ambiguous CSI RPC timeouts, severed watches)
  that exercises the reconcile-convergence and exactly-once-pairing
  invariants while the data plane keeps replicating untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Tuple

from repro.chaos.control import (ApiFlake, ApiServerOutage,
                                 ControllerCrash, CsiRpcFlake, WatchDrop)
from repro.chaos.faults import (ArrayCrash, Fault, JournalCorruption,
                                JournalSqueeze, LinkBrownout,
                                LinkPartition, SlowDisk, WireCorruption)

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.kernel import Simulator

#: fault kinds a campaign may draw (weights tuned so the cheap network
#: faults dominate and the heavy local faults stay rare)
CAMPAIGN_KINDS: Tuple[Tuple[str, float], ...] = (
    ("link-partition", 3.0),
    ("link-brownout", 3.0),
    ("journal-squeeze", 2.0),
    ("wire-corruption", 2.0),
    ("journal-corruption", 2.0),
    ("array-crash", 1.0),
    ("slow-disk", 1.0),
)

#: fault kinds the control-plane campaign draws (the flaky faults
#: dominate; hard outages and crashes stay rarer, as in real clusters)
CONTROL_KINDS: Tuple[Tuple[str, float], ...] = (
    ("api-flake", 3.0),
    ("csi-rpc-flake", 3.0),
    ("watch-drop", 2.0),
    ("api-outage", 2.0),
    ("controller-crash", 2.0),
)


@dataclass(frozen=True)
class FaultPlan:
    """An explicit fault schedule plus campaign timing bounds."""

    name: str
    #: simulated seconds the engine runs with faults firing
    fault_window: float
    #: bound on lag convergence after the last heal (an invariant:
    #: exceeding it is reported as a violation)
    converge_timeout: float
    faults: Tuple[Fault, ...] = ()

    def describe(self) -> List[str]:
        """Human-readable schedule, one line per fault."""
        return [fault.describe()
                for fault in sorted(self.faults, key=lambda f: f.at)]


@dataclass(frozen=True)
class CampaignPreset:
    """Shape of a randomized campaign."""

    name: str
    fault_window: float
    converge_timeout: float
    random_faults: int
    #: kinds injected once each regardless of the random draw, so e.g.
    #: every quick campaign exercises the corruption-detection path
    required_kinds: Tuple[str, ...] = ()
    max_duration: float = 0.20
    min_duration: float = 0.04
    #: earliest fault start (the system needs a beat of healthy traffic)
    warmup: float = 0.10
    #: weighted fault-kind table random draws come from
    kinds: Tuple[Tuple[str, float], ...] = CAMPAIGN_KINDS


QUICK = CampaignPreset(
    name="quick", fault_window=1.6, converge_timeout=4.0,
    random_faults=4,
    required_kinds=("wire-corruption", "journal-corruption",
                    "link-partition", "journal-squeeze"))

SOAK = CampaignPreset(
    name="soak", fault_window=8.0, converge_timeout=6.0,
    random_faults=18,
    required_kinds=("wire-corruption", "journal-corruption",
                    "link-partition", "link-brownout",
                    "journal-squeeze", "array-crash", "slow-disk"))

CONTROL = CampaignPreset(
    name="control", fault_window=1.6, converge_timeout=4.0,
    random_faults=3,
    required_kinds=("api-outage", "api-flake", "controller-crash",
                    "csi-rpc-flake", "watch-drop"),
    kinds=CONTROL_KINDS)

PRESETS = {preset.name: preset for preset in (QUICK, SOAK, CONTROL)}


def _make_fault(kind: str, at: float, duration: float,
                sim: "Simulator") -> Fault:
    rng = sim.rng
    if kind == "link-partition":
        return LinkPartition(at, duration)
    if kind == "link-brownout":
        return LinkBrownout(
            at, duration,
            extra_latency=rng.uniform("chaos.plan.param", 0.002, 0.008),
            loss_fraction=rng.uniform("chaos.plan.param", 0.1, 0.4))
    if kind == "journal-squeeze":
        return JournalSqueeze(
            at, duration,
            slack=rng.randint("chaos.plan.param", 16, 48))
    if kind == "wire-corruption":
        return WireCorruption(
            at, duration,
            probability=rng.uniform("chaos.plan.param", 0.15, 0.5))
    if kind == "journal-corruption":
        return JournalCorruption(at)
    if kind == "array-crash":
        return ArrayCrash(at, duration)
    if kind == "slow-disk":
        return SlowDisk(
            at, duration,
            factor=rng.uniform("chaos.plan.param", 10.0, 60.0))
    if kind == "api-outage":
        return ApiServerOutage(at, duration)
    if kind == "api-flake":
        return ApiFlake(
            at, duration,
            flake_probability=rng.uniform("chaos.plan.param", 0.10, 0.35),
            conflict_probability=rng.uniform("chaos.plan.param",
                                             0.05, 0.25))
    if kind == "controller-crash":
        return ControllerCrash(at, duration)
    if kind == "csi-rpc-flake":
        return CsiRpcFlake(
            at, duration,
            timeout_probability=rng.uniform("chaos.plan.param",
                                            0.15, 0.45),
            effect_probability=rng.uniform("chaos.plan.param", 0.3, 0.9))
    if kind == "watch-drop":
        return WatchDrop(at)
    raise ValueError(f"unknown fault kind: {kind!r}")


def build_plan(sim: "Simulator", preset: CampaignPreset) -> FaultPlan:
    """Generate a deterministic plan from the simulator's RNG streams.

    Fault starts and durations draw from the ``chaos.plan`` streams;
    everything fits inside ``preset.fault_window`` so the convergence
    phase starts with every fault healed.
    """
    rng = sim.rng
    kinds = [kind for kind, _weight in preset.kinds]
    weights = [weight for _kind, weight in preset.kinds]
    total = sum(weights)

    def draw_kind() -> str:
        point = rng.uniform("chaos.plan.kind", 0.0, total)
        for kind, weight in preset.kinds:
            point -= weight
            if point <= 0:
                return kind
        return kinds[-1]

    chosen = list(preset.required_kinds)
    chosen.extend(draw_kind() for _ in range(preset.random_faults))
    faults: List[Fault] = []
    latest_start = preset.fault_window - preset.max_duration
    for kind in chosen:
        at = rng.uniform("chaos.plan.time", preset.warmup, latest_start)
        duration = rng.uniform("chaos.plan.time", preset.min_duration,
                               preset.max_duration)
        faults.append(_make_fault(kind, at, duration, sim))
    faults.sort(key=lambda fault: (fault.at, fault.kind))
    return FaultPlan(name=preset.name,
                     fault_window=preset.fault_window,
                     converge_timeout=preset.converge_timeout,
                     faults=tuple(faults))
