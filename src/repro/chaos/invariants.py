"""Always-on invariant monitoring for chaos campaigns.

The :class:`InvariantMonitor` runs as a simulation process alongside the
fault storm and watches the properties the paper's design promises even
under failure:

* **business-never-blocks** — order completions keep flowing and stay
  under a latency bound while any *replication-side* fault is active
  (partitions, brownouts, journal squeezes, corruption).  Local faults
  (array crash, slow disk) legitimately slow the business and are
  exempted while active.
* **zero-silent-corruption** — no payload corrupted by a fault is ever
  readable from a secondary volume: every corruption must be caught by
  the CRC32 end-to-end check and quarantined.
* **consistent-cut-when-healthy** — whenever the pipeline is fully
  drained (no suspension, no dirty blocks, zero entry lag), the backup
  image is a consistent prefix of the main site's ack history
  (:func:`repro.recovery.checker.check_storage_cut`).
* **lag-convergence** — after the last fault heals, ``entry_lag``
  returns to zero within the plan's ``converge_timeout`` (checked by the
  engine, reported through the same violation list).
* **reconcile-convergence** — after the control plane heals, the
  namespace's replication custom resource reaches ``Paired`` again:
  outages, crashes and dropped watches may delay reconciliation but
  never wedge it.
* **exactly-once-pairing** — no volume is ever replicated by more than
  one ADC pair, no secondary volume is orphaned (created by a timed-out
  RPC whose retry blindly created another), and no stray replication
  CRs exist beyond the operator's single owned resource.

Violations carry the simulated time and enough detail to replay the
failing seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, List

from repro.csi.crds import (STATE_PAIRED, ConsistencyGroupReplication,
                            VolumeReplication)
from repro.errors import ApiError
from repro.recovery.checker import (check_storage_cut,
                                    image_versions_from_volumes)

if TYPE_CHECKING:  # pragma: no cover
    from repro.chaos.engine import ChaosEnvironment, ChaosWorkload


@dataclass(frozen=True)
class ChaosViolation:
    """One broken invariant, timestamped in simulated time."""

    time: float
    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.time:9.4f}] {self.invariant}: {self.detail}"


@dataclass(frozen=True)
class MonitorConfig:
    """Bounds the monitor enforces."""

    #: sampling period of the watch process
    interval: float = 0.02
    #: max gap between order completions while no local fault is active
    stall_bound: float = 0.30
    #: max latency of one order while no local fault overlaps it
    latency_bound: float = 0.08
    #: violations recorded per invariant before summarising
    max_reports: int = 5


class InvariantMonitor:
    """Watches the chaos invariants; collects violations."""

    def __init__(self, env: "ChaosEnvironment",
                 workload: "ChaosWorkload",
                 config: MonitorConfig = MonitorConfig()) -> None:
        self.env = env
        self.workload = workload
        self.config = config
        self.violations: List[ChaosViolation] = []
        self._running = False
        self._checked_orders = 0
        self._stall_reported_at = -1.0
        self._suppressed = {"business-stalled": 0, "business-blocked": 0}

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Spawn the watch process."""
        self._running = True
        self.env.sim.spawn(self._watch(), name="chaos-invariant-monitor")

    def stop(self) -> None:
        """Stop the watch process at its next wake-up."""
        self._running = False

    def _record(self, invariant: str, detail: str) -> None:
        reported = sum(1 for v in self.violations
                       if v.invariant == invariant)
        if reported >= self.config.max_reports:
            if invariant in self._suppressed:
                self._suppressed[invariant] += 1
            return
        self.violations.append(ChaosViolation(
            time=self.env.sim.now, invariant=invariant, detail=detail))
        # an invariant firing is exactly what the black box exists for:
        # log it and freeze the ring before later events rotate the
        # evidence out of the buffer
        recorder = self.env.sim.telemetry.recorder
        recorder.record("invariant", invariant, detail=detail)
        recorder.snapshot(f"invariant-{invariant}")

    # -- the watch process ---------------------------------------------------

    def _watch(self) -> Generator[object, object, None]:
        sim = self.env.sim
        while self._running:
            yield sim.timeout(self.config.interval)
            if not self._running:
                return
            self._check_progress()
            self._check_order_latency()

    def _check_progress(self) -> None:
        if self.env.local_fault_active or self.workload.residual_local \
                or not self.workload.running:
            # a crashed array / stalled disk may legitimately pause the
            # business; restart the stall clock when it heals
            self._stall_reported_at = -1.0
            self.workload.touch_progress()
            return
        gap = self.env.sim.now - self.workload.last_progress
        if gap > self.config.stall_bound and \
                self._stall_reported_at != self.workload.last_progress:
            self._stall_reported_at = self.workload.last_progress
            self._record(
                "business-stalled",
                f"no order completed for {gap:.3f}s "
                f"(bound {self.config.stall_bound:g}s, active faults: "
                f"{sorted(self.env.active_faults) or 'none'})")

    def _check_order_latency(self) -> None:
        completions = self.workload.completions
        for end, latency, exempt in completions[self._checked_orders:]:
            if not exempt and latency > self.config.latency_bound:
                self._record(
                    "business-blocked",
                    f"order took {latency * 1e3:.1f}ms at t={end:.4f} "
                    f"(bound {self.config.latency_bound * 1e3:g}ms)")
        self._checked_orders = len(completions)

    # -- end-of-campaign checks ---------------------------------------------

    def final_checks(self) -> None:
        """Run the whole-campaign invariants (after convergence)."""
        self._check_order_latency()
        self._check_silent_corruption()
        self._check_consistent_cut()
        self._check_reconcile_convergence()
        self._check_exactly_once_pairing()

    def _check_silent_corruption(self) -> None:
        """No corrupted payload may be readable from any secondary."""
        corrupted = self.env.corrupted_payloads
        if not corrupted:
            return
        group = self.env.group
        leaked = 0
        for pair in group.pairs.values():
            for block, value in sorted(pair.svol.block_map().items()):
                if value.payload in corrupted:
                    leaked += 1
                    self._record(
                        "silent-corruption",
                        f"svol {pair.svol.volume_id} block {block} holds "
                        "a fault-corrupted payload")
        # Note: zero *detections* is not itself a violation — a torn
        # journal entry can race an in-flight restore window, in which
        # case the pristine in-memory copy applies and the corrupted
        # replacement is discarded unread.  The invariant is exactly
        # "no corrupted payload is readable at the backup", checked
        # above; were verification broken, corrupted payloads would
        # land on the svol and the scan would catch them.

    def _check_consistent_cut(self) -> None:
        """Healthy pipeline ⇒ the backup is a prefix of the ack order."""
        group = self.env.group
        dirty = sum(len(pair.dirty_blocks)
                    for pair in group.pairs.values())
        if group.suspended or group.entry_lag > 0 or dirty > 0:
            return  # engine reports non-convergence separately
        pair_map = {pair.pvol.volume_id: pair.svol
                    for pair in group.pairs.values()}
        report = check_storage_cut(
            self.env.system.main.array.history,
            image_versions_from_volumes(pair_map))
        if not report.consistent:
            self._record("consistent-cut",
                         f"storage-level prefix check failed: {report}")

    def _check_reconcile_convergence(self) -> None:
        """Healed control plane ⇒ the namespace's CR is ``Paired``."""
        namespace = self.env.business.namespace
        api = self.env.system.main.cluster.api
        try:
            cr = api.try_get(ConsistencyGroupReplication,
                             f"nso-{namespace}", namespace)
        except ApiError as exc:
            self._record("reconcile-convergence",
                         f"api still failing after heal: {exc}")
            return
        if cr is None:
            self._record("reconcile-convergence",
                         f"replication CR nso-{namespace} missing after "
                         "the control plane healed")
        elif cr.status.state != STATE_PAIRED:
            self._record(
                "reconcile-convergence",
                f"CR nso-{namespace} stuck in {cr.status.state!r} "
                f"({cr.status.message or 'no message'})")

    def _check_exactly_once_pairing(self) -> None:
        """No duplicate ADC pairs, no orphaned svols, no stray CRs."""
        main = self.env.system.main.array
        backup = self.env.system.backup.array
        pvol_pairs: dict = {}
        svol_ids = set()
        for group_id in sorted(main.journal_groups):
            group = main.journal_groups[group_id]
            for pair_id in sorted(group.pairs):
                pair = group.pairs[pair_id]
                pvol_pairs.setdefault(
                    pair.pvol.volume_id, []).append(pair_id)
                svol_ids.add(pair.svol.volume_id)
        for volume_id, pair_ids in sorted(pvol_pairs.items()):
            if len(pair_ids) > 1:
                self._record(
                    "exactly-once-pairing",
                    f"pvol {volume_id} replicated by "
                    f"{len(pair_ids)} pairs: {pair_ids}")
        # an svol-named backup volume no pair references is the debris
        # of a timed-out create whose retry did not probe first
        for volume in backup.list_volumes():
            if volume.name.endswith("-svol") \
                    and volume.volume_id not in svol_ids:
                self._record(
                    "exactly-once-pairing",
                    f"orphaned secondary volume {volume.volume_id} "
                    f"({volume.name!r}) not referenced by any pair")
        namespace = self.env.business.namespace
        api = self.env.system.main.cluster.api
        try:
            group_crs = api.list(ConsistencyGroupReplication,
                                 namespace=namespace)
            volume_crs = api.list(VolumeReplication, namespace=namespace)
        except ApiError as exc:
            self._record("exactly-once-pairing",
                         f"api still failing after heal: {exc}")
            return
        for cr in group_crs:
            if cr.meta.name != f"nso-{namespace}":
                self._record(
                    "exactly-once-pairing",
                    f"stray ConsistencyGroupReplication "
                    f"{cr.meta.name!r} beside the operator's own")
        for cr in volume_crs:
            self._record(
                "exactly-once-pairing",
                f"orphaned VolumeReplication {cr.meta.name!r} "
                "(the namespace operator never creates these)")

    # -- reporting -----------------------------------------------------------

    def summary_lines(self) -> List[str]:
        """Violations plus suppression counts, render-ready."""
        lines = [str(violation) for violation in self.violations]
        for invariant, count in sorted(self._suppressed.items()):
            if count:
                lines.append(
                    f"... and {count} more {invariant} violations")
        return lines
