"""The chaos fault catalog.

Each :class:`Fault` is a declarative description of one injected
failure: *when* it starts (``at``), *how long* it lasts (``duration``,
0 for instantaneous faults) and the pair of hooks the engine calls —
:meth:`Fault.inject` at the start instant and :meth:`Fault.heal` at the
end.  Faults act on a :class:`~repro.chaos.engine.ChaosEnvironment`
(two-site system + protected business process + its journal group) and
use only public chaos hooks of the substrates:

* link partitions — :meth:`SitePair.fail` / ``restore``;
* link brownouts — :meth:`NetworkLink.degrade` (extra latency + loss);
* array crash/restart — :meth:`StorageArray.fail` / ``repair`` plus
  :meth:`JournalGroup.restart`;
* journal capacity squeeze — shrinking ``capacity_entries``;
* slow disk — swapping the business volumes' :class:`MediaProfile`;
* payload corruption — the group's wire injector
  (:meth:`JournalGroup.install_wire_injector`) and
  :meth:`JournalVolume.corrupt_entry` (torn write in the journal
  medium).

Faults are deterministic: any randomness draws from named RNG streams of
the environment's simulator, so a seed fully determines a campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

from repro.storage.volume import MediaProfile

if TYPE_CHECKING:  # pragma: no cover
    from repro.chaos.engine import ChaosEnvironment
    from repro.storage.journal import JournalEntry


@dataclass(frozen=True)
class FaultEvent:
    """One entry of the campaign's fault timeline."""

    time: float
    kind: str
    action: str  # "inject" | "heal" | "skip"
    detail: str = ""

    def __str__(self) -> str:
        suffix = f" ({self.detail})" if self.detail else ""
        return f"[{self.time:9.4f}] {self.kind:18} {self.action}{suffix}"


class Fault:
    """Base class: one scheduled fault with inject/heal hooks.

    ``local`` marks faults that degrade the business I/O path itself
    (array crash, slow disk): the business-latency invariant is relaxed
    while such a fault is active, because slower *local* media slowing
    the business down is physics, not a replication-design failure.
    """

    kind = "fault"
    local = False

    def __init__(self, at: float, duration: float = 0.0) -> None:
        if at < 0:
            raise ValueError(f"fault start must be >= 0: {at}")
        if duration < 0:
            raise ValueError(f"fault duration must be >= 0: {duration}")
        self.at = at
        self.duration = duration
        self.healed = False

    def inject(self, env: "ChaosEnvironment") -> str:
        """Apply the fault; returns a detail string for the timeline."""
        raise NotImplementedError

    def heal(self, env: "ChaosEnvironment") -> str:
        """Undo the fault (idempotent); returns a timeline detail."""
        raise NotImplementedError

    def describe(self) -> str:
        """Plan-level description (used by ``repro chaos`` output)."""
        if self.duration > 0:
            return (f"{self.kind} at t+{self.at:.3f}s "
                    f"for {self.duration:.3f}s")
        return f"{self.kind} at t+{self.at:.3f}s"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"


class LinkPartition(Fault):
    """Hard partition of the inter-site network, both directions."""

    kind = "link-partition"

    def inject(self, env: "ChaosEnvironment") -> str:
        env.system.network.fail()
        return "inter-site network down"

    def heal(self, env: "ChaosEnvironment") -> str:
        env.system.network.restore()
        env.group.ensure_repair()
        return "inter-site network restored"


class LinkBrownout(Fault):
    """Degraded link: extra propagation latency plus transfer loss."""

    kind = "link-brownout"

    def __init__(self, at: float, duration: float,
                 extra_latency: float = 0.004,
                 loss_fraction: float = 0.25) -> None:
        super().__init__(at, duration)
        self.extra_latency = extra_latency
        self.loss_fraction = loss_fraction

    def inject(self, env: "ChaosEnvironment") -> str:
        env.system.network.degrade(extra_latency=self.extra_latency,
                                   loss_fraction=self.loss_fraction)
        return (f"+{self.extra_latency * 1e3:.1f}ms latency, "
                f"{self.loss_fraction:.0%} loss")

    def heal(self, env: "ChaosEnvironment") -> str:
        env.system.network.clear_degradation()
        env.group.ensure_repair()
        return "link back to nominal"


class ArrayCrash(Fault):
    """Main-array crash and restart.

    While crashed the array rejects all I/O (business writes fail and
    are retried by the crash-tolerant workload) and its transfer
    pipelines halt; on heal the array is repaired and the journal
    group's dead pipelines are restarted.
    """

    kind = "array-crash"
    local = True

    def inject(self, env: "ChaosEnvironment") -> str:
        env.system.main.array.fail()
        return f"array {env.system.main.array.serial} down"

    def heal(self, env: "ChaosEnvironment") -> str:
        env.system.main.array.repair()
        env.group.restart()
        env.group.ensure_repair()
        return f"array {env.system.main.array.serial} restarted"


class JournalSqueeze(Fault):
    """Shrink the main journal to near its current occupancy.

    Host writes soon overflow the squeezed journal, forcing the
    overflow → PSUE → dirty-tracking path; healing restores the original
    capacity and lets auto-repair resync the backlog.
    """

    kind = "journal-squeeze"

    def __init__(self, at: float, duration: float, slack: int = 24) -> None:
        super().__init__(at, duration)
        if slack < 1:
            raise ValueError(f"slack must be >= 1: {slack}")
        self.slack = slack
        self._original: Optional[int] = None

    def inject(self, env: "ChaosEnvironment") -> str:
        journal = env.group.main_journal
        self._original = journal.capacity_entries
        journal.capacity_entries = len(journal) + self.slack
        return (f"capacity {self._original} -> "
                f"{journal.capacity_entries} entries")

    def heal(self, env: "ChaosEnvironment") -> str:
        journal = env.group.main_journal
        if self._original is not None:
            # overlapping squeezes may have saved each other's squeezed
            # value; healing must only ever grow the capacity back
            journal.capacity_entries = max(journal.capacity_entries,
                                           self._original)
        env.group.ensure_repair()
        return f"capacity back to {journal.capacity_entries}"


class SlowDisk(Fault):
    """Media stall: the business volumes' latencies inflate by a factor."""

    kind = "slow-disk"
    local = True

    def __init__(self, at: float, duration: float,
                 factor: float = 40.0) -> None:
        super().__init__(at, duration)
        if factor < 1:
            raise ValueError(f"slow-disk factor must be >= 1: {factor}")
        self.factor = factor
        self._saved = {}

    def inject(self, env: "ChaosEnvironment") -> str:
        array = env.system.main.array
        for volume_id in env.business.volume_ids.values():
            volume = array.get_volume(volume_id)
            self._saved[volume_id] = volume.media
            volume.media = MediaProfile(
                read_latency=volume.media.read_latency * self.factor,
                write_latency=volume.media.write_latency * self.factor,
                cow_copy_latency=volume.media.cow_copy_latency
                * self.factor)
        return f"{len(self._saved)} volumes {self.factor:g}x slower"

    def heal(self, env: "ChaosEnvironment") -> str:
        array = env.system.main.array
        for volume_id, media in self._saved.items():
            volume = array.get_volume(volume_id)
            # overlapping slow-disk faults save each other's inflated
            # profiles; healing must only ever make media faster
            volume.media = MediaProfile(
                read_latency=min(volume.media.read_latency,
                                 media.read_latency),
                write_latency=min(volume.media.write_latency,
                                  media.write_latency),
                cow_copy_latency=min(volume.media.cow_copy_latency,
                                     media.cow_copy_latency))
        restored = len(self._saved)
        self._saved = {}
        return f"{restored} volumes back to nominal media"


class WireCorruption(Fault):
    """Bit flips on the replication wire.

    Installs a wire injector on the journal group: each entry crossing
    the link is corrupted with probability ``probability`` (one byte
    XORed, checksum left stale — the signature of in-flight bit rot).
    Every corrupted payload is registered with the environment so the
    zero-silent-corruption invariant can later prove none of them
    reached a secondary volume.
    """

    kind = "wire-corruption"

    def __init__(self, at: float, duration: float,
                 probability: float = 0.25) -> None:
        super().__init__(at, duration)
        if not 0 < probability <= 1:
            raise ValueError(
                f"probability must be in (0, 1]: {probability}")
        self.probability = probability

    def inject(self, env: "ChaosEnvironment") -> str:
        rng = env.sim.rng

        def injector(entry: "JournalEntry") -> "JournalEntry":
            if rng.uniform("chaos.wire", 0.0, 1.0) >= self.probability:
                return entry
            payload = entry.payload or b"\x00"
            index = rng.randint("chaos.wire", 0, len(payload) - 1)
            mutated = (payload[:index]
                       + bytes([payload[index] ^ 0x40])
                       + payload[index + 1:])
            env.note_corruption(mutated)
            return replace(entry, payload=mutated)

        env.group.install_wire_injector(injector)
        return f"{self.probability:.0%} of entries corrupted in flight"

    def heal(self, env: "ChaosEnvironment") -> str:
        env.group.install_wire_injector(None)
        env.group.ensure_repair()
        return "wire clean"


class JournalCorruption(Fault):
    """Torn write inside a journal volume (instantaneous fault).

    Corrupts the oldest retained entry of the backup journal (caught at
    restore-apply) or, when the backup journal is empty, of the main
    journal (caught at transfer-receive).  Either way the stale checksum
    makes the damage detectable end to end.
    """

    kind = "journal-corruption"

    def inject(self, env: "ChaosEnvironment") -> str:
        for journal, where in ((env.group.backup_journal, "backup"),
                               (env.group.main_journal, "main")):
            corrupted = journal.corrupt_entry(0)
            if corrupted is not None:
                env.note_corruption(corrupted.payload)
                return (f"torn write in {where} journal "
                        f"(seq={corrupted.sequence})")
        return "both journals empty; nothing to corrupt"

    def heal(self, env: "ChaosEnvironment") -> str:
        # nothing to undo: detection + quarantine + auto-repair handle it
        return "handled by integrity quarantine"
