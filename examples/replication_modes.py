#!/usr/bin/env python3
"""Replication modes and business latency (§I, §V).

The paper's motivating comparison: synchronous data copy protects
everything but makes every transaction pay the inter-site round trip;
asynchronous data copy decouples the ack from the network.  This example
prints the latency table for the same order workload under no backup,
SDC, and ADC + consistency group, at two inter-site distances.

Run:  python examples/replication_modes.py
"""

from repro.apps import WorkloadConfig, run_order_workload
from repro.bench import (MODE_ADC_CG, MODE_NONE, MODE_SDC,
                         build_business_system)


def measure(mode: str, rtt_ms: float, seed: int = 11):
    experiment = build_business_system(
        seed=seed, mode=mode, link_latency=rtt_ms / 2 / 1e3)
    result = run_order_workload(
        experiment.sim, experiment.business.app,
        WorkloadConfig(client_count=4, duration=1.0))
    summary = result.latency_summary().as_millis()
    return result.throughput, summary.p50, summary.p99


def main() -> None:
    print(f"{'mode':10} {'RTT(ms)':>8} {'orders/s':>10} "
          f"{'p50(ms)':>9} {'p99(ms)':>9}")
    for rtt_ms in (2.0, 20.0):
        for mode in (MODE_NONE, MODE_SDC, MODE_ADC_CG):
            throughput, p50, p99 = measure(mode, rtt_ms)
            print(f"{mode:10} {rtt_ms:8.1f} {throughput:10.1f} "
                  f"{p50:9.2f} {p99:9.2f}")
        print()
    print("ADC tracks the no-backup floor at any distance; SDC degrades "
          "with every millisecond of RTT - the 'system slowdown' the "
          "paper eliminates.")


if __name__ == "__main__":
    main()
