#!/usr/bin/env python3
"""Snapshot groups and backup-site analytics (§III-A2, §IV-C/D).

Shows why the demonstration runs analytics on *snapshot* volumes rather
than on the live mirror: while the restore pipeline is applying updates,
a multi-volume read of the live mirror is torn across time, but a
quiesced snapshot group freezes one consistent instant — and the
business at the main site never notices either way.

Run:  python examples/snapshot_analytics.py
"""

from repro.apps import BackgroundLoad, DatabaseImage, run_analytics
from repro.apps.minidb.device import ViewBlockDevice
from repro.errors import ReproError
from repro.operator import (TAG_CONSISTENT, TAG_KEY,
                            install_namespace_operator)
from repro.recovery.failover import FailoverManager
from repro.scenarios import (BusinessConfig, build_system,
                             deploy_business_process)
from repro.simulation import Simulator


def analytics_over(sim, business, devices, label):
    """One analytics job; reports the outcome (which may be torn)."""
    sales = DatabaseImage(wal_device=devices["sales-wal"],
                          data_device=devices["sales-data"],
                          bucket_count=business.config.bucket_count)
    stock = DatabaseImage(wal_device=devices["stock-wal"],
                          data_device=devices["stock-data"],
                          bucket_count=business.config.bucket_count)
    try:
        report = sim.run_until_complete(
            sim.spawn(run_analytics(sim, sales, stock), name=label))
    except ReproError as exc:
        print(f"  {label}: FAILED ({exc})")
        return
    print(f"  {label}: {report.order_count} orders, revenue "
          f"{report.total_revenue:.2f}, scan {report.scan_seconds * 1e3:.1f} ms")


def main() -> None:
    sim = Simulator(seed=42)
    system = build_system(sim)
    install_namespace_operator(system.main.cluster)
    business = deploy_business_process(
        system, BusinessConfig(wal_blocks=20_000))
    system.main.console.tag_namespace(business.namespace, TAG_KEY,
                                      TAG_CONSISTENT)
    sim.run(until=sim.now + 5.0)

    print("starting the transaction window (4 concurrent clients) ...")
    load = BackgroundLoad(sim, business.app, client_count=4)
    sim.run(until=sim.now + 0.5)

    secondary = FailoverManager(
        system, business.namespace).discover_secondary_volumes()
    backup_array = system.backup.array

    print("\nanalytics over the LIVE mirror volumes (repeat 3x while "
          "replication runs):")
    for attempt in range(3):
        devices = {pvc: ViewBlockDevice(backup_array.get_volume(svol_id))
                   for pvc, svol_id in secondary.items()}
        analytics_over(sim, business, devices, f"live run {attempt}")
        sim.run(until=sim.now + 0.1)
    print("  (answers drift run to run - the mirror moved underneath)")

    print("\ncutting a quiesced snapshot group (the Fig 5 operation) ...")
    group = sim.run_until_complete(sim.spawn(
        system.backup.console.storage_array_snapshot_group(
            backup_array, "analytics-group",
            [secondary[p] for p in sorted(secondary)])))
    views = group.by_base_volume()

    print("analytics over the SNAPSHOT volumes (repeat 3x):")
    for attempt in range(3):
        devices = {pvc: ViewBlockDevice(views[svol_id].view())
                   for pvc, svol_id in secondary.items()}
        analytics_over(sim, business, devices, f"snap run {attempt}")
        sim.run(until=sim.now + 0.1)
    print("  (identical answers - the snapshot is one frozen instant)")

    orders_before = business.app.orders_accepted
    sim.run(until=sim.now + 0.25)
    print(f"\nmain site processed {business.app.orders_accepted - orders_before} "
          "more orders while all of that analytics ran.")
    load.drain()


if __name__ == "__main__":
    main()
