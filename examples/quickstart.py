#!/usr/bin/env python3
"""Quickstart: protect a business process with one tag, survive a
disaster.

This walks the library's core loop in ~60 lines:

1. build the two-site system of the paper's Fig 1 (simulated storage
   arrays + container platforms + replication network);
2. deploy the e-commerce business process (two databases on four
   volumes) and the namespace operator;
3. protect it the paper's way — tag the namespace
   ``ConsistentCopyToCloud`` and let the operator configure the
   asynchronous data copy inside a consistency group;
4. process orders, kill the main site, fail over, and keep serving.

Run:  python examples/quickstart.py
"""

from repro.apps import issue_orders
from repro.operator import (TAG_CONSISTENT, TAG_KEY,
                            install_namespace_operator)
from repro.recovery import fail_and_recover
from repro.scenarios import BusinessConfig, build_system, \
    deploy_business_process
from repro.simulation import Simulator


def main() -> None:
    sim = Simulator(seed=7)
    system = build_system(sim)
    install_namespace_operator(system.main.cluster)

    print("deploying the business process (sales + stock databases) ...")
    business = deploy_business_process(
        system, BusinessConfig(wal_blocks=20_000))

    print("protecting it: one tag on the namespace ...")
    system.main.console.tag_namespace(
        business.namespace, TAG_KEY, TAG_CONSISTENT)
    sim.run(until=sim.now + 5.0)  # the operator + plugins do the rest

    pvs = system.backup.console.list_persistent_volumes()
    print(f"backup site now has {len(pvs)} mirrored persistent volumes")

    print("processing 50 orders ...")
    results = issue_orders(sim, business.app, 50)
    print(f"  committed: {sum(1 for r in results if r.accepted)}")
    mean_ms = sum(r.latency for r in results) / len(results) * 1e3
    print(f"  mean order latency: {mean_ms:.2f} ms "
          "(the ack never crosses the inter-site link)")

    print("disaster: failing the main site ...")
    promoted = fail_and_recover(system, business)
    report = promoted.report
    print(f"  recovered at backup in {report.rto_seconds * 1e3:.1f} ms "
          f"(simulated)")
    print(f"  committed orders lost: {report.lost_committed_orders} "
          "(bounded by the journal lag)")
    print(f"  backup image: {report.business_report}")

    print("serving from the backup site ...")
    more = issue_orders(sim, promoted.app, 10, rng_stream="after")
    print(f"  committed {sum(1 for r in more if r.accepted)} new orders "
          "-- business processing never needed the main site back")


if __name__ == "__main__":
    main()
