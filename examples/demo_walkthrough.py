#!/usr/bin/env python3
"""The full ICDE demonstration (§IV, Figs 2-6), scripted.

Replays the paper's three demo steps — backup configuration, snapshot
development, data analytics — and prints the two console operation logs
(the stand-in for the split demo screen of Fig 2) plus the assertable
transitions each figure shows.

Run:  python examples/demo_walkthrough.py
"""

from repro.scenarios import run_demo


def main() -> None:
    print("running the three-step demonstration ...\n")
    environment = run_demo(seed=2025)
    result = environment.result

    print("--- main-site console (left half of the demo screen) ---")
    print(result.screens["main"] or "(no operations)")
    print()
    print("--- backup-site console (right half of the demo screen) ---")
    print(result.screens["backup"] or "(no operations)")
    print()

    print("--- Fig 3 -> Fig 4: persistent volumes at the backup site ---")
    print(f"before tagging: {result.backup_pvs_before}")
    print(f"after tagging : {result.backup_pvs_after}")
    print()

    print("--- Fig 5: snapshot development ---")
    group = result.snapshot_group
    print(f"snapshot group members: {group.member_ids()}")
    print(f"storage-level verdict : {result.snapshot_cut}")
    print()

    print("--- Fig 6: data analytics over the snapshot volumes ---")
    report = result.analytics
    print(f"orders analysed : {report.order_count}")
    print(f"total revenue   : {report.total_revenue:.2f}")
    print(f"top seller      : {report.top_seller()}")
    print(f"remaining stock : {dict(sorted(report.remaining_stock.items()))}")
    print()

    print(result.summary())


if __name__ == "__main__":
    main()
