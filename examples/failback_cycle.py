#!/usr/bin/env python3
"""The full disaster-recovery cycle: failover, serve at backup, repair,
fail back — with snapshot rotation running throughout.

Extends the paper's demonstration past its final slide: what operations
actually look like in the weeks after the disaster.  Uses two of this
reproduction's extension features:

* :class:`repro.recovery.FailbackManager` — reverse replication and the
  switchover back to the repaired main site;
* :class:`repro.recovery.SnapshotScheduler` — consistent snapshot
  generations on a cadence, with retention.

Run:  python examples/failback_cycle.py
"""

from repro.apps import BackgroundLoad, issue_orders
from repro.operator import (TAG_CONSISTENT, TAG_KEY,
                            install_namespace_operator)
from repro.recovery import (FailbackManager, FailoverManager,
                            SnapshotScheduler, fail_and_recover)
from repro.scenarios import (BusinessConfig, build_system,
                             deploy_business_process)
from repro.simulation import Simulator


def main() -> None:
    sim = Simulator(seed=99)
    system = build_system(sim)
    install_namespace_operator(system.main.cluster)
    business = deploy_business_process(
        system, BusinessConfig(wal_blocks=40_000))
    system.main.console.tag_namespace(business.namespace, TAG_KEY,
                                      TAG_CONSISTENT)
    sim.run(until=sim.now + 5.0)
    secondary = FailoverManager(
        system, business.namespace).discover_secondary_volumes()

    print("normal operations: 40 orders at the main site ...")
    issue_orders(sim, business.app, 40)
    sim.run(until=sim.now + 1.0)

    print("DISASTER: main site lost; failing over ...")
    promoted = fail_and_recover(system, business)
    print(f"  serving at backup after "
          f"{promoted.report.rto_seconds * 1e3:.0f} ms; lost "
          f"{promoted.report.lost_committed_orders} committed orders")

    print("life at the backup site: orders + snapshot rotation ...")
    scheduler = SnapshotScheduler(
        system.backup.array, sorted(secondary.values()),
        interval=0.2, retain=3, name="backup-era")
    scheduler.start()
    load = BackgroundLoad(sim, promoted.app, client_count=3,
                          rng_prefix="backup-era")
    sim.run(until=sim.now + 0.8)
    print(f"  retained snapshot generations: "
          f"{[g.group_id for g in scheduler.generations]}")

    print("main site repaired; failing back (business keeps running) ...")
    manager = FailbackManager(
        system, secondary_volume_ids=secondary,
        original_volume_ids=business.volume_ids,
        bucket_count=business.config.bucket_count)
    result = sim.run_until_complete(sim.spawn(manager.execute(
        promoted.app, list(promoted.app.catalog.values()), load=load)))
    scheduler.stop()
    report = result.report
    print(f"  orders committed during the reverse copy: "
          f"{report.orders_during_reverse_copy}")
    print(f"  switchover quiesce window: "
          f"{report.downtime_seconds * 1e3:.0f} ms")
    print(f"  image at main: {report.business_report}")

    print("back home: 10 more orders at the repaired main site ...")
    after = issue_orders(sim, result.app, 10, rng_stream="back-home")
    print(f"  committed {sum(1 for r in after if r.accepted)}; total "
          f"orders recovered across the whole cycle: "
          f"{report.business_report.order_count}")


if __name__ == "__main__":
    main()
