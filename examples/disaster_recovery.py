#!/usr/bin/env python3
"""Disaster recovery with and without consistency groups (§I).

The paper's central warning: asynchronous data copy applied naively to a
multi-resource business process "can collapse backup data".  This
example makes the collapse visible: the same business, the same order
load, the same disaster instants — once protected with independent
per-volume journals, once with one consistency group.

Run:  python examples/disaster_recovery.py
"""

from repro.apps import BackgroundLoad
from repro.errors import CollapsedBackupError
from repro.operator import (TAG_CONSISTENT, TAG_INDEPENDENT, TAG_KEY,
                            install_namespace_operator)
from repro.recovery import fail_and_recover
from repro.scenarios import (BusinessConfig, SystemConfig,
                             build_system, deploy_business_process)
from repro.simulation import Simulator
from repro.storage import AdcConfig, ArrayConfig


def one_disaster(seed: int, tag: str) -> str:
    """Run load, kill the main site, attempt recovery; describe the outcome."""
    sim = Simulator(seed=seed)
    config = SystemConfig(
        link_latency=0.0025,
        array=ArrayConfig(adc=AdcConfig(
            transfer_interval=0.004, interval_jitter=0.6,
            restore_interval=0.001)),
        command_latency=0.010)
    system = build_system(sim, config)
    install_namespace_operator(system.main.cluster)
    business = deploy_business_process(
        system, BusinessConfig(wal_blocks=20_000))
    system.main.console.tag_namespace(business.namespace, TAG_KEY, tag)
    sim.run(until=sim.now + 4.0)
    load = BackgroundLoad(sim, business.app, client_count=6)
    sim.run(until=sim.now + 0.35)
    committed = load.committed_gtids
    try:
        promoted = fail_and_recover(system, business,
                                    expected_committed=committed)
    except CollapsedBackupError as exc:
        return f"COLLAPSED  ({exc})"
    report = promoted.report
    return (f"recovered  lost {report.lost_committed_orders} of "
            f"{len(committed)} committed orders, "
            f"RTO {report.rto_seconds * 1e3:.0f} ms")


def main() -> None:
    seeds = range(70, 76)
    print("=== ADC with independent per-volume journals (no consistency "
          "group) ===")
    for seed in seeds:
        print(f"disaster #{seed}: "
              f"{one_disaster(seed, TAG_INDEPENDENT)}")
    print()
    print("=== ADC inside one consistency group (the paper's system) ===")
    for seed in seeds:
        print(f"disaster #{seed}: "
              f"{one_disaster(seed, TAG_CONSISTENT)}")
    print()
    print("The consistency group turns 'sometimes unrecoverable' into "
          "'always recoverable with bounded, explainable loss'.")


if __name__ == "__main__":
    main()
