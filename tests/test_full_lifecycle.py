"""Capstone integration test: the complete operational story.

deploy → protect (one tag) → orders → maintenance suspend/resume →
snapshot rotation → analytics → disaster → failover → serve at backup →
repair → failback → serve at main again — with every consistency and
accounting invariant checked along the way.  If this test passes, every
subsystem of the reproduction interoperates.
"""

import pytest

from repro.apps import BackgroundLoad, issue_orders
from repro.csi import ConsistencyGroupReplication, STATE_PAIRED
from repro.operator import (ANNOTATION_STATE, NS_STATE_PROTECTED,
                            NS_STATE_SUSPENDED, TAG_CONSISTENT, TAG_KEY,
                            TAG_SUSPEND, install_namespace_operator)
from repro.platform import Namespace, PersistentVolume
from repro.recovery import (FailbackManager, FailoverManager,
                            SnapshotScheduler, fail_and_recover)
from repro.scenarios import (BusinessConfig, build_system,
                             deploy_business_process)
from repro.simulation import Simulator
from tests.csi.conftest import fast_system_config


@pytest.mark.filterwarnings("ignore")
def test_full_lifecycle():
    sim = Simulator(seed=777)
    system = build_system(sim, fast_system_config())
    install_namespace_operator(system.main.cluster)

    # --- deploy and protect --------------------------------------------------
    business = deploy_business_process(
        system, BusinessConfig(wal_blocks=40_000))
    system.main.console.tag_namespace(business.namespace, TAG_KEY,
                                      TAG_CONSISTENT)
    sim.run(until=sim.now + 4.0)
    namespace = system.main.api.get(Namespace, business.namespace)
    assert namespace.meta.annotations[ANNOTATION_STATE] == \
        NS_STATE_PROTECTED
    assert len(system.backup.api.list(PersistentVolume)) == 4
    secondary = FailoverManager(
        system, business.namespace).discover_secondary_volumes()

    # --- normal operations ---------------------------------------------------
    first_batch = issue_orders(sim, business.app, 25, rng_stream="one")
    assert all(r.accepted for r in first_batch)

    # --- maintenance window: suspend, write, resume -----------------------
    system.main.console.tag_namespace(business.namespace, TAG_KEY,
                                      TAG_SUSPEND)
    sim.run(until=sim.now + 3.0)
    assert system.main.api.get(Namespace, business.namespace) \
        .meta.annotations[ANNOTATION_STATE] == NS_STATE_SUSPENDED
    during_suspend = issue_orders(sim, business.app, 10,
                                  rng_stream="two")
    assert all(r.accepted for r in during_suspend)  # no business impact
    system.main.console.tag_namespace(business.namespace, TAG_KEY,
                                      TAG_CONSISTENT)
    sim.run(until=sim.now + 5.0)
    cr = system.main.api.get(ConsistencyGroupReplication,
                             f"nso-{business.namespace}",
                             business.namespace)
    assert cr.status.state == STATE_PAIRED

    # --- snapshot rotation + analytics on a generation ---------------------
    scheduler = SnapshotScheduler(
        system.backup.array, sorted(secondary.values()),
        interval=0.15, retain=2, name="lifecycle")
    scheduler.start()
    load = BackgroundLoad(sim, business.app, client_count=3,
                          rng_prefix="during-rotation")
    sim.run(until=sim.now + 0.5)
    scheduler.stop()
    assert len(scheduler.generations) == 2
    clones = system.backup.array.clone_snapshot_group(
        scheduler.latest().group_id, system.backup.pool_id)
    assert len(clones) == 4

    # --- disaster and failover -------------------------------------------
    sim.run(until=sim.now + 0.2)
    committed_before_disaster = load.committed_gtids
    promoted = fail_and_recover(system, business,
                                expected_committed=committed_before_disaster)
    load.drain()
    assert promoted.report.business_report.consistent
    assert promoted.report.storage_report.consistent
    backup_batch = issue_orders(sim, promoted.app, 15,
                                rng_stream="three")
    assert all(r.accepted for r in backup_batch)

    # --- repair and failback ---------------------------------------------
    manager = FailbackManager(
        system, secondary_volume_ids=secondary,
        original_volume_ids=business.volume_ids,
        bucket_count=business.config.bucket_count)
    reverse_load = BackgroundLoad(sim, promoted.app, client_count=2,
                                  rng_prefix="during-reverse")
    result = sim.run_until_complete(sim.spawn(manager.execute(
        promoted.app, list(promoted.app.catalog.values()),
        load=reverse_load)), timeout=240.0)
    assert result.report.succeeded
    assert result.report.business_report.consistent

    # --- serving at main again, with full accounting ----------------------
    final_batch = issue_orders(sim, result.app, 10, rng_stream="four")
    assert all(r.accepted for r in final_batch)
    # everything the backup-era app committed survived the round trip,
    # plus the pre-disaster survivors
    recovered_at_failback = result.report.business_report.order_count
    # committed_gtids is coordinator-wide: it already contains the
    # sequential batches plus the background load's orders
    pre_disaster_committed = len(committed_before_disaster)
    assert pre_disaster_committed >= 25 + 10
    lost_at_disaster = promoted.report.lost_committed_orders
    backup_era_committed = promoted.app.orders_accepted
    assert recovered_at_failback == (pre_disaster_committed
                                     - lost_at_disaster
                                     + backup_era_committed)
