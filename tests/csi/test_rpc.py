"""Tests for the CSI management RPC transport: latency, deadlines,
ambiguous outcomes, and probe-based recovery.

The key property under test is exactly-once effects under ambiguity: a
timeout whose command *did* land must never be blindly re-driven, and a
timeout whose command did *not* land must be re-driven (or surfaced as
``RpcTimeoutError`` so the level-triggered reconcile retries).
"""

import pytest

from repro.csi import ConsistencyGroupReplication, STATE_PAIRED
from repro.csi.rpc import CsiRpcInjector, RpcChannel
from repro.errors import RpcTimeoutError
from repro.simulation import Simulator
from tests.csi.conftest import create_pvc


class ScriptedInjector(CsiRpcInjector):
    """Injector with a fixed verdict script instead of RNG draws.

    Verdicts: ``None`` = healthy, ``True`` = timeout after the command
    applied, ``False`` = timeout before it applied.  After the script
    runs out every call is healthy.
    """

    def __init__(self, sim, verdicts):
        super().__init__(sim)
        self.verdicts = list(verdicts)

    def draw(self):
        if not self.verdicts:
            return None
        verdict = self.verdicts.pop(0)
        if verdict is not None:
            self.injected += 1
        return verdict


def drive(sim, generator):
    process = sim.spawn(generator, name="rpc-under-test")
    return sim.run_until_complete(process)


class Command:
    """A side-effecting array command with an observable effect."""

    def __init__(self, value="effect"):
        self.value = value
        self.calls = 0
        self.applied = False

    def __call__(self):
        self.calls += 1
        self.applied = True
        return self.value

    def probe(self):
        return self.value if self.applied else None


class TestRpcChannel:
    def test_healthy_call_pays_latency_and_returns_result(self):
        sim = Simulator(seed=3)
        channel = RpcChannel(sim, latency=0.050)
        command = Command()
        result = drive(sim, channel.call("create-pair", command))
        assert result == "effect"
        assert command.calls == 1
        assert sim.now == pytest.approx(0.050)

    def test_ambiguous_timeout_with_probe_never_redrives(self):
        """Timeout *after* the effect landed: the probe observes it and
        the channel must not run the command a second time."""
        sim = Simulator(seed=3)
        channel = RpcChannel(
            sim, latency=0.010,
            injector=ScriptedInjector(sim, [True]))
        command = Command()
        result = drive(sim, channel.call("create-pair", command,
                                         probe=command.probe))
        assert result == "effect"
        assert command.calls == 1  # exactly once, despite the timeout

    def test_unapplied_timeout_with_probe_is_redriven(self):
        """Timeout *before* the effect landed: the probe sees nothing,
        so the channel re-drives the command on the next attempt."""
        sim = Simulator(seed=3)
        channel = RpcChannel(
            sim, latency=0.010,
            injector=ScriptedInjector(sim, [False]))
        command = Command()
        result = drive(sim, channel.call("create-pair", command,
                                         probe=command.probe))
        assert result == "effect"
        assert command.calls == 1
        # two transport rounds were paid: the timed-out one + the retry
        assert sim.now == pytest.approx(0.020)

    def test_no_probe_raises_immediately(self):
        """Callers without a probe cannot disambiguate — the timeout is
        surfaced at once for the level-triggered reconcile to handle."""
        sim = Simulator(seed=3)
        channel = RpcChannel(
            sim, latency=0.010,
            injector=ScriptedInjector(sim, [True, None, None]))
        command = Command()
        with pytest.raises(RpcTimeoutError):
            drive(sim, channel.call("create-pair", command))
        # the effect applied on the array even though the caller saw an
        # error — exactly the ambiguity idempotent reconciles absorb
        assert command.applied
        assert sim.now == pytest.approx(0.010)  # no retry rounds paid

    def test_retry_budget_exhaustion_raises(self):
        sim = Simulator(seed=3)
        channel = RpcChannel(
            sim, latency=0.010, retries=1,
            injector=ScriptedInjector(sim, [False, False]))

        def never_lands():
            return None  # pretend the command keeps getting dropped

        with pytest.raises(RpcTimeoutError):
            drive(sim, channel.call("create-pair", never_lands,
                                    probe=lambda: None))

    def test_timeout_metric_is_labeled_by_step_and_outcome(self):
        sim = Simulator(seed=3)
        channel = RpcChannel(
            sim, latency=0.010,
            injector=ScriptedInjector(sim, [True, False]))
        command = Command()
        drive(sim, channel.call("create-pair", command,
                                probe=command.probe))
        drive(sim, channel.call("split-pair", command,
                                probe=lambda: "split"))
        registry = sim.telemetry.registry
        assert registry.counter("repro_rpc_timeouts_total",
                                step="create-pair",
                                applied="true").value == 1
        assert registry.counter("repro_rpc_timeouts_total",
                                step="split-pair",
                                applied="false").value == 1

    def test_validation(self):
        sim = Simulator(seed=3)
        with pytest.raises(ValueError):
            RpcChannel(sim, latency=-0.010)
        with pytest.raises(ValueError):
            RpcChannel(sim, retries=-1)


class TestCsiRpcInjector:
    def test_inert_by_default(self):
        sim = Simulator(seed=3)
        injector = CsiRpcInjector(sim)
        assert all(injector.draw() is None for _ in range(50))
        assert injector.injected == 0

    def test_draws_are_seed_deterministic(self):
        def sample(seed):
            injector = CsiRpcInjector(Simulator(seed=seed))
            injector.timeout_probability = 0.4
            injector.effect_probability = 0.6
            return [injector.draw() for _ in range(60)]

        first, second = sample(17), sample(17)
        assert first == second
        assert sample(18) != first
        # the fault mix actually exercises all three outcomes
        assert {None, True, False} <= set(first)

    def test_clear_stops_injection(self):
        sim = Simulator(seed=3)
        injector = CsiRpcInjector(sim)
        injector.timeout_probability = 1.0
        injector.effect_probability = 0.0
        assert injector.draw() is False
        injector.clear()
        assert all(injector.draw() is None for _ in range(20))
        assert injector.injected == 1  # history survives the heal


class TestProvisioningUnderRpcFlakes:
    def test_flaky_transport_still_pairs_exactly_once(self, sim, system):
        """End-to-end: provisioning over a flaky transport converges to
        the same exactly-once pairing as a healthy run — the plugin's
        probes absorb every ambiguous timeout."""
        injector = system.replication_context.rpc.injector
        injector.timeout_probability = 0.35
        injector.effect_probability = 0.6

        system.main.cluster.create_namespace("shop")
        for name in ("sales", "stock"):
            create_pvc(system.main.cluster, "shop", name)
        cr = ConsistencyGroupReplication()
        cr.meta.name = "bp"
        cr.meta.namespace = "shop"
        cr.spec.pvc_names = ["sales", "stock"]
        cr.spec.consistency_group = True
        system.main.api.create(cr)
        sim.run(until=8.0)
        injector.clear()
        sim.run(until=10.0)

        cr = system.main.api.get(ConsistencyGroupReplication, "bp", "shop")
        assert cr.status.state == STATE_PAIRED
        group = system.main.array.journal_groups["jg-shop-bp"]
        assert len(group.pairs) == 2
        # every pvol appears in exactly one pair, and every secondary
        # volume on the backup array is referenced by a pair — ambiguous
        # retries never minted duplicates or orphans
        svol_ids = {pair.svol.volume_id for pair in group.pairs.values()}
        orphaned = [volume for volume in system.backup.array.list_volumes()
                    if (volume.name or "").endswith("-svol")
                    and volume.volume_id not in svol_ids]
        assert orphaned == []
        assert injector.injected > 0  # the storm actually hit the path
