"""Tests for the storage plugin: dynamic provisioning and snapshots."""

import pytest

from repro.errors import CsiError
from repro.platform import (PersistentVolume, PersistentVolumeClaim,
                            VolumeGroupSnapshot, VolumeSnapshot)
from tests.csi.conftest import create_pvc, fast_system_config


class TestProvisioning:
    def test_pending_pvc_gets_provisioned_and_bound(self, sim, system):
        system.main.cluster.create_namespace("shop")
        create_pvc(system.main.cluster, "shop", "sales-data")
        sim.run(until=1.0)
        pvc = system.main.api.get(PersistentVolumeClaim, "sales-data",
                                  "shop")
        assert pvc.bound
        pv = system.main.api.get(PersistentVolume, pvc.spec.volume_name)
        assert pv.status.phase == "Bound"
        assert pv.spec.csi.driver == "hspc.hitachi.com"
        volume_id = system.main.array.parse_handle(
            pv.spec.csi.volume_handle)
        assert system.main.array.volume_exists(volume_id)

    def test_provisioning_is_idempotent_per_claim(self, sim, system):
        system.main.cluster.create_namespace("shop")
        create_pvc(system.main.cluster, "shop", "sales-data")
        sim.run(until=2.0)
        volumes = system.main.array.list_volumes()
        pvc_named = [v for v in volumes if v.name.startswith("pvc-")]
        assert len(pvc_named) == 1

    def test_half_bound_pv_is_adopted_not_reprovisioned(self, sim, system):
        """A bind whose PVC update was lost (API flake / provisioner
        crash between the two updates) leaves the PV Bound with a
        claim_ref while the claim stays Pending.  The retry must adopt
        that PV — re-provisioning would livelock on the PV name."""
        cluster = system.main.cluster
        cluster.create_namespace("shop")
        create_pvc(cluster, "shop", "sales-data")
        sim.run(until=1.0)
        pvc = cluster.api.get(PersistentVolumeClaim, "sales-data", "shop")
        pv_name = pvc.spec.volume_name
        # rewind the claim half of the bind, as a flaked update would
        pvc.spec.volume_name = ""
        pvc.status.phase = "Pending"
        cluster.api.update(pvc)
        sim.run(until=2.5)
        pvc = cluster.api.get(PersistentVolumeClaim, "sales-data", "shop")
        assert pvc.bound
        assert pvc.spec.volume_name == pv_name  # adopted, not re-made
        volumes = [v for v in system.main.array.list_volumes()
                   if v.name.startswith("pvc-")]
        assert len(volumes) == 1

    def test_unknown_storage_class_waits(self, sim, system):
        system.main.cluster.create_namespace("shop")
        create_pvc(system.main.cluster, "shop", "odd",
                   storage_class="missing-class")
        sim.run(until=0.5)
        pvc = system.main.api.get(PersistentVolumeClaim, "odd", "shop")
        assert not pvc.bound

    def test_prebound_available_pv_wins_over_provisioning(self, sim, system):
        """The backup-site pattern: a pre-created PV with a claim_ref is
        bound instead of provisioning a fresh volume."""
        from repro.scenarios import DEFAULT_STORAGE_CLASS
        cluster = system.main.cluster
        cluster.create_namespace("shop")
        volume = system.main.array.create_volume(system.main.pool_id, 128)
        pv = PersistentVolume()
        pv.meta.name = "pre-made"
        pv.spec.capacity_blocks = 128
        pv.spec.storage_class = DEFAULT_STORAGE_CLASS
        pv.spec.csi.driver = system.main.driver.driver_name
        pv.spec.csi.volume_handle = system.main.array.volume_handle(
            volume.volume_id)
        pv.spec.csi.array_serial = system.main.array.serial
        pv.spec.claim_ref = "shop/sales-data"
        cluster.api.create(pv)
        create_pvc(cluster, "shop", "sales-data")
        sim.run(until=1.0)
        pvc = cluster.api.get(PersistentVolumeClaim, "sales-data", "shop")
        assert pvc.spec.volume_name == "pre-made"


class TestSnapshots:
    def test_volume_snapshot_becomes_ready(self, sim, system):
        cluster = system.main.cluster
        cluster.create_namespace("shop")
        create_pvc(cluster, "shop", "sales-data")
        sim.run(until=1.0)
        cluster.console.create_volume_snapshot("shop", "snap-1",
                                               "sales-data")
        sim.run(until=2.0)
        snap = cluster.api.get(VolumeSnapshot, "snap-1", "shop")
        assert snap.status.ready
        assert snap.status.snapshot_handle.startswith("snap.G370-MAIN.")

    def test_snapshot_of_unbound_pvc_reports_error_then_recovers(
            self, sim, system):
        cluster = system.main.cluster
        cluster.create_namespace("shop")
        cluster.console.create_volume_snapshot("shop", "snap-early",
                                               "late-data")
        sim.run(until=0.3)
        snap = cluster.api.get(VolumeSnapshot, "snap-early", "shop")
        assert not snap.status.ready
        assert snap.status.error
        create_pvc(cluster, "shop", "late-data")
        sim.run(until=2.0)
        snap = cluster.api.get(VolumeSnapshot, "snap-early", "shop")
        assert snap.status.ready


class TestGroupSnapshotAlphaGap:
    def test_default_system_has_no_group_snapshot_support(self, sim, system):
        """The paper's state: the driver rejects group snapshots and no
        controller reconciles VolumeGroupSnapshot objects."""
        assert not system.backup.driver.supports_group_snapshots

        def attempt(sim):
            yield from system.backup.driver.create_snapshot_group(
                "g", ["naa.G370-BKUP.100"])

        proc = sim.spawn(attempt(sim))
        sim.run(until=0.5)
        with pytest.raises(CsiError):
            _ = proc.result

    def test_future_state_reconciles_group_snapshots(self, sim):
        """With the alpha feature enabled end-to-end, one
        VolumeGroupSnapshot object replaces the manual array operation."""
        from repro.scenarios import build_system
        from repro.simulation import Simulator
        sim = Simulator(seed=32)
        system = build_system(sim, fast_system_config(
            enable_group_snapshots=True))
        cluster = system.main.cluster
        cluster.create_namespace("shop")
        create_pvc(cluster, "shop", "sales", labels={"app": "shop"})
        create_pvc(cluster, "shop", "stock", labels={"app": "shop"})
        sim.run(until=1.0)
        group = VolumeGroupSnapshot()
        group.meta.name = "vgs-1"
        group.meta.namespace = "shop"
        group.spec.selector = {"app": "shop"}
        cluster.api.create(group)
        sim.run(until=2.0)
        stored = cluster.api.get(VolumeGroupSnapshot, "vgs-1", "shop")
        assert stored.status.ready
        assert set(stored.status.snapshot_handles) == {"sales", "stock"}


class TestDriver:
    def test_create_volume_idempotent_by_name(self, sim, system):
        driver = system.main.driver

        def proc(sim):
            first = yield from driver.create_volume("vol-x", 64, {})
            second = yield from driver.create_volume("vol-x", 64, {})
            return first, second

        first, second = sim.run_until_complete(sim.spawn(proc(sim)))
        assert first == second

    def test_create_volume_capacity_conflict(self, sim, system):
        driver = system.main.driver

        def proc(sim):
            yield from driver.create_volume("vol-x", 64, {})
            yield from driver.create_volume("vol-x", 128, {})

        proc_handle = sim.spawn(proc(sim))
        sim.run(until=1.0)
        with pytest.raises(CsiError):
            _ = proc_handle.result

    def test_get_capacity_reflects_pool(self, sim, system):
        driver = system.main.driver
        before = driver.get_capacity({})
        sim.run_until_complete(
            sim.spawn(iter_gen(driver.create_volume("v", 500, {}))))
        assert driver.get_capacity({}) == before - 500

    def test_bad_pool_parameter(self, sim, system):
        with pytest.raises(CsiError):
            system.main.driver.get_capacity({"poolId": "not-a-number"})

    def test_snapshot_handle_round_trip(self):
        from repro.csi import parse_snapshot_handle, snapshot_handle
        handle = snapshot_handle("G370-MAIN", 7)
        assert parse_snapshot_handle(handle) == ("G370-MAIN", 7)
        with pytest.raises(ValueError):
            parse_snapshot_handle("garbage")


def iter_gen(generator):
    """Wrap a driver generator so it can be spawned directly."""
    result = yield from generator
    return result
