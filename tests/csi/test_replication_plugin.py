"""Tests for the replication plugin: CR-driven pair configuration."""

import pytest

from repro.csi import (ConsistencyGroupReplication, SECONDARY_PV_LABEL,
                       STATE_PAIRED, VolumeReplication)
from repro.platform import PersistentVolume
from repro.storage import PairState
from tests.csi.conftest import create_pvc


def make_cgr(namespace, name, pvc_names, consistency_group=True):
    cr = ConsistencyGroupReplication()
    cr.meta.name = name
    cr.meta.namespace = namespace
    cr.spec.pvc_names = list(pvc_names)
    cr.spec.consistency_group = consistency_group
    return cr


def prepare_claims(sim, system, pvc_names, namespace="shop"):
    system.main.cluster.create_namespace(namespace)
    for name in pvc_names:
        create_pvc(system.main.cluster, namespace, name)
    sim.run(until=1.0)


class TestConsistencyGroupReplication:
    def test_cr_drives_pairing_into_one_group(self, sim, system):
        prepare_claims(sim, system, ["sales", "stock"])
        system.main.api.create(make_cgr("shop", "bp", ["sales", "stock"]))
        sim.run(until=3.0)
        cr = system.main.api.get(ConsistencyGroupReplication, "bp", "shop")
        assert cr.status.state == STATE_PAIRED
        assert cr.status.pair_states == {"sales": "PAIR", "stock": "PAIR"}
        assert cr.status.journal_groups == ["jg-shop-bp"]
        group = system.main.array.journal_groups["jg-shop-bp"]
        assert len(group.pairs) == 2

    def test_no_consistency_group_mode_creates_private_journals(
            self, sim, system):
        prepare_claims(sim, system, ["sales", "stock"])
        system.main.api.create(make_cgr("shop", "bp", ["sales", "stock"],
                                        consistency_group=False))
        sim.run(until=3.0)
        cr = system.main.api.get(ConsistencyGroupReplication, "bp", "shop")
        assert cr.status.state == STATE_PAIRED
        assert cr.status.journal_groups == [
            "jg-shop-bp-sales", "jg-shop-bp-stock"]
        for group_id in cr.status.journal_groups:
            assert len(system.main.array.journal_groups[group_id].pairs) == 1

    def test_backup_pvs_appear_after_configuration(self, sim, system):
        """The Fig 3 -> Fig 4 transition: the backup site had no PVs,
        then mirrored PVs appear."""
        prepare_claims(sim, system, ["sales", "stock"])
        assert system.backup.console.list_persistent_volumes() == []
        system.main.api.create(make_cgr("shop", "bp", ["sales", "stock"]))
        sim.run(until=3.0)
        pvs = system.backup.console.list_persistent_volumes()
        assert len(pvs) == 2
        for pv in pvs:
            assert pv.meta.labels[SECONDARY_PV_LABEL] == "shop.bp"
            assert pv.spec.csi.array_serial == "G370-BKUP"
            assert pv.spec.claim_ref.startswith("shop/")

    def test_replication_actually_copies_data(self, sim, system):
        prepare_claims(sim, system, ["sales"])
        system.main.api.create(make_cgr("shop", "bp", ["sales"]))
        sim.run(until=3.0)
        cr = system.main.api.get(ConsistencyGroupReplication, "bp", "shop")
        from repro.csi import resolve_bound_volume
        pv = resolve_bound_volume(system.main.api, "shop", "sales")
        pvol_id = system.main.array.parse_handle(pv.spec.csi.volume_handle)
        svol_id = system.backup.array.parse_handle(
            cr.status.secondary_handles["sales"])

        def writer(sim):
            yield from system.main.array.host_write(pvol_id, 0, b"copied")

        sim.run_until_complete(sim.spawn(writer(sim)))
        sim.run(until=sim.now + 1.0)
        assert system.backup.array.get_volume(svol_id).peek(0).payload == \
            b"copied"

    def test_cr_with_unbound_pvc_waits_then_configures(self, sim, system):
        system.main.cluster.create_namespace("shop")
        system.main.api.create(make_cgr("shop", "bp", ["late"]))
        sim.run(until=0.5)
        cr = system.main.api.get(ConsistencyGroupReplication, "bp", "shop")
        assert cr.status.state != STATE_PAIRED
        create_pvc(system.main.cluster, "shop", "late")
        sim.run(until=4.0)
        cr = system.main.api.get(ConsistencyGroupReplication, "bp", "shop")
        assert cr.status.state == STATE_PAIRED

    def test_teardown_on_delete(self, sim, system):
        prepare_claims(sim, system, ["sales"])
        system.main.api.create(make_cgr("shop", "bp", ["sales"]))
        sim.run(until=3.0)
        system.main.api.delete(ConsistencyGroupReplication, "bp", "shop")
        sim.run(until=5.0)
        assert system.main.api.try_get(
            ConsistencyGroupReplication, "bp", "shop") is None
        assert "jg-shop-bp" not in system.main.array.journal_groups
        assert system.main.array.find_pair("shop/bp/sales") is None
        assert system.backup.api.list(PersistentVolume) == []

    def test_manual_split_is_self_healed(self, sim, system):
        """Declared state wins: a split performed behind the plugin's
        back (PSUS) is resynchronised because the CR says 'replicate'."""
        prepare_claims(sim, system, ["sales"])
        system.main.api.create(make_cgr("shop", "bp", ["sales"]))
        sim.run(until=3.0)
        group = system.main.array.journal_groups["jg-shop-bp"]
        group.split()
        sim.run(until=8.0)  # the plugin's poll notices and resyncs
        assert not group.suspended
        cr = system.main.api.get(ConsistencyGroupReplication, "bp", "shop")
        assert cr.status.state == STATE_PAIRED
        assert cr.status.pair_states["sales"] == PairState.PAIR.value

    def test_error_suspension_surfaces_and_is_not_auto_healed(
            self, sim, system):
        """PSUE (journal overflow) needs repair; the plugin reports it
        rather than resync-looping against a broken pipeline."""
        prepare_claims(sim, system, ["sales"])
        system.main.api.create(make_cgr("shop", "bp", ["sales"]))
        sim.run(until=3.0)
        group = system.main.array.journal_groups["jg-shop-bp"]
        from repro.storage import PairState as PS
        group._suspend(PS.PSUE, "journal full")
        sim.run(until=8.0)
        assert group.suspended  # still suspended: no auto-heal of PSUE
        cr = system.main.api.get(ConsistencyGroupReplication, "bp", "shop")
        assert cr.status.state == "Suspended"
        assert cr.status.pair_states["sales"] == PairState.PSUE.value


class TestVolumeReplication:
    def test_volume_replication_composes_over_group_cr(self, sim, system):
        prepare_claims(sim, system, ["solo"])
        vr = VolumeReplication()
        vr.meta.name = "solo-repl"
        vr.meta.namespace = "shop"
        vr.spec.pvc_name = "solo"
        system.main.api.create(vr)
        sim.run(until=4.0)
        stored = system.main.api.get(VolumeReplication, "solo-repl", "shop")
        assert stored.status.state == STATE_PAIRED
        assert stored.status.pair_state == "PAIR"
        assert stored.status.secondary_handle.startswith("naa.G370-BKUP.")

    def test_volume_replication_delete_cleans_owned_cr(self, sim, system):
        prepare_claims(sim, system, ["solo"])
        vr = VolumeReplication()
        vr.meta.name = "solo-repl"
        vr.meta.namespace = "shop"
        vr.spec.pvc_name = "solo"
        system.main.api.create(vr)
        sim.run(until=4.0)
        system.main.api.delete(VolumeReplication, "solo-repl", "shop")
        sim.run(until=8.0)
        assert system.main.api.try_get(
            ConsistencyGroupReplication, "vr-solo-repl", "shop") is None
