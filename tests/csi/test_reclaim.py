"""Tests for storage reclamation: PVC deletion releases the PV and the
array volume; VolumeSnapshot deletion releases the array snapshot."""

import pytest

from repro.platform import (Namespace, PersistentVolume,
                            PersistentVolumeClaim, VolumeSnapshot)
from tests.csi.conftest import create_pvc


class TestPvcReclaim:
    def test_delete_pvc_releases_pv_and_volume(self, sim, system):
        system.main.cluster.create_namespace("shop")
        create_pvc(system.main.cluster, "shop", "data", capacity=500)
        sim.run(until=1.0)
        pvc = system.main.api.get(PersistentVolumeClaim, "data", "shop")
        pv_name = pvc.spec.volume_name
        pv = system.main.api.get(PersistentVolume, pv_name)
        volume_id = system.main.array.parse_handle(
            pv.spec.csi.volume_handle)
        pool = system.main.array._pools[system.main.pool_id]
        free_before = pool.free_blocks
        system.main.api.delete(PersistentVolumeClaim, "data", "shop")
        sim.run(until=3.0)
        assert system.main.api.try_get(
            PersistentVolumeClaim, "data", "shop") is None
        assert system.main.api.try_get(PersistentVolume, pv_name) is None
        assert not system.main.array.volume_exists(volume_id)
        assert pool.free_blocks == free_before + 500

    def test_replicated_pvc_waits_for_unpairing(self, sim, system):
        """A claim whose volume is a replication P-VOL cannot reclaim
        until the pair dissolves; the reclaim retries and wins once the
        CR teardown runs."""
        from repro.csi import ConsistencyGroupReplication
        system.main.cluster.create_namespace("shop")
        create_pvc(system.main.cluster, "shop", "data")
        sim.run(until=1.0)
        cr = ConsistencyGroupReplication()
        cr.meta.name = "protect"
        cr.meta.namespace = "shop"
        cr.spec.pvc_names = ["data"]
        system.main.api.create(cr)
        sim.run(until=sim.now + 3.0)
        system.main.api.delete(PersistentVolumeClaim, "data", "shop")
        sim.run(until=sim.now + 1.0)
        # still pinned: the volume is paired
        assert system.main.api.try_get(
            PersistentVolumeClaim, "data", "shop") is not None
        system.main.api.delete(ConsistencyGroupReplication, "protect",
                               "shop")
        sim.run(until=sim.now + 6.0)
        assert system.main.api.try_get(
            PersistentVolumeClaim, "data", "shop") is None


class TestSnapshotReclaim:
    def test_delete_volumesnapshot_releases_array_snapshot(self, sim,
                                                           system):
        system.main.cluster.create_namespace("shop")
        create_pvc(system.main.cluster, "shop", "data")
        sim.run(until=1.0)
        system.main.console.create_volume_snapshot("shop", "snap-1",
                                                   "data")
        sim.run(until=2.0)
        snap = system.main.api.get(VolumeSnapshot, "snap-1", "shop")
        assert snap.status.ready
        from repro.csi import parse_snapshot_handle
        _serial, snapshot_id = parse_snapshot_handle(
            snap.status.snapshot_handle)
        system.main.api.delete(VolumeSnapshot, "snap-1", "shop")
        sim.run(until=4.0)
        assert system.main.api.try_get(
            VolumeSnapshot, "snap-1", "shop") is None
        from repro.errors import SnapshotError
        with pytest.raises(SnapshotError):
            system.main.array.get_snapshot(snapshot_id)

    def test_gc_cascade_now_frees_storage(self):
        """Namespace deletion releases everything: CR, pairs, PVs,
        array volumes — the full stack unwinds."""
        from repro.csi import ConsistencyGroupReplication
        from repro.operator import (TAG_CONSISTENT, TAG_KEY,
                                    install_namespace_operator)
        from repro.platform import install_namespace_gc
        from repro.scenarios import (BusinessConfig, build_system,
                                     deploy_business_process)
        from repro.simulation import Simulator
        from tests.csi.conftest import fast_system_config

        sim = Simulator(seed=200)
        system = build_system(sim, fast_system_config())
        install_namespace_operator(system.main.cluster)
        install_namespace_gc(
            system.main.cluster,
            extra_swept_kinds=(ConsistencyGroupReplication,))
        business = deploy_business_process(
            system, BusinessConfig(wal_blocks=20_000))
        system.main.console.tag_namespace(business.namespace, TAG_KEY,
                                          TAG_CONSISTENT)
        sim.run(until=sim.now + 4.0)
        volume_ids = list(business.volume_ids.values())
        system.main.api.delete(Namespace, business.namespace)
        sim.run(until=sim.now + 10.0)
        assert system.main.api.try_get(
            Namespace, business.namespace) is None
        for volume_id in volume_ids:
            assert not system.main.array.volume_exists(volume_id)
        assert system.main.api.list(PersistentVolume) == []
