"""Shared fixtures for CSI tests: a wired two-site system."""

import pytest

from repro.platform import PersistentVolumeClaim
from repro.scenarios import DEFAULT_STORAGE_CLASS, SystemConfig, build_system
from repro.simulation import Simulator
from repro.storage import AdcConfig, ArrayConfig


def fast_system_config(**overrides) -> SystemConfig:
    """System config with tight loops and small latencies for tests."""
    adc = AdcConfig(transfer_interval=0.001, transfer_batch=1024,
                    restore_interval=0.001, restore_batch=1024,
                    interval_jitter=0.0)
    params = dict(link_latency=0.002,
                  array=ArrayConfig(adc=adc),
                  command_latency=0.010)
    params.update(overrides)
    return SystemConfig(**params)


@pytest.fixture()
def sim():
    return Simulator(seed=31)


@pytest.fixture()
def system(sim):
    return build_system(sim, fast_system_config())


def create_pvc(cluster, namespace, name, capacity=128,
               storage_class=DEFAULT_STORAGE_CLASS, labels=None):
    pvc = PersistentVolumeClaim()
    pvc.meta.name = name
    pvc.meta.namespace = namespace
    pvc.meta.labels = dict(labels or {})
    pvc.spec.storage_class = storage_class
    pvc.spec.capacity_blocks = capacity
    return cluster.api.create(pvc)
