"""Controller hardening: jittered budgeted backoff, deadlines,
crash-restart recovery, and watch resync.

These are the control-plane counterparts of the data-plane fault tests:
every recovery path a control-plane chaos fault exercises is pinned
down here in isolation first.
"""

import pytest

from repro.errors import UnavailableError
from repro.platform import (ApiFaultInjector, ApiServer, BackoffPolicy,
                            Controller, Namespace, Reconciler, Requeue)
from repro.platform.controller import DEADLINE_EXCEEDED
from repro.simulation import Simulator
from tests.platform.conftest import make_namespace
from tests.platform.test_controller import RecordingReconciler


class TestBackoffPolicy:
    def test_jitter_perturbs_the_delay_deterministically(self):
        policy = BackoffPolicy(initial=0.010, jitter=0.5)
        draws_a = [policy.delay(1, rng=Simulator(seed=5).rng)
                   for _ in range(1)]
        draws_b = [policy.delay(1, rng=Simulator(seed=5).rng)
                   for _ in range(1)]
        # same seed, same stream -> the same jittered delay
        assert draws_a == draws_b
        # the jittered delay stays inside +/- 50% of the base
        assert 0.005 <= draws_a[0] <= 0.015

    def test_jitter_sequence_is_seed_deterministic(self):
        policy = BackoffPolicy(initial=0.010, jitter=0.3)
        rng_a, rng_b = Simulator(seed=9).rng, Simulator(seed=9).rng
        sequence_a = [policy.delay(n, rng=rng_a) for n in range(1, 6)]
        sequence_b = [policy.delay(n, rng=rng_b) for n in range(1, 6)]
        assert sequence_a == sequence_b
        other = [policy.delay(n, rng=Simulator(seed=10).rng)
                 for n in range(1, 6)]
        assert sequence_a != other

    def test_no_rng_means_no_jitter(self):
        policy = BackoffPolicy(initial=0.010, jitter=0.5)
        assert policy.delay(1) == pytest.approx(0.010)

    def test_budget_exhaustion(self):
        policy = BackoffPolicy(budget=3)
        assert not policy.exhausted(3)
        assert policy.exhausted(4)
        assert not BackoffPolicy().exhausted(10 ** 6)

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            BackoffPolicy(budget=0)


class TestRetryBudget:
    def test_budget_exhaustion_stops_retrying(self, sim, api):
        reconciler = RecordingReconciler(fail_times=50)
        controller = Controller(
            sim, api, reconciler,
            backoff=BackoffPolicy(initial=0.005, budget=3))
        controller.start()
        api.create(make_namespace("shop"))
        sim.run(until=5.0)
        # initial attempt + 3 budgeted retries, then the key is parked
        assert len(reconciler.calls) == 4
        counter = sim.telemetry.registry.counter(
            "repro_reconcile_budget_exhausted_total",
            controller=controller.name)
        assert counter.value == 1

    def test_fresh_event_retries_a_parked_key(self, sim, api):
        reconciler = RecordingReconciler(fail_times=50)
        controller = Controller(
            sim, api, reconciler,
            backoff=BackoffPolicy(initial=0.005, budget=2))
        controller.start()
        api.create(make_namespace("shop"))
        sim.run(until=2.0)
        parked_calls = len(reconciler.calls)
        reconciler.fail_times = 0  # the object heals
        ns = api.get(Namespace, "shop")
        ns.meta.labels["touched"] = "yes"
        api.update(ns)
        sim.run(until=4.0)
        # the update re-enqueued the key with a reset failure count
        assert len(reconciler.calls) > parked_calls


class SlowReconciler(Reconciler):
    kind = Namespace

    def __init__(self, delay):
        self.delay = delay
        self.calls = 0
        self.completed = 0

    def reconcile(self, api, key):
        self.calls += 1
        yield api.sim.timeout(self.delay)
        self.completed += 1
        return None


class TestReconcileDeadline:
    def test_deadline_cancels_and_requeues(self, sim, api):
        reconciler = SlowReconciler(delay=0.500)
        controller = Controller(
            sim, api, reconciler, deadline=0.050,
            backoff=BackoffPolicy(initial=0.005, budget=2))
        controller.start()
        api.create(make_namespace("shop"))
        sim.run(until=3.0)
        assert reconciler.calls >= 2  # timed out, retried
        assert reconciler.completed == 0
        counter = sim.telemetry.registry.counter(
            "repro_reconcile_timeouts_total", controller=controller.name)
        assert counter.value >= 2

    def test_fast_reconciles_unaffected_by_deadline(self, sim, api):
        reconciler = SlowReconciler(delay=0.010)
        controller = Controller(sim, api, reconciler, deadline=0.200)
        controller.start()
        api.create(make_namespace("shop"))
        sim.run(until=1.0)
        assert reconciler.completed == 1
        counter = sim.telemetry.registry.counter(
            "repro_reconcile_timeouts_total", controller=controller.name)
        assert counter.value == 0


class TestCrashRestart:
    def test_crash_kills_worker_and_restart_requeues_all(self, sim, api):
        reconciler = RecordingReconciler()
        controller = Controller(sim, api, reconciler)
        controller.start()
        for name in ("one", "two", "three"):
            api.create(make_namespace(name))
        sim.run(until=0.5)
        seen_before = {name for _t, name in reconciler.calls}
        assert seen_before == {"one", "two", "three"}

        controller.crash("test-crash")
        # objects created while the controller is dead are missed events
        api.create(make_namespace("four"))
        sim.run(until=1.0)
        dead_calls = len(reconciler.calls)
        sim.run(until=1.5)
        assert len(reconciler.calls) == dead_calls  # really dead

        controller.restart()
        sim.run(until=3.0)
        # the list+watch replay requeued every live key, including the
        # one created during the outage
        seen_after = {name for _t, name in
                      reconciler.calls[dead_calls:]}
        assert seen_after == {"one", "two", "three", "four"}
        assert controller.restart_count == 1
        counter = sim.telemetry.registry.counter(
            "repro_controller_restarts_total", controller=controller.name)
        assert counter.value == 1

    def test_crash_mid_reconcile_is_recovered_after_restart(self, sim, api):
        reconciler = SlowReconciler(delay=0.200)
        controller = Controller(sim, api, reconciler)
        controller.start()
        api.create(make_namespace("shop"))
        sim.run(until=0.050)  # worker is inside the reconcile
        assert reconciler.calls == 1
        assert reconciler.completed == 0
        controller.crash("test-crash")
        controller.restart()
        sim.run(until=2.0)
        # the interrupted reconcile was re-driven to completion
        assert reconciler.completed >= 1

    def test_restart_during_api_outage_recovers_when_api_heals(self, sim):
        api = ApiServer(sim, cluster_name="test")
        api.chaos = ApiFaultInjector(sim)
        reconciler = RecordingReconciler()
        controller = Controller(sim, api, reconciler,
                                backoff=BackoffPolicy(initial=0.005))
        controller.start()
        api.create(make_namespace("shop"))
        sim.run(until=0.5)
        controller.crash("test-crash")
        api.chaos.outage = True
        controller.restart()  # watch open fails; the pump keeps retrying
        sim.run(until=1.0)
        api.chaos.outage = False
        sim.run(until=3.0)
        assert [name for _t, name in reconciler.calls].count("shop") >= 2


class TestWatchResync:
    def test_drop_watches_forces_list_resync(self, sim, api):
        reconciler = RecordingReconciler()
        controller = Controller(sim, api, reconciler)
        controller.start()
        api.create(make_namespace("shop"))
        sim.run(until=0.5)
        dropped = api.drop_watches()
        assert dropped >= 1
        sim.run(until=2.0)
        counter = sim.telemetry.registry.counter(
            "repro_watch_resyncs_total", controller=controller.name)
        assert counter.value >= 1
        # the re-list replayed the namespace as an ADDED event
        assert [name for _t, name in reconciler.calls].count("shop") >= 2
        # new events flow through the re-opened stream
        ns = api.get(Namespace, "shop")
        ns.meta.labels["after"] = "drop"
        api.update(ns)
        sim.run(until=3.0)
        assert [name for _t, name in reconciler.calls].count("shop") >= 3


class TestApiFaultInjector:
    def test_outage_rejects_everything_fail_closed(self, sim, api):
        api.chaos = ApiFaultInjector(sim)
        api.chaos.outage = True
        with pytest.raises(UnavailableError):
            api.create(make_namespace("shop"))
        api.chaos.outage = False
        api.create(make_namespace("shop"))  # nothing half-applied
        assert api.get(Namespace, "shop").meta.name == "shop"

    def test_flakes_are_seed_deterministic(self):
        outcomes = []
        for _attempt in range(2):
            sim = Simulator(seed=33)
            api = ApiServer(sim, cluster_name="test")
            api.chaos = ApiFaultInjector(sim)
            api.chaos.flake_probability = 0.5
            verdicts = []
            for index in range(20):
                try:
                    api.create(make_namespace(f"ns-{index}"))
                    verdicts.append("ok")
                except UnavailableError:
                    verdicts.append("flake")
            outcomes.append(verdicts)
        assert outcomes[0] == outcomes[1]
        assert "flake" in outcomes[0] and "ok" in outcomes[0]

    def test_clear_stops_injection(self, sim, api):
        api.chaos = ApiFaultInjector(sim)
        api.chaos.outage = True
        api.chaos.flake_probability = 1.0
        api.chaos.clear()
        api.create(make_namespace("shop"))
        assert api.chaos.injected == 0
