"""Unit tests for the controller runtime: queues, retries, requeues."""

import pytest

from repro.platform import (ApiServer, BackoffPolicy, Controller,
                            Namespace, Reconciler, Requeue)
from tests.platform.conftest import make_namespace


class RecordingReconciler(Reconciler):
    """Counts reconciles per key; configurable failures and requeues."""

    kind = Namespace

    def __init__(self, fail_times=0, requeue_after=None, work_delay=0.0):
        self.calls = []
        self.fail_times = fail_times
        self.requeue_after = requeue_after
        self.work_delay = work_delay
        self._failures = 0

    def reconcile(self, api, key):
        self.calls.append((api.sim.now, key.name))
        if self.work_delay:
            yield api.sim.timeout(self.work_delay)
        if self._failures < self.fail_times:
            self._failures += 1
            raise RuntimeError("transient failure")
        if self.requeue_after is not None and len(self.calls) < 3:
            return Requeue(after=self.requeue_after)
        return None


class TestController:
    def test_create_triggers_reconcile(self, sim, api):
        reconciler = RecordingReconciler()
        Controller(sim, api, reconciler).start()
        api.create(make_namespace("shop"))
        sim.run(until=1.0)
        assert [name for _t, name in reconciler.calls] == ["shop"]

    def test_update_triggers_reconcile_again(self, sim, api):
        reconciler = RecordingReconciler()
        Controller(sim, api, reconciler).start()
        api.create(make_namespace("shop"))
        sim.run(until=0.5)
        ns = api.get(Namespace, "shop")
        ns.meta.labels["k"] = "v"
        api.update(ns)
        sim.run(until=1.0)
        assert len(reconciler.calls) == 2

    def test_failures_are_retried_with_backoff(self, sim, api):
        reconciler = RecordingReconciler(fail_times=2)
        controller = Controller(sim, api, reconciler,
                                backoff=BackoffPolicy(initial=0.010))
        controller.start()
        api.create(make_namespace("shop"))
        sim.run(until=2.0)
        assert len(reconciler.calls) == 3
        assert controller.error_count == 2
        # backoff spacing: second retry waits longer than the first
        gap1 = reconciler.calls[1][0] - reconciler.calls[0][0]
        gap2 = reconciler.calls[2][0] - reconciler.calls[1][0]
        assert gap2 > gap1

    def test_requeue_after_schedules_future_reconcile(self, sim, api):
        reconciler = RecordingReconciler(requeue_after=0.100)
        Controller(sim, api, reconciler).start()
        api.create(make_namespace("shop"))
        sim.run(until=1.0)
        assert len(reconciler.calls) == 3
        assert reconciler.calls[1][0] - reconciler.calls[0][0] == \
            pytest.approx(0.100, abs=0.01)

    def test_queue_coalesces_duplicate_keys(self, sim, api):
        reconciler = RecordingReconciler(work_delay=0.050)
        controller = Controller(sim, api, reconciler)
        controller.start()
        api.create(make_namespace("shop"))
        sim.run(until=0.010)  # worker is busy inside the first reconcile
        ns = api.get(Namespace, "shop")
        for i in range(5):
            ns.meta.labels["k"] = str(i)
            ns = api.update(ns)
        sim.run(until=2.0)
        # 1 initial + 1 coalesced batch of the five updates
        assert len(reconciler.calls) <= 3

    def test_backoff_policy_delays(self):
        policy = BackoffPolicy(initial=0.01, factor=2.0, maximum=0.05)
        assert policy.delay(1) == pytest.approx(0.01)
        assert policy.delay(2) == pytest.approx(0.02)
        assert policy.delay(10) == pytest.approx(0.05)
        with pytest.raises(ValueError):
            policy.delay(0)

    def test_requeue_validation(self):
        with pytest.raises(ValueError):
            Requeue(after=-1)

    def test_stop_halts_processing(self, sim, api):
        reconciler = RecordingReconciler()
        controller = Controller(sim, api, reconciler)
        controller.start()
        api.create(make_namespace("one"))
        sim.run(until=0.5)
        controller.stop()
        api.create(make_namespace("two"))
        sim.run(until=1.0)
        assert [name for _t, name in reconciler.calls] == ["one"]


class TestScheduler:
    def test_pod_runs_once_pvcs_bound(self, sim, cluster):
        from tests.platform.conftest import make_pod, make_pvc
        from repro.platform import PersistentVolumeClaim, Pod
        cluster.start()
        cluster.create_namespace("shop")
        pvc = make_pvc("shop", "data")
        cluster.api.create(pvc)
        cluster.api.create(make_pod("shop", "app", pvc_names=["data"]))
        sim.run(until=0.5)
        assert cluster.api.get(Pod, "app", "shop").status.phase == "Pending"
        stored = cluster.api.get(PersistentVolumeClaim, "data", "shop")
        stored.spec.volume_name = "pv-1"
        stored.status.phase = "Bound"
        cluster.api.update(stored)
        sim.run(until=1.5)
        assert cluster.api.get(Pod, "app", "shop").status.phase == "Running"

    def test_pod_without_pvcs_runs_immediately(self, sim, cluster):
        from tests.platform.conftest import make_pod
        from repro.platform import Pod
        cluster.start()
        cluster.create_namespace("shop")
        cluster.api.create(make_pod("shop", "web"))
        sim.run(until=0.5)
        assert cluster.api.get(Pod, "web", "shop").status.phase == "Running"
