"""Unit tests for the console facade and cluster assembly."""

import pytest

from repro.errors import PlatformError
from repro.platform import Namespace, VolumeSnapshot
from repro.platform.objects import Condition, get_condition, set_condition


class TestConsole:
    def test_tag_namespace_updates_labels_and_logs(self, sim, cluster):
        cluster.create_namespace("shop")
        cluster.console.tag_namespace(
            "shop", "backup.hitachi.com/consistency-copy",
            "ConsistentCopyToCloud")
        ns = cluster.api.get(Namespace, "shop")
        assert ns.meta.labels["backup.hitachi.com/consistency-copy"] == \
            "ConsistentCopyToCloud"
        assert cluster.console.operation_count() == 1
        assert "tag-namespace" in cluster.console.screen_log()

    def test_untag_namespace(self, sim, cluster):
        cluster.create_namespace("shop", labels={"k": "v"})
        cluster.console.untag_namespace("shop", "k")
        assert "k" not in cluster.api.get(Namespace, "shop").meta.labels

    def test_list_operations_are_logged(self, sim, cluster):
        cluster.create_namespace("shop")
        cluster.console.list_persistent_volumes()
        cluster.console.list_claims("shop")
        cluster.console.list_pods("shop")
        assert cluster.console.operation_count("console") == 3

    def test_create_volume_snapshot_via_console(self, sim, cluster):
        cluster.create_namespace("shop")
        snap = cluster.console.create_volume_snapshot(
            "shop", "snap-1", pvc_name="data")
        assert isinstance(snap, VolumeSnapshot)
        stored = cluster.api.get(VolumeSnapshot, "snap-1", "shop")
        assert stored.spec.pvc_name == "data"

    def test_storage_array_surface_is_tracked_separately(self, sim, cluster):
        cluster.console.storage_array_command("raidcom add ldev ...")
        assert cluster.console.operation_count("storage-array") == 1
        assert cluster.console.operation_count("console") == 0


class TestCluster:
    def test_duplicate_csi_driver_rejected(self, sim, cluster):
        class FakeDriver:
            driver_name = "hspc.hitachi.com"

        cluster.register_csi_driver(FakeDriver())
        with pytest.raises(PlatformError):
            cluster.register_csi_driver(FakeDriver())

    def test_same_driver_reregistration_is_idempotent(self, sim, cluster):
        class FakeDriver:
            driver_name = "hspc.hitachi.com"

        driver = FakeDriver()
        cluster.register_csi_driver(driver)
        cluster.register_csi_driver(driver)
        assert cluster.csi_driver("hspc.hitachi.com") is driver

    def test_missing_driver_raises(self, sim, cluster):
        with pytest.raises(PlatformError):
            cluster.csi_driver("ghost")
        assert not cluster.has_csi_driver("ghost")

    def test_install_after_start_starts_controller(self, sim, cluster):
        from repro.platform import Reconciler, Namespace

        calls = []

        class Probe(Reconciler):
            kind = Namespace

            def reconcile(self, api, key):
                calls.append(key.name)
                return None
                yield

        cluster.start()
        cluster.install(Probe(), name="probe")
        cluster.create_namespace("late")
        sim.run(until=0.5)
        assert "late" in calls


class TestConditions:
    def test_set_condition_replaces_same_type(self):
        conditions = []
        set_condition(conditions, Condition(
            type="Ready", status=False, reason="Configuring",
            last_transition=1.0))
        set_condition(conditions, Condition(
            type="Ready", status=True, reason="Done", last_transition=2.0))
        assert len(conditions) == 1
        assert conditions[0].status is True
        assert conditions[0].last_transition == 2.0

    def test_set_condition_preserves_transition_when_unchanged(self):
        conditions = []
        set_condition(conditions, Condition(
            type="Ready", status=True, reason="Done", last_transition=1.0))
        set_condition(conditions, Condition(
            type="Ready", status=True, reason="Done", last_transition=9.0))
        assert conditions[0].last_transition == 1.0

    def test_get_condition(self):
        conditions = [Condition(type="Ready", status=True)]
        assert get_condition(conditions, "Ready").status is True
        assert get_condition(conditions, "Missing") is None
