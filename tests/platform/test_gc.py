"""Tests for namespace garbage collection (Terminating semantics)."""

import pytest

from repro.csi import ConsistencyGroupReplication
from repro.operator import TAG_CONSISTENT, TAG_KEY, \
    install_namespace_operator
from repro.platform import (GC_FINALIZER, Namespace, PersistentVolume,
                            PersistentVolumeClaim, Pod,
                            install_namespace_gc)
from repro.scenarios import BusinessConfig, build_system, \
    deploy_business_process
from repro.simulation import Simulator
from tests.csi.conftest import fast_system_config
from tests.platform.conftest import make_pod, make_pvc


class TestNamespaceGc:
    def test_gc_finalizer_added_to_live_namespace(self, sim, cluster):
        install_namespace_gc(cluster)
        cluster.start()
        cluster.create_namespace("shop")
        sim.run(until=0.5)
        ns = cluster.api.get(Namespace, "shop")
        assert GC_FINALIZER in ns.meta.finalizers

    def test_delete_cascades_to_contents(self, sim, cluster):
        install_namespace_gc(cluster)
        cluster.start()
        cluster.create_namespace("shop")
        cluster.api.create(make_pvc("shop", "data"))
        cluster.api.create(make_pod("shop", "app"))
        sim.run(until=0.5)
        cluster.api.delete(Namespace, "shop")
        sim.run(until=2.0)
        assert cluster.api.try_get(Namespace, "shop") is None
        assert cluster.api.list(Pod, namespace="shop") == []
        assert cluster.api.list(PersistentVolumeClaim,
                                namespace="shop") == []

    def test_namespace_goes_terminating_first(self, sim, cluster):
        install_namespace_gc(cluster)
        cluster.start()
        cluster.create_namespace("shop")
        pvc = make_pvc("shop", "data")
        pvc.meta.finalizers = ["hold/me"]  # delays the sweep
        cluster.api.create(pvc)
        sim.run(until=0.5)
        cluster.api.delete(Namespace, "shop")
        sim.run(until=0.5)
        ns = cluster.api.get(Namespace, "shop")
        assert ns.phase == "Terminating"
        # releasing the held claim completes the namespace deletion
        cluster.api.remove_finalizer(PersistentVolumeClaim, "data",
                                     "shop", "hold/me")
        sim.run(until=2.0)
        assert cluster.api.try_get(Namespace, "shop") is None

    def test_empty_namespace_deletes_quickly(self, sim, cluster):
        install_namespace_gc(cluster)
        cluster.start()
        cluster.create_namespace("empty")
        sim.run(until=0.5)
        cluster.api.delete(Namespace, "empty")
        sim.run(until=1.0)
        assert cluster.api.try_get(Namespace, "empty") is None


class TestFullTeardownCascade:
    def test_namespace_delete_unwinds_protection(self):
        """Deleting a protected namespace tears down everything: the CR,
        the pairs, the journal group and the backup-site PVs."""
        sim = Simulator(seed=160)
        system = build_system(sim, fast_system_config())
        install_namespace_operator(system.main.cluster)
        install_namespace_gc(
            system.main.cluster,
            extra_swept_kinds=(ConsistencyGroupReplication,))
        business = deploy_business_process(
            system, BusinessConfig(wal_blocks=20_000))
        system.main.console.tag_namespace(business.namespace, TAG_KEY,
                                          TAG_CONSISTENT)
        sim.run(until=sim.now + 4.0)
        assert len(system.backup.api.list(PersistentVolume)) == 4
        system.main.api.delete(Namespace, business.namespace)
        sim.run(until=sim.now + 6.0)
        assert system.main.api.try_get(
            Namespace, business.namespace) is None
        assert system.main.api.try_get(
            ConsistencyGroupReplication,
            f"nso-{business.namespace}", business.namespace) is None
        assert system.main.array.find_pair(
            f"{business.namespace}/nso-{business.namespace}/sales-wal"
        ) is None
        assert system.backup.api.list(PersistentVolume) == []
        assert not any(
            group_id.startswith("jg-")
            for group_id in system.main.array.journal_groups)
