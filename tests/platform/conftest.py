"""Shared fixtures for container-platform tests."""

import pytest

from repro.platform import ApiServer, Cluster
from repro.simulation import Simulator


@pytest.fixture()
def sim():
    return Simulator(seed=21)


@pytest.fixture()
def api(sim):
    return ApiServer(sim, cluster_name="test")


@pytest.fixture()
def cluster(sim):
    return Cluster(sim, name="site-a")


def make_namespace(name, labels=None):
    from repro.platform import Namespace
    ns = Namespace()
    ns.meta.name = name
    ns.meta.labels = dict(labels or {})
    return ns


def make_pvc(namespace, name, storage_class="fast", capacity=64):
    from repro.platform import PersistentVolumeClaim
    pvc = PersistentVolumeClaim()
    pvc.meta.name = name
    pvc.meta.namespace = namespace
    pvc.spec.storage_class = storage_class
    pvc.spec.capacity_blocks = capacity
    return pvc


def make_pod(namespace, name, pvc_names=(), image="app:1"):
    from repro.platform import Pod
    pod = Pod()
    pod.meta.name = name
    pod.meta.namespace = namespace
    pod.spec.image = image
    pod.spec.pvc_names = list(pvc_names)
    return pod
