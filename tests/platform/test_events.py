"""Tests for the platform events API and its operator integration."""

import pytest

from repro.errors import InvalidObjectError
from repro.platform import (Namespace, PlatformEvent, events_for,
                            record_event)
from repro.platform.objects import ObjectKey


class TestEventRecording:
    def test_record_creates_event(self, sim, api):
        key = ObjectKey("Namespace", "", "shop")
        event = record_event(api, "shop-ns", key, reason="Protected",
                             message="all pairs PAIR", source="nso")
        assert event.count == 1
        assert event.involved == "Namespace/shop"
        assert "Protected" in str(event)

    def test_duplicate_reason_increments_count(self, sim, api):
        key = ObjectKey("Namespace", "", "shop")
        record_event(api, "shop-ns", key, "Configuring", "step 1", "nso")
        sim.run(until=1.0)
        event = record_event(api, "shop-ns", key, "Configuring",
                             "step 2", "nso")
        assert event.count == 2
        assert event.message == "step 2"
        assert event.last_seen == 1.0
        assert api.object_count(PlatformEvent) == 1

    def test_distinct_reasons_are_distinct_events(self, sim, api):
        key = ObjectKey("Namespace", "", "shop")
        record_event(api, "shop-ns", key, "Configuring", "", "nso")
        record_event(api, "shop-ns", key, "Protected", "", "nso")
        assert api.object_count(PlatformEvent) == 2
        found = events_for(api, "shop-ns", key)
        assert {e.reason for e in found} == {"Configuring", "Protected"}

    def test_validation(self, sim, api):
        bad = PlatformEvent()
        bad.meta.name = "e"
        bad.meta.namespace = "ns"
        with pytest.raises(InvalidObjectError):
            api.create(bad)


class TestOperatorEvents:
    def test_nso_narrates_protection_on_the_console(self):
        from repro.operator import (TAG_CONSISTENT, TAG_KEY,
                                    install_namespace_operator)
        from repro.scenarios import (BusinessConfig, build_system,
                                     deploy_business_process)
        from repro.simulation import Simulator
        from tests.csi.conftest import fast_system_config

        sim = Simulator(seed=170)
        system = build_system(sim, fast_system_config())
        install_namespace_operator(system.main.cluster)
        business = deploy_business_process(
            system, BusinessConfig(wal_blocks=20_000))
        system.main.console.tag_namespace(business.namespace, TAG_KEY,
                                          TAG_CONSISTENT)
        sim.run(until=sim.now + 4.0)
        events = system.main.console.list_events(business.namespace)
        reasons = [event.reason for event in events]
        assert "Protected" in reasons
        # the replication plugin narrated the CR's progress too
        sources = {event.source for event in events}
        assert "replication-plugin" in sources
        assert "namespace-operator" in sources
